// The production netsim engine: calendar-queue scheduling over typed
// SimEvents, CompiledSchedule CSR adjacency, and all mutable state in a
// reusable SimWorkspace. Bit-identical to engine_reference.cpp — the
// two engines make the same scheduling calls in the same order, so
// insertion sequence numbers, pop order, and the RNG stream coincide
// exactly (test_netsim_parity enforces this across every option).
#include "netsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

double SimResult::barrier_time() const {
  OPTIBAR_REQUIRE(!completion.empty(), "empty SimResult");
  OPTIBAR_REQUIRE(!deadlocked, "barrier_time of a deadlocked run");
  const double latest_exit =
      *std::max_element(completion.begin(), completion.end());
  const double latest_entry = *std::max_element(entry.begin(), entry.end());
  return latest_exit - latest_entry;
}

double SimResult::completion_time() const {
  OPTIBAR_REQUIRE(!completion.empty(), "empty SimResult");
  OPTIBAR_REQUIRE(!deadlocked, "completion_time of a deadlocked run");
  return *std::max_element(completion.begin(), completion.end());
}

namespace {

/// One simulation run over a caller-owned workspace. The protocol logic
/// is a line-for-line mirror of ReferenceSimulation (engine_reference.cpp)
/// with three mechanical substitutions: typed events dispatched through
/// a switch instead of std::function closures, compiled CSR spans
/// instead of per-stage sources_of/targets_of vectors, and the SoA
/// buffered-message pool instead of nested vectors. Because every
/// queue_.schedule call happens at the same point in the same order,
/// the (time, seq) pop order — and with it the RNG stream and every
/// double in the result — is bit-identical to the reference.
template <class Costs>
class Engine {
 public:
  using RankState = SimWorkspace::RankState;
  static constexpr std::uint32_t kNil = SimWorkspace::kNil;
  static constexpr std::size_t kMaxEvents = 100'000'000;

  Engine(const CompiledSchedule& compiled, const Costs& profile,
         const SimOptions& options, SimWorkspace& ws, SimResult& out)
      : compiled_(compiled),
        profile_(profile),
        options_(options),
        ws_(ws),
        out_(out),
        p_(compiled.ranks()),
        stages_(compiled.stage_count()),
        rng_(options.seed) {
    OPTIBAR_REQUIRE(profile_.ranks() == p_, "profile/schedule rank mismatch");
    if (!options_.faults.empty()) {
      injector_.emplace(options_.faults);
    }
    ws_.halted.assign(p_, 0);
    OPTIBAR_REQUIRE(options_.jitter >= 0.0, "negative jitter");
    OPTIBAR_REQUIRE(options_.spike_probability >= 0.0 &&
                        options_.spike_probability <= 1.0,
                    "spike_probability outside [0,1]");
    ws_.recv_busy.assign(p_, 0.0);
    if (!options_.egress_resource_of.empty()) {
      OPTIBAR_REQUIRE(options_.egress_resource_of.size() == p_,
                      "egress_resource_of size mismatch");
      std::size_t max_resource = 0;
      for (std::size_t res : options_.egress_resource_of) {
        max_resource = std::max(max_resource, res);
      }
      ws_.egress_busy.assign(max_resource + 1, 0.0);
    }
    out_.completion.assign(p_, 0.0);
    out_.entry.assign(p_, 0.0);
    if (!options_.entry_times.empty()) {
      OPTIBAR_REQUIRE(options_.entry_times.size() == p_,
                      "entry_times size mismatch");
      out_.entry.assign(options_.entry_times.begin(),
                        options_.entry_times.end());
    }
    if (!options_.compute_after_post.empty()) {
      OPTIBAR_REQUIRE(options_.compute_after_post.size() == p_,
                      "compute_after_post size mismatch");
      OPTIBAR_REQUIRE(options_.progress_poll_interval > 0.0,
                      "compute_after_post needs a positive "
                      "progress_poll_interval");
      for (const double c : options_.compute_after_post) {
        OPTIBAR_REQUIRE(c >= 0.0, "negative compute_after_post");
      }
    }
    out_.trace.clear();
    out_.deadlocked = false;
    out_.stuck_ranks.clear();
    ws_.states.assign(p_, RankState{});
    ws_.queue.reset();
    // Buffered-message pool: empty chains, bump allocator rewound.
    ws_.buf_head.assign(stages_ * p_, kNil);
    ws_.buf_tail.assign(stages_ * p_, kNil);
    ws_.buf_src.clear();
    ws_.buf_injected.clear();
    ws_.buf_ghost.clear();
    ws_.buf_put.clear();
    ws_.buf_next.clear();
  }

  void run() {
    ws_.crashed.assign(p_, 0);
    for (std::size_t rank : options_.crashed_ranks) {
      OPTIBAR_REQUIRE(rank < p_, "crashed rank " << rank << " out of range");
      ws_.crashed[rank] = 1;
    }
    for (std::size_t i = 0; i < p_; ++i) {
      // Crash-at-stage-0 is the legacy "died before the call" case.
      if (ws_.crashed[i] != 0 || crash_stage(i) == 0) {
        ws_.halted[i] = 1;
        continue;
      }
      SimEvent event;
      event.kind = SimEventKind::kEnter;
      event.a = static_cast<std::uint32_t>(i);
      ws_.queue.schedule(out_.entry[i], event);
    }
    std::size_t executed = 0;
    while (!ws_.queue.empty()) {
      OPTIBAR_ASSERT(executed++ < kMaxEvents,
                     "event cascade exceeded " << kMaxEvents << " events");
      dispatch(ws_.queue.pop());
    }
    for (std::size_t i = 0; i < p_; ++i) {
      if (ws_.states[i].done != 0) {
        continue;
      }
      // Without injected faults an unfinished rank is an engine bug.
      OPTIBAR_ASSERT(!options_.crashed_ranks.empty() ||
                         !options_.faults.empty(),
                     "rank " << i << " never completed: simulator deadlock");
      out_.deadlocked = true;
      out_.stuck_ranks.push_back(i);
      out_.completion[i] = std::numeric_limits<double>::infinity();
    }
  }

 private:
  void dispatch(const SimEvent& event) {
    const double now = ws_.queue.now();
    switch (event.kind) {
      case SimEventKind::kEnter:
        enter_barrier(event.a, now);
        return;
      case SimEventKind::kInject:
        on_inject(event.a, event.b, event.stage, now, event.ghost);
        return;
      case SimEventKind::kAsyncSendDone: {
        RankState& sender = ws_.states[event.a];
        OPTIBAR_ASSERT(sender.stage == event.stage, "stale async-send token");
        OPTIBAR_ASSERT(sender.sends_pending == 1, "async token misuse");
        sender.sends_pending = 0;
        maybe_complete_stage(event.a, now);
        return;
      }
      case SimEventKind::kFinalizeMatch:
        finalize_match(event.a, event.b, event.stage, now, event.payload);
        return;
      case SimEventKind::kAdvanceStage:
        // The target stage is read at fire time, exactly like the
        // reference closure does.
        enter_stage(event.a, ws_.states[event.a].stage + 1, now);
        return;
      case SimEventKind::kPutInject:
        on_put_inject(event.a, event.b, event.stage, now);
        return;
      case SimEventKind::kPutLand:
        on_put_land(event.a, event.b, event.stage, now, event.payload);
        return;
      case SimEventKind::kPutsDone: {
        RankState& sender = ws_.states[event.a];
        OPTIBAR_ASSERT(sender.stage == event.stage, "stale put-batch token");
        OPTIBAR_ASSERT(sender.sends_pending > 0, "put token misuse");
        --sender.sends_pending;
        maybe_complete_stage(event.a, now);
        return;
      }
    }
  }

  /// One stochastic cost contribution: base scaled by jitter and
  /// occasionally hit by a background-load spike.
  double perturb(double base) {
    double value = base;
    if (options_.jitter > 0.0) {
      const double factor = 1.0 + options_.jitter * rng_.next_normal();
      value *= std::max(0.05, factor);
    }
    if (options_.spike_probability > 0.0 &&
        rng_.next_double() < options_.spike_probability) {
      value += options_.spike_scale * base;
    }
    return value;
  }

  /// Payload (or other caller-supplied) surcharge of one message; 0
  /// without a hook, keeping every base cost — and the RNG stream —
  /// identical to the pure signalling model.
  double extra_cost(std::size_t stage, std::size_t src,
                    std::size_t dst) const {
    return options_.extra_message_cost
               ? options_.extra_message_cost(stage, src, dst)
               : 0.0;
  }

  /// Stage at which `rank` halts under the fault plan, or kNoCrash.
  std::size_t crash_stage(std::size_t rank) const {
    return injector_ ? injector_->crash_stage(rank)
                     : FaultInjector::kNoCrash;
  }

  void schedule_inject(double time, std::size_t src, std::size_t dst,
                       std::size_t stage, bool ghost) {
    SimEvent event;
    event.kind = SimEventKind::kInject;
    event.ghost = ghost;
    event.stage = static_cast<std::uint32_t>(stage);
    event.a = static_cast<std::uint32_t>(src);
    event.b = static_cast<std::uint32_t>(dst);
    ws_.queue.schedule(time, event);
  }

  void enter_barrier(std::size_t rank, double now) {
    ws_.states[rank].entered = 1;
    enter_stage(rank, 0, now);
  }

  void enter_stage(std::size_t rank, std::size_t stage, double now) {
    RankState& st = ws_.states[rank];
    st.stage = static_cast<std::uint32_t>(stage);
    if (stage == stages_) {
      st.done = 1;
      out_.completion[rank] = now;
      return;
    }
    if (stage >= crash_stage(rank)) {
      // The rank dies on stage entry: nothing of this stage is sent or
      // matched, and inbound messages to the corpse are discarded at
      // on_inject. Synchronized senders to it then stall — the Eq. 3
      // guarantee seen from the failure side.
      ws_.halted[rank] = 1;
      return;
    }

    // CSR spans: the zero-alloc replacement for the reference's
    // per-call sources_of/targets_of vectors. target_overhead/
    // target_latency hold the same O(rank,dst)/L(rank,dst) doubles the
    // profile would return, aligned with targets.
    const std::span<const std::size_t> targets =
        compiled_.targets(rank, stage);
    const std::span<const double> target_l =
        compiled_.target_latency(rank, stage);
    const std::span<const double> target_o =
        compiled_.target_overhead(rank, stage);
    const std::span<const std::uint8_t> target_put =
        compiled_.target_one_sided(rank, stage);
    std::size_t put_count = 0;
    for (const std::uint8_t put : target_put) {
      put_count += (put != 0) ? 1 : 0;
    }
    st.recvs_pending =
        static_cast<std::uint32_t>(compiled_.sources(rank, stage).size());
    // Synchronized puts are fire-and-forget: the whole put batch is one
    // pending unit that completes at its last injection (kPutsDone),
    // never waiting on matches. put_count == 0 reduces to the classic
    // formula exactly.
    st.sends_pending = static_cast<std::uint32_t>(
        options_.synchronous_sends
            ? targets.size() - put_count + (put_count > 0 ? 1 : 0)
            : (targets.empty() ? 0 : 1));

    // Serial injection: first message pays O, the rest pay L each
    // (exactly the quantity the Section IV-A L benchmark measures).
    // Put edges share these slots — target_overhead already holds their
    // effective (local) startup O(rank,rank).
    double inject = now;
    for (std::size_t idx = 0; idx < targets.size(); ++idx) {
      const std::size_t dst = targets[idx];
      const double base = (idx == 0 ? target_o[idx] : target_l[idx]) +
                          extra_cost(stage, rank, dst);
      inject += perturb(base);
      if (target_put[idx] != 0) {
        // One-sided edge: the put leaves the NIC here; a putdrop fault
        // loses the flag write in flight (the sender, complete at
        // injection, never learns — only the receiver stalls).
        if (injector_ && injector_->decide_put(rank, dst, stage, /*seq=*/0)) {
          continue;
        }
        SimEvent event;
        event.kind = SimEventKind::kPutInject;
        event.stage = static_cast<std::uint32_t>(stage);
        event.a = static_cast<std::uint32_t>(rank);
        event.b = static_cast<std::uint32_t>(dst);
        ws_.queue.schedule(inject, event);
        continue;
      }
      FaultInjector::Decision fault;
      if (injector_) {
        fault = injector_->decide(rank, dst, static_cast<int>(stage),
                                  /*seq=*/0);
      }
      inject += fault.delay_seconds;
      if (fault.drop) {
        // Lost in the network after injection: the sender paid NIC
        // time, the receiver never hears it, and in synchronized mode
        // the sender's stage never completes.
        continue;
      }
      schedule_inject(inject, rank, dst, stage, /*ghost=*/false);
      for (std::size_t d = 0; d < fault.duplicates; ++d) {
        // Ghost copy: consumes an extra injection slot and receiver
        // processing, but has no protocol effect.
        inject += perturb(target_l[idx] + extra_cost(stage, rank, dst));
        schedule_inject(inject, rank, dst, stage, /*ghost=*/true);
      }
    }
    if (!options_.synchronous_sends && !targets.empty()) {
      // Async mode: the send side of the stage completes at the last
      // injection, independent of matching.
      SimEvent event;
      event.kind = SimEventKind::kAsyncSendDone;
      event.stage = static_cast<std::uint32_t>(stage);
      event.a = static_cast<std::uint32_t>(rank);
      ws_.queue.schedule(inject, event);
    }
    if (options_.synchronous_sends && put_count > 0) {
      // The put batch's local completion token (see sends_pending above).
      SimEvent event;
      event.kind = SimEventKind::kPutsDone;
      event.stage = static_cast<std::uint32_t>(stage);
      event.a = static_cast<std::uint32_t>(rank);
      ws_.queue.schedule(inject, event);
    }

    // Messages that arrived before we entered this stage match now.
    // The chain is walked via pre-read next links: a match can re-enter
    // the engine and grow the pool (reallocating the SoA vectors), but
    // never appends to this chain — completing this stage requires
    // consuming these very messages first.
    const std::size_t row = stage * p_ + rank;
    std::uint32_t node = ws_.buf_head[row];
    while (node != kNil) {
      const std::uint32_t next = ws_.buf_next[node];
      const std::size_t src = ws_.buf_src[node];
      const double injected = ws_.buf_injected[node];
      if (ws_.buf_put[node] != 0) {
        // A flag that landed in the window before we got here: visible
        // immediately on stage entry, no completion processing.
        finalize_put(src, rank, stage, now, injected);
      } else {
        const bool ghost = ws_.buf_ghost[node] != 0;
        match(src, rank, stage, now, injected, ghost);
      }
      node = next;
    }
    ws_.buf_head[row] = kNil;
    ws_.buf_tail[row] = kNil;

    maybe_complete_stage(rank, now);
  }

  void on_inject(std::size_t src, std::size_t dst, std::size_t stage,
                 double now, bool ghost) {
    // Shared-egress contention: a remote-bound message must acquire the
    // sender's egress resource; if busy, retry when it frees up.
    if (!options_.egress_resource_of.empty() &&
        options_.egress_resource_of[src] != options_.egress_resource_of[dst]) {
      const std::size_t resource = options_.egress_resource_of[src];
      if (ws_.egress_busy[resource] > now) {
        schedule_inject(ws_.egress_busy[resource], src, dst, stage, ghost);
        return;
      }
      ws_.egress_busy[resource] =
          now + perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    }
    if (ws_.halted[dst] != 0) {
      return;  // delivered to a corpse: silently discarded
    }
    RankState& receiver = ws_.states[dst];
    if (receiver.entered != 0 && receiver.stage == stage) {
      match(src, dst, stage, now, now, ghost);
      return;
    }
    // The receiver cannot be past this stage: completing it requires
    // matching this very message (ghosts carry no such obligation —
    // the real copy already did).
    OPTIBAR_ASSERT(ghost || receiver.entered == 0 || receiver.stage < stage,
                   "receiver " << dst << " advanced past stage " << stage
                               << " with unmatched inbound message");
    if (ghost && receiver.entered != 0 && receiver.stage > stage) {
      return;  // stale ghost: the stage is over, nothing left to occupy
    }
    buffer_message(src, dst, stage, now, ghost, /*put=*/false);
  }

  /// Append to the (stage, dst) FIFO chain in the SoA pool.
  void buffer_message(std::size_t src, std::size_t dst, std::size_t stage,
                      double injected, bool ghost, bool put) {
    const std::size_t row = stage * p_ + dst;
    const std::uint32_t node = static_cast<std::uint32_t>(ws_.buf_src.size());
    ws_.buf_src.push_back(static_cast<std::uint32_t>(src));
    ws_.buf_injected.push_back(injected);
    ws_.buf_ghost.push_back(ghost ? 1 : 0);
    ws_.buf_put.push_back(put ? 1 : 0);
    ws_.buf_next.push_back(kNil);
    if (ws_.buf_tail[row] == kNil) {
      ws_.buf_head[row] = node;
    } else {
      ws_.buf_next[ws_.buf_tail[row]] = node;
    }
    ws_.buf_tail[row] = node;
  }

  /// A one-sided put hits the wire: acquire the sender's egress
  /// resource like any remote message, then land the flag write
  /// R(src,dst) later — the remote-write delivery latency, in place of
  /// the two-sided match-plus-processing path.
  void on_put_inject(std::size_t src, std::size_t dst, std::size_t stage,
                     double now) {
    if (!options_.egress_resource_of.empty() &&
        options_.egress_resource_of[src] != options_.egress_resource_of[dst]) {
      const std::size_t resource = options_.egress_resource_of[src];
      if (ws_.egress_busy[resource] > now) {
        SimEvent event;
        event.kind = SimEventKind::kPutInject;
        event.stage = static_cast<std::uint32_t>(stage);
        event.a = static_cast<std::uint32_t>(src);
        event.b = static_cast<std::uint32_t>(dst);
        ws_.queue.schedule(ws_.egress_busy[resource], event);
        return;
      }
      ws_.egress_busy[resource] =
          now + perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    }
    SimEvent event;
    event.kind = SimEventKind::kPutLand;
    event.stage = static_cast<std::uint32_t>(stage);
    event.a = static_cast<std::uint32_t>(src);
    event.b = static_cast<std::uint32_t>(dst);
    event.payload = now;
    ws_.queue.schedule(now + perturb(profile_.r(src, dst)), event);
  }

  /// The flag write became visible in the receiver's window. Unlike a
  /// two-sided arrival there is no completion processing and no sender
  /// to notify — the receiver either observes it now (at stage) or
  /// finds it on stage entry (buffered).
  void on_put_land(std::size_t src, std::size_t dst, std::size_t stage,
                   double now, double injected) {
    if (ws_.halted[dst] != 0) {
      return;  // written into a corpse's window: never observed
    }
    RankState& receiver = ws_.states[dst];
    if (receiver.entered != 0 && receiver.stage == stage) {
      finalize_put(src, dst, stage, now, injected);
      return;
    }
    // Completing the stage requires observing this very flag, so the
    // receiver cannot be past it (puts have no ghost copies).
    OPTIBAR_ASSERT(receiver.entered == 0 || receiver.stage < stage,
                   "receiver " << dst << " advanced past stage " << stage
                               << " with an unobserved flag");
    buffer_message(src, dst, stage, injected, /*ghost=*/false, /*put=*/true);
  }

  /// The receiver observed a one-sided flag: pure protocol effect —
  /// no receiver CPU time, and no sender decrement (the put completed
  /// locally at injection).
  void finalize_put(std::size_t src, std::size_t dst, std::size_t stage,
                    double now, double injected) {
    if (options_.record_trace) {
      out_.trace.push_back(MessageTrace{stage, src, dst, injected, now});
    }
    RankState& receiver = ws_.states[dst];
    OPTIBAR_ASSERT(receiver.recvs_pending > 0,
                   "unexpected flag " << src << "->" << dst << " in stage "
                                      << stage);
    --receiver.recvs_pending;
    maybe_complete_stage(dst, now);
  }

  /// A message has arrived (or was found buffered at stage entry): run
  /// it through the receiver's serial completion processing, then
  /// finalize the match once processing is done. Ghost copies consume
  /// the processing time but never affect the protocol state.
  void match(std::size_t src, std::size_t dst, std::size_t stage, double now,
             double injected, bool ghost = false) {
    if (!options_.receiver_processing) {
      if (!ghost) {
        finalize_match(src, dst, stage, now, injected);
      }
      return;
    }
    const double done =
        std::max(now, ws_.recv_busy[dst]) +
        perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    ws_.recv_busy[dst] = done;
    if (ghost) {
      return;
    }
    SimEvent event;
    event.kind = SimEventKind::kFinalizeMatch;
    event.stage = static_cast<std::uint32_t>(stage);
    event.a = static_cast<std::uint32_t>(src);
    event.b = static_cast<std::uint32_t>(dst);
    event.payload = injected;
    ws_.queue.schedule(done, event);
  }

  void finalize_match(std::size_t src, std::size_t dst, std::size_t stage,
                      double now, double injected) {
    if (options_.record_trace) {
      out_.trace.push_back(MessageTrace{stage, src, dst, injected, now});
    }
    RankState& receiver = ws_.states[dst];
    OPTIBAR_ASSERT(receiver.recvs_pending > 0,
                   "unexpected message " << src << "->" << dst << " in stage "
                                         << stage);
    --receiver.recvs_pending;
    maybe_complete_stage(dst, now);

    if (options_.synchronous_sends) {
      RankState& sender = ws_.states[src];
      OPTIBAR_ASSERT(sender.stage == stage && sender.sends_pending > 0,
                     "match for sender " << src
                                         << " in unexpected stage state");
      --sender.sends_pending;
      maybe_complete_stage(src, now);
    }
  }

  /// When the nonblocking-progress model is on and `rank` is still
  /// inside its post-entry compute window, barrier progress only
  /// happens at the rank's poll ticks: return the first tick at or
  /// after `now` (capped at the end of the window, where the rank
  /// blocks in wait() and progress is immediate). `now` otherwise.
  double progress_time(std::size_t rank, double now) const {
    if (options_.compute_after_post.empty() ||
        options_.progress_poll_interval <= 0.0) {
      return now;
    }
    const double entry = out_.entry[rank];
    const double busy_until = entry + options_.compute_after_post[rank];
    if (now >= busy_until) {
      return now;
    }
    const double poll = options_.progress_poll_interval;
    double tick = entry + std::ceil((now - entry) / poll) * poll;
    if (tick < now) {
      tick += poll;  // floating-point guard: the tick may not precede now
    }
    return std::min(tick, busy_until);
  }

  void maybe_complete_stage(std::size_t rank, double now) {
    RankState& st = ws_.states[rank];
    if (st.done != 0 || st.recvs_pending > 0 || st.sends_pending > 0) {
      return;
    }
    const double at = progress_time(rank, now);
    if (at > now) {
      // Host-driven progress: the prerequisites are in, but the rank is
      // computing and only notices at its next handle poll. Nothing can
      // re-trigger this stage meanwhile (both pending counts are zero),
      // so exactly one deferred transition is ever scheduled.
      SimEvent event;
      event.kind = SimEventKind::kAdvanceStage;
      event.a = static_cast<std::uint32_t>(rank);
      ws_.queue.schedule(at, event);
      return;
    }
    enter_stage(rank, st.stage + 1, now);
  }

  const CompiledSchedule& compiled_;
  const Costs& profile_;
  const SimOptions& options_;
  SimWorkspace& ws_;
  SimResult& out_;
  std::size_t p_;
  std::size_t stages_;
  Rng rng_;
  std::optional<FaultInjector> injector_;
};

}  // namespace

void simulate_compiled_into(const CompiledSchedule& compiled,
                            const TopologyProfile& profile,
                            const SimOptions& options,
                            SimWorkspace& workspace, SimResult& out) {
  Engine<TopologyProfile>(compiled, profile, options, workspace, out).run();
}

void simulate_compiled_into(const CompiledSchedule& compiled,
                            const TiledProfile& profile,
                            const SimOptions& options,
                            SimWorkspace& workspace, SimResult& out) {
  Engine<TiledProfile>(compiled, profile, options, workspace, out).run();
}

void simulate_into(const Schedule& schedule, const TopologyProfile& profile,
                   const SimOptions& options, SimWorkspace& workspace,
                   SimResult& out) {
  OPTIBAR_REQUIRE(profile.ranks() == schedule.ranks(),
                  "profile/schedule rank mismatch");
  workspace.compiled.compile(schedule, profile);
  simulate_compiled_into(workspace.compiled, profile, options, workspace, out);
}

SimResult simulate(const Schedule& schedule, const TopologyProfile& profile,
                   const SimOptions& options) {
  thread_local SimWorkspace workspace;
  SimResult out;
  simulate_into(schedule, profile, options, workspace, out);
  return out;
}

namespace {

/// Run body(0..n-1), fanning out across `pool` when it helps. Bodies
/// write to index-owned slots, so results never depend on the width.
void for_each_rep(std::size_t n, ThreadPool* pool,
                  const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && pool->width() > 1 && n > 1) {
    pool->parallel_for(n, body);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    body(i);
  }
}

}  // namespace

double simulate_mean_time(const Schedule& schedule,
                          const TopologyProfile& profile,
                          const SimOptions& options, std::size_t repetitions,
                          ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Compile once, simulate many: the compiled adjacency is read-only
  // and shared across the pool. Each repetition derives its seed from
  // the index alone and writes its own slot; the sum below runs in
  // index order. Both together make the mean bit-identical at any pool
  // width.
  const CompiledSchedule compiled(schedule, profile);
  std::vector<double> times(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    thread_local SimWorkspace workspace;
    thread_local SimResult result;
    thread_local SimOptions rep_options;
    rep_options = options;
    rep_options.seed = options.seed + 0x9E3779B9ULL * (rep + 1);
    simulate_compiled_into(compiled, profile, rep_options, workspace, result);
    times[rep] = result.barrier_time();
  });
  double total = 0.0;
  for (double t : times) {
    total += t;
  }
  return total / static_cast<double>(repetitions);
}

std::vector<std::size_t> node_egress_resources(const MachineSpec& machine,
                                               const Mapping& mapping) {
  std::vector<std::size_t> resources(mapping.size());
  for (std::size_t rank = 0; rank < mapping.size(); ++rank) {
    resources[rank] = machine.location(mapping.core_of(rank)).node;
  }
  return resources;
}

double WorkloadResult::mean_barrier_time() const {
  OPTIBAR_REQUIRE(!episode_barrier_times.empty(), "empty workload result");
  double total = 0.0;
  for (double t : episode_barrier_times) {
    total += t;
  }
  return total / static_cast<double>(episode_barrier_times.size());
}

double WorkloadResult::total_wait() const {
  double total = 0.0;
  for (double w : rank_wait_total) {
    total += w;
  }
  return total;
}

namespace {

/// simulate_workload against an already-compiled schedule, reusing the
/// caller's workspace across episodes (and across whole workload runs
/// in simulate_workload_reps).
WorkloadResult run_workload(const CompiledSchedule& compiled,
                            const TopologyProfile& profile,
                            const WorkloadOptions& options,
                            SimWorkspace& workspace) {
  OPTIBAR_REQUIRE(options.episodes > 0, "workload needs at least one episode");
  OPTIBAR_REQUIRE(options.compute_mean >= 0.0 && options.compute_stddev >= 0.0,
                  "compute parameters must be non-negative");
  OPTIBAR_REQUIRE(options.sim.entry_times.empty(),
                  "workload owns the entry times; leave sim.entry_times empty");
  const std::size_t p = compiled.ranks();
  Rng rng(options.sim.seed ^ 0xB5297A4D3F84D5A9ULL);

  WorkloadResult result;
  result.rank_wait_total.assign(p, 0.0);
  std::vector<double> completion(p, 0.0);
  SimOptions sim = options.sim;  // one copy, reused every episode
  sim.entry_times.resize(p);
  SimResult episode_result;
  for (std::size_t episode = 0; episode < options.episodes; ++episode) {
    sim.seed = options.sim.seed + 0x9E3779B9ULL * (episode + 1);
    for (std::size_t rank = 0; rank < p; ++rank) {
      const double compute = std::max(
          0.0, rng.normal(options.compute_mean, options.compute_stddev));
      sim.entry_times[rank] = completion[rank] + compute;
    }
    simulate_compiled_into(compiled, profile, sim, workspace, episode_result);
    result.episode_barrier_times.push_back(episode_result.barrier_time());
    for (std::size_t rank = 0; rank < p; ++rank) {
      result.rank_wait_total[rank] +=
          episode_result.completion[rank] - episode_result.entry[rank];
    }
    completion = episode_result.completion;
  }
  result.makespan =
      *std::max_element(completion.begin(), completion.end());
  return result;
}

/// Reusable state of one paired overlap episode: the workspace, both
/// run results, the per-run option copy, and the shared compute draws.
/// One per thread (thread_local at the call sites).
struct OverlapScratch {
  SimWorkspace ws;
  SimResult blocking_run;
  SimResult nonblocking_run;
  SimOptions run_options;
  std::vector<double> compute;
};

/// simulate_overlap against an already-compiled schedule with caller-
/// owned scratch; allocation-free once the scratch is warm.
OverlapResult run_overlap(const CompiledSchedule& compiled,
                          const TopologyProfile& profile,
                          const OverlapOptions& options,
                          OverlapScratch& scratch) {
  OPTIBAR_REQUIRE(options.compute_seconds >= 0.0 &&
                      options.compute_stddev >= 0.0,
                  "compute parameters must be non-negative");
  OPTIBAR_REQUIRE(options.overlap_ratio >= 0.0 &&
                      options.overlap_ratio <= 1.0,
                  "overlap_ratio outside [0,1]");
  OPTIBAR_REQUIRE(options.poll_interval > 0.0,
                  "poll_interval must be positive");
  OPTIBAR_REQUIRE(options.sim.entry_times.empty() &&
                      options.sim.compute_after_post.empty() &&
                      options.sim.progress_poll_interval == 0.0,
                  "the overlap runner owns entry times and progress "
                  "polling; leave them empty in sim");
  const std::size_t p = compiled.ranks();

  // One set of compute draws shared by both runs: the comparison is
  // paired, so the difference isolates overlap, not draw luck.
  Rng rng(options.sim.seed ^ 0xA0761D6478BD642FULL);
  scratch.compute.resize(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    scratch.compute[rank] = std::max(
        0.0, rng.normal(options.compute_seconds, options.compute_stddev));
  }

  // Blocking reference: every rank finishes all its compute, then calls
  // the barrier.
  SimOptions& run = scratch.run_options;
  run = options.sim;
  run.entry_times.assign(scratch.compute.begin(), scratch.compute.end());
  simulate_compiled_into(compiled, profile, run, scratch.ws,
                         scratch.blocking_run);

  // Nonblocking: post after the non-overlapped fraction, compute the
  // rest while polling the handle.
  run.entry_times.resize(p);
  run.compute_after_post.resize(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    run.entry_times[rank] =
        (1.0 - options.overlap_ratio) * scratch.compute[rank];
    run.compute_after_post[rank] =
        options.overlap_ratio * scratch.compute[rank];
  }
  run.progress_poll_interval = options.poll_interval;
  simulate_compiled_into(compiled, profile, run, scratch.ws,
                         scratch.nonblocking_run);

  OverlapResult result;
  result.blocking_completion = scratch.blocking_run.completion_time();
  result.nonblocking_completion = scratch.nonblocking_run.completion_time();
  for (std::size_t rank = 0; rank < p; ++rank) {
    const double busy_until =
        scratch.nonblocking_run.entry[rank] + run.compute_after_post[rank];
    result.exposed_wait =
        std::max(result.exposed_wait,
                 scratch.nonblocking_run.completion[rank] - busy_until);
  }
  result.saved =
      result.blocking_completion - result.nonblocking_completion;
  const double span = scratch.blocking_run.barrier_time();
  if (span > 0.0) {
    result.overlap_efficiency =
        std::clamp(result.saved / span, 0.0, 1.0);
  }
  return result;
}

}  // namespace

WorkloadResult simulate_workload(const Schedule& schedule,
                                 const TopologyProfile& profile,
                                 const WorkloadOptions& options) {
  thread_local SimWorkspace workspace;
  OPTIBAR_REQUIRE(profile.ranks() == schedule.ranks(),
                  "profile/schedule rank mismatch");
  workspace.compiled.compile(schedule, profile);
  return run_workload(workspace.compiled, profile, options, workspace);
}

OverlapResult simulate_overlap(const Schedule& schedule,
                               const TopologyProfile& profile,
                               const OverlapOptions& options) {
  thread_local OverlapScratch scratch;
  OPTIBAR_REQUIRE(profile.ranks() == schedule.ranks(),
                  "profile/schedule rank mismatch");
  scratch.ws.compiled.compile(schedule, profile);
  return run_overlap(scratch.ws.compiled, profile, options, scratch);
}

OverlapResult simulate_overlap_mean(const Schedule& schedule,
                                    const TopologyProfile& profile,
                                    const OverlapOptions& options,
                                    std::size_t repetitions,
                                    ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Rep 0 keeps the caller's seed (one rep degenerates to
  // simulate_overlap); index-owned slots keep the mean pool-width
  // invariant, like every seeded mean in this engine.
  const CompiledSchedule compiled(schedule, profile);
  std::vector<OverlapResult> results(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    thread_local OverlapScratch scratch;
    thread_local OverlapOptions rep_options;
    rep_options = options;
    rep_options.sim.seed = options.sim.seed + 0xD1B54A32D192ED03ULL * rep;
    results[rep] = run_overlap(compiled, profile, rep_options, scratch);
  });
  OverlapResult mean;
  for (const OverlapResult& r : results) {
    mean.blocking_completion += r.blocking_completion;
    mean.nonblocking_completion += r.nonblocking_completion;
    mean.exposed_wait += r.exposed_wait;
    mean.saved += r.saved;
    mean.overlap_efficiency += r.overlap_efficiency;
  }
  const double n = static_cast<double>(repetitions);
  mean.blocking_completion /= n;
  mean.nonblocking_completion /= n;
  mean.exposed_wait /= n;
  mean.saved /= n;
  mean.overlap_efficiency /= n;
  return mean;
}

std::vector<WorkloadResult> simulate_workload_reps(
    const Schedule& schedule, const TopologyProfile& profile,
    const WorkloadOptions& options, std::size_t repetitions,
    ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Episodes inside one workload are sequential (episode e enters when
  // e-1 completed), but whole workload runs are independent given
  // their seed — the parallel grain. Rep 0 keeps the caller's seed so
  // a single-rep call degenerates to simulate_workload exactly.
  const CompiledSchedule compiled(schedule, profile);
  std::vector<WorkloadResult> results(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    thread_local SimWorkspace workspace;
    thread_local WorkloadOptions rep_options;
    rep_options = options;
    rep_options.sim.seed =
        options.sim.seed + 0xD1B54A32D192ED03ULL * rep;
    results[rep] = run_workload(compiled, profile, rep_options, workspace);
  });
  return results;
}

}  // namespace optibar
