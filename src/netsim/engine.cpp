#include "netsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "netsim/event_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

double SimResult::barrier_time() const {
  OPTIBAR_REQUIRE(!completion.empty(), "empty SimResult");
  OPTIBAR_REQUIRE(!deadlocked, "barrier_time of a deadlocked run");
  const double latest_exit =
      *std::max_element(completion.begin(), completion.end());
  const double latest_entry = *std::max_element(entry.begin(), entry.end());
  return latest_exit - latest_entry;
}

double SimResult::completion_time() const {
  OPTIBAR_REQUIRE(!completion.empty(), "empty SimResult");
  OPTIBAR_REQUIRE(!deadlocked, "completion_time of a deadlocked run");
  return *std::max_element(completion.begin(), completion.end());
}

namespace {

/// Per-rank execution state inside the event loop.
struct RankState {
  std::size_t stage = 0;        ///< stage currently being executed
  bool entered = false;         ///< has the rank entered the barrier yet
  std::size_t recvs_pending = 0;
  std::size_t sends_pending = 0;  ///< unmatched sends (sync) or 0/1 token (async)
  bool done = false;
};

struct BufferedMessage {
  std::size_t src = 0;
  double injected = 0.0;
  bool ghost = false;  ///< duplicate copy: occupies time, no protocol effect
};

class Simulation {
 public:
  Simulation(const Schedule& schedule, const TopologyProfile& profile,
             const SimOptions& options)
      : schedule_(schedule),
        profile_(profile),
        options_(options),
        p_(schedule.ranks()),
        rng_(options.seed),
        states_(p_),
        buffered_(schedule.stage_count(),
                  std::vector<std::vector<BufferedMessage>>(p_)) {
    OPTIBAR_REQUIRE(profile_.ranks() == p_, "profile/schedule rank mismatch");
    if (!options_.faults.empty()) {
      injector_.emplace(options_.faults);
    }
    halted_.assign(p_, false);
    OPTIBAR_REQUIRE(options_.jitter >= 0.0, "negative jitter");
    OPTIBAR_REQUIRE(options_.spike_probability >= 0.0 &&
                        options_.spike_probability <= 1.0,
                    "spike_probability outside [0,1]");
    recv_busy_.assign(p_, 0.0);
    if (!options_.egress_resource_of.empty()) {
      OPTIBAR_REQUIRE(options_.egress_resource_of.size() == p_,
                      "egress_resource_of size mismatch");
      std::size_t max_resource = 0;
      for (std::size_t res : options_.egress_resource_of) {
        max_resource = std::max(max_resource, res);
      }
      egress_busy_.assign(max_resource + 1, 0.0);
    }
    result_.completion.assign(p_, 0.0);
    result_.entry.assign(p_, 0.0);
    if (!options_.entry_times.empty()) {
      OPTIBAR_REQUIRE(options_.entry_times.size() == p_,
                      "entry_times size mismatch");
      result_.entry = options_.entry_times;
    }
    if (!options_.compute_after_post.empty()) {
      OPTIBAR_REQUIRE(options_.compute_after_post.size() == p_,
                      "compute_after_post size mismatch");
      OPTIBAR_REQUIRE(options_.progress_poll_interval > 0.0,
                      "compute_after_post needs a positive "
                      "progress_poll_interval");
      for (const double c : options_.compute_after_post) {
        OPTIBAR_REQUIRE(c >= 0.0, "negative compute_after_post");
      }
    }
  }

  SimResult run() {
    std::vector<bool> crashed(p_, false);
    for (std::size_t rank : options_.crashed_ranks) {
      OPTIBAR_REQUIRE(rank < p_, "crashed rank " << rank << " out of range");
      crashed[rank] = true;
    }
    for (std::size_t i = 0; i < p_; ++i) {
      // Crash-at-stage-0 is the legacy "died before the call" case.
      if (crashed[i] || crash_stage(i) == 0) {
        halted_[i] = true;
        continue;
      }
      const double t = result_.entry[i];
      queue_.schedule(t, [this, i, t] { enter_barrier(i, t); });
    }
    queue_.run();
    for (std::size_t i = 0; i < p_; ++i) {
      if (states_[i].done) {
        continue;
      }
      // Without injected faults an unfinished rank is an engine bug.
      OPTIBAR_ASSERT(!options_.crashed_ranks.empty() ||
                         !options_.faults.empty(),
                     "rank " << i << " never completed: simulator deadlock");
      result_.deadlocked = true;
      result_.stuck_ranks.push_back(i);
      result_.completion[i] = std::numeric_limits<double>::infinity();
    }
    return std::move(result_);
  }

 private:
  /// One stochastic cost contribution: base scaled by jitter and
  /// occasionally hit by a background-load spike.
  double perturb(double base) {
    double value = base;
    if (options_.jitter > 0.0) {
      const double factor = 1.0 + options_.jitter * rng_.next_normal();
      value *= std::max(0.05, factor);
    }
    if (options_.spike_probability > 0.0 &&
        rng_.next_double() < options_.spike_probability) {
      value += options_.spike_scale * base;
    }
    return value;
  }

  /// Payload (or other caller-supplied) surcharge of one message; 0
  /// without a hook, keeping every base cost — and the RNG stream —
  /// identical to the pure signalling model.
  double extra_cost(std::size_t stage, std::size_t src,
                    std::size_t dst) const {
    return options_.extra_message_cost
               ? options_.extra_message_cost(stage, src, dst)
               : 0.0;
  }

  /// Stage at which `rank` halts under the fault plan, or kNoCrash.
  std::size_t crash_stage(std::size_t rank) const {
    return injector_ ? injector_->crash_stage(rank)
                     : FaultInjector::kNoCrash;
  }

  void enter_barrier(std::size_t rank, double now) {
    states_[rank].entered = true;
    enter_stage(rank, 0, now);
  }

  void enter_stage(std::size_t rank, std::size_t stage, double now) {
    RankState& st = states_[rank];
    st.stage = stage;
    if (stage == schedule_.stage_count()) {
      st.done = true;
      result_.completion[rank] = now;
      return;
    }
    if (stage >= crash_stage(rank)) {
      // The rank dies on stage entry: nothing of this stage is sent or
      // matched, and inbound messages to the corpse are discarded at
      // on_inject. Synchronized senders to it then stall — the Eq. 3
      // guarantee seen from the failure side.
      halted_[rank] = true;
      return;
    }

    const std::vector<std::size_t> sources = schedule_.sources_of(rank, stage);
    const std::vector<std::size_t> targets = schedule_.targets_of(rank, stage);
    st.recvs_pending = sources.size();
    st.sends_pending = options_.synchronous_sends ? targets.size()
                                                  : (targets.empty() ? 0 : 1);

    // Serial injection: first message pays O, the rest pay L each
    // (exactly the quantity the Section IV-A L benchmark measures).
    double inject = now;
    for (std::size_t idx = 0; idx < targets.size(); ++idx) {
      const std::size_t dst = targets[idx];
      const double base = (idx == 0 ? profile_.o(rank, dst)
                                    : profile_.l(rank, dst)) +
                          extra_cost(stage, rank, dst);
      inject += perturb(base);
      FaultInjector::Decision fault;
      if (injector_) {
        fault = injector_->decide(rank, dst, static_cast<int>(stage),
                                  /*seq=*/0);
      }
      inject += fault.delay_seconds;
      if (fault.drop) {
        // Lost in the network after injection: the sender paid NIC
        // time, the receiver never hears it, and in synchronized mode
        // the sender's stage never completes.
        continue;
      }
      queue_.schedule(inject, [this, rank, dst, stage] {
        on_inject(rank, dst, stage, queue_.now(), /*ghost=*/false);
      });
      for (std::size_t d = 0; d < fault.duplicates; ++d) {
        // Ghost copy: consumes an extra injection slot and receiver
        // processing, but has no protocol effect.
        inject += perturb(profile_.l(rank, dst) +
                          extra_cost(stage, rank, dst));
        queue_.schedule(inject, [this, rank, dst, stage] {
          on_inject(rank, dst, stage, queue_.now(), /*ghost=*/true);
        });
      }
    }
    if (!options_.synchronous_sends && !targets.empty()) {
      // Async mode: the send side of the stage completes at the last
      // injection, independent of matching.
      queue_.schedule(inject, [this, rank, stage] {
        RankState& sender = states_[rank];
        OPTIBAR_ASSERT(sender.stage == stage, "stale async-send token");
        OPTIBAR_ASSERT(sender.sends_pending == 1, "async token misuse");
        sender.sends_pending = 0;
        maybe_complete_stage(rank, queue_.now());
      });
    }

    // Messages that arrived before we entered this stage match now.
    for (const BufferedMessage& msg : buffered_[stage][rank]) {
      match(msg.src, rank, stage, now, msg.injected, msg.ghost);
    }
    buffered_[stage][rank].clear();

    maybe_complete_stage(rank, now);
  }

  void on_inject(std::size_t src, std::size_t dst, std::size_t stage,
                 double now, bool ghost) {
    // Shared-egress contention: a remote-bound message must acquire the
    // sender's egress resource; if busy, retry when it frees up.
    if (!options_.egress_resource_of.empty() &&
        options_.egress_resource_of[src] != options_.egress_resource_of[dst]) {
      const std::size_t resource = options_.egress_resource_of[src];
      if (egress_busy_[resource] > now) {
        queue_.schedule(egress_busy_[resource],
                        [this, src, dst, stage, ghost] {
                          on_inject(src, dst, stage, queue_.now(), ghost);
                        });
        return;
      }
      egress_busy_[resource] =
          now + perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    }
    if (halted_[dst]) {
      return;  // delivered to a corpse: silently discarded
    }
    RankState& receiver = states_[dst];
    if (receiver.entered && receiver.stage == stage) {
      match(src, dst, stage, now, now, ghost);
      return;
    }
    // The receiver cannot be past this stage: completing it requires
    // matching this very message (ghosts carry no such obligation —
    // the real copy already did).
    OPTIBAR_ASSERT(ghost || !receiver.entered || receiver.stage < stage,
                   "receiver " << dst << " advanced past stage " << stage
                               << " with unmatched inbound message");
    if (ghost && receiver.entered && receiver.stage > stage) {
      return;  // stale ghost: the stage is over, nothing left to occupy
    }
    buffered_[stage][dst].push_back(BufferedMessage{src, now, ghost});
  }

  /// A message has arrived (or was found buffered at stage entry): run
  /// it through the receiver's serial completion processing, then
  /// finalize the match once processing is done. Ghost copies consume
  /// the processing time but never affect the protocol state.
  void match(std::size_t src, std::size_t dst, std::size_t stage, double now,
             double injected, bool ghost = false) {
    if (!options_.receiver_processing) {
      if (!ghost) {
        finalize_match(src, dst, stage, now, injected);
      }
      return;
    }
    const double done =
        std::max(now, recv_busy_[dst]) +
        perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    recv_busy_[dst] = done;
    if (ghost) {
      return;
    }
    queue_.schedule(done, [this, src, dst, stage, injected] {
      finalize_match(src, dst, stage, queue_.now(), injected);
    });
  }

  void finalize_match(std::size_t src, std::size_t dst, std::size_t stage,
                      double now, double injected) {
    if (options_.record_trace) {
      result_.trace.push_back(MessageTrace{stage, src, dst, injected, now});
    }
    RankState& receiver = states_[dst];
    OPTIBAR_ASSERT(receiver.recvs_pending > 0,
                   "unexpected message " << src << "->" << dst << " in stage "
                                         << stage);
    --receiver.recvs_pending;
    maybe_complete_stage(dst, now);

    if (options_.synchronous_sends) {
      RankState& sender = states_[src];
      OPTIBAR_ASSERT(sender.stage == stage && sender.sends_pending > 0,
                     "match for sender " << src
                                         << " in unexpected stage state");
      --sender.sends_pending;
      maybe_complete_stage(src, now);
    }
  }

  /// When the nonblocking-progress model is on and `rank` is still
  /// inside its post-entry compute window, barrier progress only
  /// happens at the rank's poll ticks: return the first tick at or
  /// after `now` (capped at the end of the window, where the rank
  /// blocks in wait() and progress is immediate). `now` otherwise.
  double progress_time(std::size_t rank, double now) const {
    if (options_.compute_after_post.empty() ||
        options_.progress_poll_interval <= 0.0) {
      return now;
    }
    const double entry = result_.entry[rank];
    const double busy_until = entry + options_.compute_after_post[rank];
    if (now >= busy_until) {
      return now;
    }
    const double poll = options_.progress_poll_interval;
    double tick = entry + std::ceil((now - entry) / poll) * poll;
    if (tick < now) {
      tick += poll;  // floating-point guard: the tick may not precede now
    }
    return std::min(tick, busy_until);
  }

  void maybe_complete_stage(std::size_t rank, double now) {
    RankState& st = states_[rank];
    if (st.done || st.recvs_pending > 0 || st.sends_pending > 0) {
      return;
    }
    const double at = progress_time(rank, now);
    if (at > now) {
      // Host-driven progress: the prerequisites are in, but the rank is
      // computing and only notices at its next handle poll. Nothing can
      // re-trigger this stage meanwhile (both pending counts are zero),
      // so exactly one deferred transition is ever scheduled.
      queue_.schedule(at, [this, rank] {
        enter_stage(rank, states_[rank].stage + 1, queue_.now());
      });
      return;
    }
    enter_stage(rank, st.stage + 1, now);
  }

  const Schedule& schedule_;
  const TopologyProfile& profile_;
  const SimOptions& options_;
  std::size_t p_;
  Rng rng_;
  EventQueue queue_;
  std::optional<FaultInjector> injector_;
  std::vector<bool> halted_;  ///< crashed (at stage 0 or later)
  std::vector<RankState> states_;
  std::vector<double> recv_busy_;
  std::vector<double> egress_busy_;
  std::vector<std::vector<std::vector<BufferedMessage>>> buffered_;
  SimResult result_;
};

}  // namespace

SimResult simulate(const Schedule& schedule, const TopologyProfile& profile,
                   const SimOptions& options) {
  return Simulation(schedule, profile, options).run();
}

namespace {

/// Run body(0..n-1), fanning out across `pool` when it helps. Bodies
/// write to index-owned slots, so results never depend on the width.
void for_each_rep(std::size_t n, ThreadPool* pool,
                  const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && pool->width() > 1 && n > 1) {
    pool->parallel_for(n, body);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    body(i);
  }
}

}  // namespace

double simulate_mean_time(const Schedule& schedule,
                          const TopologyProfile& profile,
                          const SimOptions& options, std::size_t repetitions,
                          ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Each repetition derives its seed from the index alone and writes
  // its own slot; the sum below runs in index order. Both together
  // make the mean bit-identical at any pool width.
  std::vector<double> times(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    SimOptions rep_options = options;
    rep_options.seed = options.seed + 0x9E3779B9ULL * (rep + 1);
    times[rep] = simulate(schedule, profile, rep_options).barrier_time();
  });
  double total = 0.0;
  for (double t : times) {
    total += t;
  }
  return total / static_cast<double>(repetitions);
}

std::vector<std::size_t> node_egress_resources(const MachineSpec& machine,
                                               const Mapping& mapping) {
  std::vector<std::size_t> resources(mapping.size());
  for (std::size_t rank = 0; rank < mapping.size(); ++rank) {
    resources[rank] = machine.location(mapping.core_of(rank)).node;
  }
  return resources;
}

double WorkloadResult::mean_barrier_time() const {
  OPTIBAR_REQUIRE(!episode_barrier_times.empty(), "empty workload result");
  double total = 0.0;
  for (double t : episode_barrier_times) {
    total += t;
  }
  return total / static_cast<double>(episode_barrier_times.size());
}

double WorkloadResult::total_wait() const {
  double total = 0.0;
  for (double w : rank_wait_total) {
    total += w;
  }
  return total;
}

WorkloadResult simulate_workload(const Schedule& schedule,
                                 const TopologyProfile& profile,
                                 const WorkloadOptions& options) {
  OPTIBAR_REQUIRE(options.episodes > 0, "workload needs at least one episode");
  OPTIBAR_REQUIRE(options.compute_mean >= 0.0 && options.compute_stddev >= 0.0,
                  "compute parameters must be non-negative");
  OPTIBAR_REQUIRE(options.sim.entry_times.empty(),
                  "workload owns the entry times; leave sim.entry_times empty");
  const std::size_t p = schedule.ranks();
  Rng rng(options.sim.seed ^ 0xB5297A4D3F84D5A9ULL);

  WorkloadResult result;
  result.rank_wait_total.assign(p, 0.0);
  std::vector<double> completion(p, 0.0);
  for (std::size_t episode = 0; episode < options.episodes; ++episode) {
    SimOptions sim = options.sim;
    sim.seed = options.sim.seed + 0x9E3779B9ULL * (episode + 1);
    sim.entry_times.resize(p);
    for (std::size_t rank = 0; rank < p; ++rank) {
      const double compute = std::max(
          0.0, rng.normal(options.compute_mean, options.compute_stddev));
      sim.entry_times[rank] = completion[rank] + compute;
    }
    const SimResult episode_result = simulate(schedule, profile, sim);
    result.episode_barrier_times.push_back(episode_result.barrier_time());
    for (std::size_t rank = 0; rank < p; ++rank) {
      result.rank_wait_total[rank] +=
          episode_result.completion[rank] - episode_result.entry[rank];
    }
    completion = episode_result.completion;
  }
  result.makespan =
      *std::max_element(completion.begin(), completion.end());
  return result;
}

OverlapResult simulate_overlap(const Schedule& schedule,
                               const TopologyProfile& profile,
                               const OverlapOptions& options) {
  OPTIBAR_REQUIRE(options.compute_seconds >= 0.0 &&
                      options.compute_stddev >= 0.0,
                  "compute parameters must be non-negative");
  OPTIBAR_REQUIRE(options.overlap_ratio >= 0.0 &&
                      options.overlap_ratio <= 1.0,
                  "overlap_ratio outside [0,1]");
  OPTIBAR_REQUIRE(options.poll_interval > 0.0,
                  "poll_interval must be positive");
  OPTIBAR_REQUIRE(options.sim.entry_times.empty() &&
                      options.sim.compute_after_post.empty() &&
                      options.sim.progress_poll_interval == 0.0,
                  "the overlap runner owns entry times and progress "
                  "polling; leave them empty in sim");
  const std::size_t p = schedule.ranks();

  // One set of compute draws shared by both runs: the comparison is
  // paired, so the difference isolates overlap, not draw luck.
  Rng rng(options.sim.seed ^ 0xA0761D6478BD642FULL);
  std::vector<double> compute(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    compute[rank] = std::max(
        0.0, rng.normal(options.compute_seconds, options.compute_stddev));
  }

  // Blocking reference: every rank finishes all its compute, then calls
  // the barrier.
  SimOptions blocking = options.sim;
  blocking.entry_times = compute;
  const SimResult blocking_run = simulate(schedule, profile, blocking);

  // Nonblocking: post after the non-overlapped fraction, compute the
  // rest while polling the handle.
  SimOptions nonblocking = options.sim;
  nonblocking.entry_times.resize(p);
  nonblocking.compute_after_post.resize(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    nonblocking.entry_times[rank] =
        (1.0 - options.overlap_ratio) * compute[rank];
    nonblocking.compute_after_post[rank] =
        options.overlap_ratio * compute[rank];
  }
  nonblocking.progress_poll_interval = options.poll_interval;
  const SimResult nonblocking_run = simulate(schedule, profile, nonblocking);

  OverlapResult result;
  result.blocking_completion = blocking_run.completion_time();
  result.nonblocking_completion = nonblocking_run.completion_time();
  for (std::size_t rank = 0; rank < p; ++rank) {
    const double busy_until =
        nonblocking_run.entry[rank] + nonblocking.compute_after_post[rank];
    result.exposed_wait =
        std::max(result.exposed_wait,
                 nonblocking_run.completion[rank] - busy_until);
  }
  result.saved =
      result.blocking_completion - result.nonblocking_completion;
  const double span = blocking_run.barrier_time();
  if (span > 0.0) {
    result.overlap_efficiency =
        std::clamp(result.saved / span, 0.0, 1.0);
  }
  return result;
}

OverlapResult simulate_overlap_mean(const Schedule& schedule,
                                    const TopologyProfile& profile,
                                    const OverlapOptions& options,
                                    std::size_t repetitions,
                                    ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Rep 0 keeps the caller's seed (one rep degenerates to
  // simulate_overlap); index-owned slots keep the mean pool-width
  // invariant, like every seeded mean in this engine.
  std::vector<OverlapResult> results(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    OverlapOptions rep_options = options;
    rep_options.sim.seed = options.sim.seed + 0xD1B54A32D192ED03ULL * rep;
    results[rep] = simulate_overlap(schedule, profile, rep_options);
  });
  OverlapResult mean;
  for (const OverlapResult& r : results) {
    mean.blocking_completion += r.blocking_completion;
    mean.nonblocking_completion += r.nonblocking_completion;
    mean.exposed_wait += r.exposed_wait;
    mean.saved += r.saved;
    mean.overlap_efficiency += r.overlap_efficiency;
  }
  const double n = static_cast<double>(repetitions);
  mean.blocking_completion /= n;
  mean.nonblocking_completion /= n;
  mean.exposed_wait /= n;
  mean.saved /= n;
  mean.overlap_efficiency /= n;
  return mean;
}

std::vector<WorkloadResult> simulate_workload_reps(
    const Schedule& schedule, const TopologyProfile& profile,
    const WorkloadOptions& options, std::size_t repetitions,
    ThreadPool* pool) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  // Episodes inside one workload are sequential (episode e enters when
  // e-1 completed), but whole workload runs are independent given
  // their seed — the parallel grain. Rep 0 keeps the caller's seed so
  // a single-rep call degenerates to simulate_workload exactly.
  std::vector<WorkloadResult> results(repetitions);
  for_each_rep(repetitions, pool, [&](std::size_t rep) {
    WorkloadOptions rep_options = options;
    rep_options.sim.seed =
        options.sim.seed + 0xD1B54A32D192ED03ULL * rep;
    results[rep] = simulate_workload(schedule, profile, rep_options);
  });
  return results;
}

}  // namespace optibar
