// The original netsim engine, retained verbatim as the parity oracle
// for the calendar-queue engine in engine.cpp (the predict_reference
// pattern): std::function closures on a binary-heap EventQueue,
// per-stage adjacency vectors from Schedule::sources_of/targets_of,
// and triple-nested buffered-message vectors. Deliberately NOT
// optimized — its value is that test_netsim_parity can diff the
// production engine against it bit for bit across every option
// (jitter, spikes, contention, faults, overlap model, traces).
#include "netsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "netsim/event_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {

namespace {

/// Per-rank execution state inside the event loop.
struct RankState {
  std::size_t stage = 0;        ///< stage currently being executed
  bool entered = false;         ///< has the rank entered the barrier yet
  std::size_t recvs_pending = 0;
  std::size_t sends_pending = 0;  ///< unmatched sends (sync) or 0/1 token (async)
  bool done = false;
};

struct BufferedMessage {
  std::size_t src = 0;
  double injected = 0.0;
  bool ghost = false;  ///< duplicate copy: occupies time, no protocol effect
  bool put = false;    ///< one-sided flag awaiting the receiver's entry
};

class ReferenceSimulation {
 public:
  ReferenceSimulation(const Schedule& schedule, const TopologyProfile& profile,
                      const SimOptions& options)
      : schedule_(schedule),
        profile_(profile),
        options_(options),
        p_(schedule.ranks()),
        rng_(options.seed),
        states_(p_),
        buffered_(schedule.stage_count(),
                  std::vector<std::vector<BufferedMessage>>(p_)) {
    OPTIBAR_REQUIRE(profile_.ranks() == p_, "profile/schedule rank mismatch");
    if (!options_.faults.empty()) {
      injector_.emplace(options_.faults);
    }
    halted_.assign(p_, false);
    OPTIBAR_REQUIRE(options_.jitter >= 0.0, "negative jitter");
    OPTIBAR_REQUIRE(options_.spike_probability >= 0.0 &&
                        options_.spike_probability <= 1.0,
                    "spike_probability outside [0,1]");
    recv_busy_.assign(p_, 0.0);
    if (!options_.egress_resource_of.empty()) {
      OPTIBAR_REQUIRE(options_.egress_resource_of.size() == p_,
                      "egress_resource_of size mismatch");
      std::size_t max_resource = 0;
      for (std::size_t res : options_.egress_resource_of) {
        max_resource = std::max(max_resource, res);
      }
      egress_busy_.assign(max_resource + 1, 0.0);
    }
    result_.completion.assign(p_, 0.0);
    result_.entry.assign(p_, 0.0);
    if (!options_.entry_times.empty()) {
      OPTIBAR_REQUIRE(options_.entry_times.size() == p_,
                      "entry_times size mismatch");
      result_.entry = options_.entry_times;
    }
    if (!options_.compute_after_post.empty()) {
      OPTIBAR_REQUIRE(options_.compute_after_post.size() == p_,
                      "compute_after_post size mismatch");
      OPTIBAR_REQUIRE(options_.progress_poll_interval > 0.0,
                      "compute_after_post needs a positive "
                      "progress_poll_interval");
      for (const double c : options_.compute_after_post) {
        OPTIBAR_REQUIRE(c >= 0.0, "negative compute_after_post");
      }
    }
  }

  SimResult run() {
    std::vector<bool> crashed(p_, false);
    for (std::size_t rank : options_.crashed_ranks) {
      OPTIBAR_REQUIRE(rank < p_, "crashed rank " << rank << " out of range");
      crashed[rank] = true;
    }
    for (std::size_t i = 0; i < p_; ++i) {
      // Crash-at-stage-0 is the legacy "died before the call" case.
      if (crashed[i] || crash_stage(i) == 0) {
        halted_[i] = true;
        continue;
      }
      const double t = result_.entry[i];
      queue_.schedule(t, [this, i, t] { enter_barrier(i, t); });
    }
    queue_.run();
    for (std::size_t i = 0; i < p_; ++i) {
      if (states_[i].done) {
        continue;
      }
      // Without injected faults an unfinished rank is an engine bug.
      OPTIBAR_ASSERT(!options_.crashed_ranks.empty() ||
                         !options_.faults.empty(),
                     "rank " << i << " never completed: simulator deadlock");
      result_.deadlocked = true;
      result_.stuck_ranks.push_back(i);
      result_.completion[i] = std::numeric_limits<double>::infinity();
    }
    return std::move(result_);
  }

 private:
  /// One stochastic cost contribution: base scaled by jitter and
  /// occasionally hit by a background-load spike.
  double perturb(double base) {
    double value = base;
    if (options_.jitter > 0.0) {
      const double factor = 1.0 + options_.jitter * rng_.next_normal();
      value *= std::max(0.05, factor);
    }
    if (options_.spike_probability > 0.0 &&
        rng_.next_double() < options_.spike_probability) {
      value += options_.spike_scale * base;
    }
    return value;
  }

  /// Payload (or other caller-supplied) surcharge of one message; 0
  /// without a hook, keeping every base cost — and the RNG stream —
  /// identical to the pure signalling model.
  double extra_cost(std::size_t stage, std::size_t src,
                    std::size_t dst) const {
    return options_.extra_message_cost
               ? options_.extra_message_cost(stage, src, dst)
               : 0.0;
  }

  /// Stage at which `rank` halts under the fault plan, or kNoCrash.
  std::size_t crash_stage(std::size_t rank) const {
    return injector_ ? injector_->crash_stage(rank)
                     : FaultInjector::kNoCrash;
  }

  void enter_barrier(std::size_t rank, double now) {
    states_[rank].entered = true;
    enter_stage(rank, 0, now);
  }

  void enter_stage(std::size_t rank, std::size_t stage, double now) {
    RankState& st = states_[rank];
    st.stage = stage;
    if (stage == schedule_.stage_count()) {
      st.done = true;
      result_.completion[rank] = now;
      return;
    }
    if (stage >= crash_stage(rank)) {
      // The rank dies on stage entry: nothing of this stage is sent or
      // matched, and inbound messages to the corpse are discarded at
      // on_inject. Synchronized senders to it then stall — the Eq. 3
      // guarantee seen from the failure side.
      halted_[rank] = true;
      return;
    }

    const std::vector<std::size_t> sources = schedule_.sources_of(rank, stage);
    const std::vector<std::size_t> targets = schedule_.targets_of(rank, stage);
    std::size_t put_count = 0;
    for (const std::size_t dst : targets) {
      put_count += schedule_.one_sided(stage, rank, dst) ? 1 : 0;
    }
    st.recvs_pending = sources.size();
    // Synchronized puts are fire-and-forget: the whole put batch is one
    // pending unit that completes at its last injection, never waiting
    // on matches. put_count == 0 reduces to the classic formula exactly.
    st.sends_pending =
        options_.synchronous_sends
            ? targets.size() - put_count + (put_count > 0 ? 1 : 0)
            : (targets.empty() ? 0 : 1);

    // Serial injection: first message pays O, the rest pay L each
    // (exactly the quantity the Section IV-A L benchmark measures).
    // Put edges share these slots, with the local startup O(rank,rank)
    // in place of the rendezvous O(rank,dst).
    double inject = now;
    for (std::size_t idx = 0; idx < targets.size(); ++idx) {
      const std::size_t dst = targets[idx];
      const bool put = schedule_.one_sided(stage, rank, dst);
      const double base = (idx == 0 ? profile_.o(rank, put ? rank : dst)
                                    : profile_.l(rank, dst)) +
                          extra_cost(stage, rank, dst);
      inject += perturb(base);
      if (put) {
        // One-sided edge: the put leaves the NIC here; a putdrop fault
        // loses the flag write in flight (the sender, complete at
        // injection, never learns — only the receiver stalls).
        if (injector_ && injector_->decide_put(rank, dst, stage,
                                               /*seq=*/0)) {
          continue;
        }
        queue_.schedule(inject, [this, rank, dst, stage] {
          on_put_inject(rank, dst, stage, queue_.now());
        });
        continue;
      }
      FaultInjector::Decision fault;
      if (injector_) {
        fault = injector_->decide(rank, dst, static_cast<int>(stage),
                                  /*seq=*/0);
      }
      inject += fault.delay_seconds;
      if (fault.drop) {
        // Lost in the network after injection: the sender paid NIC
        // time, the receiver never hears it, and in synchronized mode
        // the sender's stage never completes.
        continue;
      }
      queue_.schedule(inject, [this, rank, dst, stage] {
        on_inject(rank, dst, stage, queue_.now(), /*ghost=*/false);
      });
      for (std::size_t d = 0; d < fault.duplicates; ++d) {
        // Ghost copy: consumes an extra injection slot and receiver
        // processing, but has no protocol effect.
        inject += perturb(profile_.l(rank, dst) +
                          extra_cost(stage, rank, dst));
        queue_.schedule(inject, [this, rank, dst, stage] {
          on_inject(rank, dst, stage, queue_.now(), /*ghost=*/true);
        });
      }
    }
    if (!options_.synchronous_sends && !targets.empty()) {
      // Async mode: the send side of the stage completes at the last
      // injection, independent of matching.
      queue_.schedule(inject, [this, rank, stage] {
        RankState& sender = states_[rank];
        OPTIBAR_ASSERT(sender.stage == stage, "stale async-send token");
        OPTIBAR_ASSERT(sender.sends_pending == 1, "async token misuse");
        sender.sends_pending = 0;
        maybe_complete_stage(rank, queue_.now());
      });
    }
    if (options_.synchronous_sends && put_count > 0) {
      // The put batch's local completion token (see sends_pending above).
      queue_.schedule(inject, [this, rank, stage] {
        RankState& sender = states_[rank];
        OPTIBAR_ASSERT(sender.stage == stage, "stale put-batch token");
        OPTIBAR_ASSERT(sender.sends_pending > 0, "put token misuse");
        --sender.sends_pending;
        maybe_complete_stage(rank, queue_.now());
      });
    }

    // Messages that arrived before we entered this stage match now.
    for (const BufferedMessage& msg : buffered_[stage][rank]) {
      if (msg.put) {
        // A flag that landed in the window before we got here: visible
        // immediately on stage entry, no completion processing.
        finalize_put(msg.src, rank, stage, now, msg.injected);
      } else {
        match(msg.src, rank, stage, now, msg.injected, msg.ghost);
      }
    }
    buffered_[stage][rank].clear();

    maybe_complete_stage(rank, now);
  }

  void on_inject(std::size_t src, std::size_t dst, std::size_t stage,
                 double now, bool ghost) {
    // Shared-egress contention: a remote-bound message must acquire the
    // sender's egress resource; if busy, retry when it frees up.
    if (!options_.egress_resource_of.empty() &&
        options_.egress_resource_of[src] != options_.egress_resource_of[dst]) {
      const std::size_t resource = options_.egress_resource_of[src];
      if (egress_busy_[resource] > now) {
        queue_.schedule(egress_busy_[resource],
                        [this, src, dst, stage, ghost] {
                          on_inject(src, dst, stage, queue_.now(), ghost);
                        });
        return;
      }
      egress_busy_[resource] =
          now + perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    }
    if (halted_[dst]) {
      return;  // delivered to a corpse: silently discarded
    }
    RankState& receiver = states_[dst];
    if (receiver.entered && receiver.stage == stage) {
      match(src, dst, stage, now, now, ghost);
      return;
    }
    // The receiver cannot be past this stage: completing it requires
    // matching this very message (ghosts carry no such obligation —
    // the real copy already did).
    OPTIBAR_ASSERT(ghost || !receiver.entered || receiver.stage < stage,
                   "receiver " << dst << " advanced past stage " << stage
                               << " with unmatched inbound message");
    if (ghost && receiver.entered && receiver.stage > stage) {
      return;  // stale ghost: the stage is over, nothing left to occupy
    }
    buffered_[stage][dst].push_back(BufferedMessage{src, now, ghost, false});
  }

  /// A one-sided put hits the wire: acquire the sender's egress
  /// resource like any remote message, then land the flag write
  /// R(src,dst) later — the remote-write delivery latency, in place of
  /// the two-sided match-plus-processing path.
  void on_put_inject(std::size_t src, std::size_t dst, std::size_t stage,
                     double now) {
    if (!options_.egress_resource_of.empty() &&
        options_.egress_resource_of[src] != options_.egress_resource_of[dst]) {
      const std::size_t resource = options_.egress_resource_of[src];
      if (egress_busy_[resource] > now) {
        queue_.schedule(egress_busy_[resource], [this, src, dst, stage] {
          on_put_inject(src, dst, stage, queue_.now());
        });
        return;
      }
      egress_busy_[resource] =
          now + perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    }
    const double injected = now;
    queue_.schedule(now + perturb(profile_.r(src, dst)),
                    [this, src, dst, stage, injected] {
                      on_put_land(src, dst, stage, queue_.now(), injected);
                    });
  }

  /// The flag write became visible in the receiver's window. Unlike a
  /// two-sided arrival there is no completion processing and no sender
  /// to notify — the receiver either observes it now (at stage) or
  /// finds it on stage entry (buffered).
  void on_put_land(std::size_t src, std::size_t dst, std::size_t stage,
                   double now, double injected) {
    if (halted_[dst]) {
      return;  // written into a corpse's window: never observed
    }
    RankState& receiver = states_[dst];
    if (receiver.entered && receiver.stage == stage) {
      finalize_put(src, dst, stage, now, injected);
      return;
    }
    // Completing the stage requires observing this very flag, so the
    // receiver cannot be past it (puts have no ghost copies).
    OPTIBAR_ASSERT(!receiver.entered || receiver.stage < stage,
                   "receiver " << dst << " advanced past stage " << stage
                               << " with an unobserved flag");
    buffered_[stage][dst].push_back(
        BufferedMessage{src, injected, false, true});
  }

  /// The receiver observed a one-sided flag: pure protocol effect —
  /// no receiver CPU time, and no sender decrement (the put completed
  /// locally at injection).
  void finalize_put(std::size_t src, std::size_t dst, std::size_t stage,
                    double now, double injected) {
    if (options_.record_trace) {
      result_.trace.push_back(MessageTrace{stage, src, dst, injected, now});
    }
    RankState& receiver = states_[dst];
    OPTIBAR_ASSERT(receiver.recvs_pending > 0,
                   "unexpected flag " << src << "->" << dst << " in stage "
                                      << stage);
    --receiver.recvs_pending;
    maybe_complete_stage(dst, now);
  }

  /// A message has arrived (or was found buffered at stage entry): run
  /// it through the receiver's serial completion processing, then
  /// finalize the match once processing is done. Ghost copies consume
  /// the processing time but never affect the protocol state.
  void match(std::size_t src, std::size_t dst, std::size_t stage, double now,
             double injected, bool ghost = false) {
    if (!options_.receiver_processing) {
      if (!ghost) {
        finalize_match(src, dst, stage, now, injected);
      }
      return;
    }
    const double done =
        std::max(now, recv_busy_[dst]) +
        perturb(profile_.l(src, dst) + extra_cost(stage, src, dst));
    recv_busy_[dst] = done;
    if (ghost) {
      return;
    }
    queue_.schedule(done, [this, src, dst, stage, injected] {
      finalize_match(src, dst, stage, queue_.now(), injected);
    });
  }

  void finalize_match(std::size_t src, std::size_t dst, std::size_t stage,
                      double now, double injected) {
    if (options_.record_trace) {
      result_.trace.push_back(MessageTrace{stage, src, dst, injected, now});
    }
    RankState& receiver = states_[dst];
    OPTIBAR_ASSERT(receiver.recvs_pending > 0,
                   "unexpected message " << src << "->" << dst << " in stage "
                                         << stage);
    --receiver.recvs_pending;
    maybe_complete_stage(dst, now);

    if (options_.synchronous_sends) {
      RankState& sender = states_[src];
      OPTIBAR_ASSERT(sender.stage == stage && sender.sends_pending > 0,
                     "match for sender " << src
                                         << " in unexpected stage state");
      --sender.sends_pending;
      maybe_complete_stage(src, now);
    }
  }

  /// When the nonblocking-progress model is on and `rank` is still
  /// inside its post-entry compute window, barrier progress only
  /// happens at the rank's poll ticks: return the first tick at or
  /// after `now` (capped at the end of the window, where the rank
  /// blocks in wait() and progress is immediate). `now` otherwise.
  double progress_time(std::size_t rank, double now) const {
    if (options_.compute_after_post.empty() ||
        options_.progress_poll_interval <= 0.0) {
      return now;
    }
    const double entry = result_.entry[rank];
    const double busy_until = entry + options_.compute_after_post[rank];
    if (now >= busy_until) {
      return now;
    }
    const double poll = options_.progress_poll_interval;
    double tick = entry + std::ceil((now - entry) / poll) * poll;
    if (tick < now) {
      tick += poll;  // floating-point guard: the tick may not precede now
    }
    return std::min(tick, busy_until);
  }

  void maybe_complete_stage(std::size_t rank, double now) {
    RankState& st = states_[rank];
    if (st.done || st.recvs_pending > 0 || st.sends_pending > 0) {
      return;
    }
    const double at = progress_time(rank, now);
    if (at > now) {
      // Host-driven progress: the prerequisites are in, but the rank is
      // computing and only notices at its next handle poll. Nothing can
      // re-trigger this stage meanwhile (both pending counts are zero),
      // so exactly one deferred transition is ever scheduled.
      queue_.schedule(at, [this, rank] {
        enter_stage(rank, states_[rank].stage + 1, queue_.now());
      });
      return;
    }
    enter_stage(rank, st.stage + 1, now);
  }

  const Schedule& schedule_;
  const TopologyProfile& profile_;
  const SimOptions& options_;
  std::size_t p_;
  Rng rng_;
  EventQueue queue_;
  std::optional<FaultInjector> injector_;
  std::vector<bool> halted_;  ///< crashed (at stage 0 or later)
  std::vector<RankState> states_;
  std::vector<double> recv_busy_;
  std::vector<double> egress_busy_;
  std::vector<std::vector<std::vector<BufferedMessage>>> buffered_;
  SimResult result_;
};

}  // namespace

SimResult simulate_reference(const Schedule& schedule,
                             const TopologyProfile& profile,
                             const SimOptions& options) {
  return ReferenceSimulation(schedule, profile, options).run();
}

}  // namespace optibar
