#include "netsim/trace_export.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace optibar {

void write_trace_csv(std::ostream& os, const SimResult& result) {
  os << "stage,src,dst,injected,matched,duration\n";
  os << std::setprecision(17) << std::scientific;
  for (const MessageTrace& m : result.trace) {
    os << m.stage << ',' << m.src << ',' << m.dst << ',' << m.injected << ','
       << m.matched << ',' << (m.matched - m.injected) << '\n';
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing trace CSV");
}

void write_trace_chrome_json(std::ostream& os, const SimResult& result,
                             double time_scale) {
  OPTIBAR_REQUIRE(time_scale > 0.0, "time_scale must be positive");
  os << "[\n";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << json;
  };
  os << std::setprecision(12);
  for (const MessageTrace& m : result.trace) {
    std::ostringstream event;
    event << std::setprecision(12);
    event << R"({"name":"s)" << m.stage << ' ' << m.src << "->" << m.dst
          << R"(","ph":"X","pid":0,"tid":)" << m.src << R"(,"ts":)"
          << m.injected * time_scale << R"(,"dur":)"
          << (m.matched - m.injected) * time_scale
          << R"(,"args":{"stage":)" << m.stage << R"(,"dst":)" << m.dst
          << "}}";
    emit(event.str());
  }
  // One instant event per rank exit so completion is visible.
  for (std::size_t rank = 0; rank < result.completion.size(); ++rank) {
    std::ostringstream event;
    event << std::setprecision(12);
    event << R"({"name":"exit","ph":"i","pid":0,"tid":)" << rank
          << R"(,"ts":)" << result.completion[rank] * time_scale
          << R"(,"s":"t"})";
    emit(event.str());
  }
  os << "\n]\n";
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing trace JSON");
}

std::string render_timeline(const SimResult& result, std::size_t width) {
  OPTIBAR_REQUIRE(width >= 8, "timeline width must be >= 8 columns");
  OPTIBAR_REQUIRE(!result.completion.empty(), "empty result");
  const std::size_t p = result.completion.size();

  double t_min = result.entry[0];
  double t_max = result.completion[0];
  for (std::size_t r = 0; r < p; ++r) {
    t_min = std::min(t_min, result.entry[r]);
    t_max = std::max(t_max, result.completion[r]);
  }
  const double span = t_max - t_min;
  auto column = [&](double t) {
    if (span <= 0.0) {
      return std::size_t{0};
    }
    const double fraction = (t - t_min) / span;
    return std::min(width - 1,
                    static_cast<std::size_t>(fraction *
                                             static_cast<double>(width)));
  };

  std::vector<std::string> rows(p, std::string(width, ' '));
  for (std::size_t r = 0; r < p; ++r) {
    const std::size_t from = column(result.entry[r]);
    const std::size_t to = column(result.completion[r]);
    for (std::size_t c = from; c <= to; ++c) {
      rows[r][c] = '-';
    }
    rows[r][to] = '|';
  }
  for (const MessageTrace& m : result.trace) {
    const char mark = static_cast<char>('0' + m.stage % 10);
    const std::size_t from = column(m.injected);
    const std::size_t to = column(m.matched);
    for (std::size_t c = from; c <= to; ++c) {
      char& cell = rows[m.src][c];
      cell = (cell == '-' || cell == ' ') ? mark : (cell == mark ? mark : '#');
    }
  }

  std::ostringstream os;
  os << "timeline over " << span << " s (" << width << " cols, '-' in "
     << "barrier, digits = stage of in-flight sends, '|' exit):\n";
  for (std::size_t r = 0; r < p; ++r) {
    os << (r < 10 ? " r" : "r") << r << " " << rows[r] << '\n';
  }
  return os.str();
}

}  // namespace optibar
