// Calendar-queue scheduler over typed simulation events.
//
// The zero-alloc replacement for EventQueue on the netsim hot path
// (EventQueue remains as the reference scheduler — see engine.hpp's
// simulate_reference). Three structural changes buy the throughput:
//
//   - events are a typed POD (SimEvent) dispatched through a switch in
//     the engine, not a heap-allocated std::function closure;
//   - event storage is a slab arena with a free list: pending events
//     live in reused slots, so steady-state scheduling performs no
//     heap allocation at all once the slab is warm;
//   - the priority queue is a calendar queue (R. Brown, CACM 1988):
//     an array of time-bucketed lanes, each holding its events sorted
//     by (time, seq). With the bucket width adapted to the observed
//     event spacing, schedule() and pop() are O(1) amortized instead
//     of the binary heap's O(log n).
//
// Determinism contract (the invariant everything else leans on): pop()
// returns events in exactly ascending (time, insertion-sequence) order
// — the same total order as EventQueue — regardless of bucket layout,
// resize history, or floating-point bucket-index rounding:
//
//   - equal times always map to the same bucket (the index is a pure
//     function of time and width), and each bucket is kept sorted, so
//     ties resolve by insertion sequence;
//   - the year scan tracks the cursor's *virtual* bucket number as an
//     integer and tests eligibility with the SAME virtual_bucket()
//     function that placed the event — never with a recomputed
//     (vb+1)*width bound, which floating-point rounding can put on the
//     other side of floor(time/width) and thereby pop a later bucket's
//     event first;
//   - when every pending event lives in a future year the scan comes up
//     empty and the direct-search fallback pops the global (time, seq)
//     minimum — order is never violated, the worst case is one wasted
//     ring scan.
//
// reset() keeps every capacity (buckets, slab, free list) and the
// adapted bucket width, so repeated simulations reuse all storage.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace optibar {

/// What a fired event does (the engine's dispatch switch).
enum class SimEventKind : std::uint8_t {
  kEnter = 0,      ///< rank `a` enters the barrier
  kInject,         ///< message `a` -> `b` of `stage` arrives (ghost?)
  kAsyncSendDone,  ///< eager-send stage token of rank `a` completes
  kFinalizeMatch,  ///< receiver processing of `a` -> `b` done (payload
                   ///< = injection time, for the trace)
  kAdvanceStage,   ///< deferred poll-tick transition of rank `a`
  kPutInject,      ///< one-sided put `a` -> `b` of `stage` hits the wire
  kPutLand,        ///< put flag `a` -> `b` becomes visible (payload =
                   ///< injection time, for the trace)
  kPutsDone,       ///< sync-mode put-batch token of rank `a` completes
};

/// One typed simulation event. Plain data: the meaning of a/b/stage/
/// payload depends on `kind` (see SimEventKind). Time and tie-break
/// sequence live in the queue's bucket entries, not here.
struct SimEvent {
  SimEventKind kind = SimEventKind::kEnter;
  bool ghost = false;
  std::uint32_t stage = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double payload = 0.0;
};

class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  /// Schedule `event` at absolute virtual time `time`; must not be in
  /// the past relative to now().
  void schedule(double time, const SimEvent& event) {
    OPTIBAR_REQUIRE(time >= now_, "event scheduled in the past: " << time
                                                                  << " < "
                                                                  << now_);
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slab_[slot] = event;
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(event);
    }
    const Ref ref{time, next_seq_++, slot};
    Bucket& bucket = buckets_[ring_index(virtual_bucket(time))];
    if (bucket.refs.empty() || before(bucket.refs.back(), ref)) {
      bucket.refs.push_back(ref);  // common case: append in order
    } else {
      const auto it =
          std::upper_bound(bucket.refs.begin() +
                               static_cast<std::ptrdiff_t>(bucket.head),
                           bucket.refs.end(), ref,
                           [](const Ref& a, const Ref& b) {
                             return before(a, b);
                           });
      bucket.refs.insert(it, ref);
    }
    ++count_;
    if (count_ > 2 * buckets_.size()) {
      rebuild(buckets_.size() * 2);
    }
  }

  double now() const { return now_; }
  bool empty() const { return count_ == 0; }
  std::size_t pending() const { return count_; }

  /// Total events scheduled since the last reset() (the events/sec
  /// numerator of bench_netsim).
  std::uint64_t scheduled() const { return next_seq_; }

  /// Remove and return the earliest event (ascending (time, seq));
  /// advances now().
  SimEvent pop() {
    OPTIBAR_REQUIRE(count_ > 0, "pop on empty calendar queue");
    std::size_t scanned = 0;
    while (scanned < buckets_.size()) {
      Bucket& bucket = buckets_[cursor_];
      // Eligible = belongs to the cursor's year. Computed with the same
      // virtual_bucket() that placed the event, so placement and scan
      // cannot disagree (a `time < (vb+1)*width` bound can, when the
      // division rounds down across the boundary).
      if (bucket.head < bucket.refs.size() &&
          virtual_bucket(bucket.refs[bucket.head].time) <= cursor_vb_) {
        return take(bucket);
      }
      cursor_ = (cursor_ + 1) % buckets_.size();
      ++cursor_vb_;
      ++scanned;
    }
    // Every event lives in a future year (or a boundary rounded past
    // the scan): jump straight to the global minimum.
    std::size_t best = buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const Bucket& b = buckets_[i];
      if (b.head >= b.refs.size()) {
        continue;
      }
      if (best == buckets_.size() ||
          before(b.refs[b.head], buckets_[best].refs[buckets_[best].head])) {
        best = i;
      }
    }
    OPTIBAR_ASSERT(best < buckets_.size(), "calendar queue lost an event");
    cursor_ = best;
    return take(buckets_[best]);
  }

  /// Drop all pending events and rewind time, keeping every capacity
  /// (buckets, slab, free list) and the adapted bucket width.
  void reset() {
    for (Bucket& bucket : buckets_) {
      bucket.refs.clear();
      bucket.head = 0;
    }
    slab_.clear();
    free_.clear();
    count_ = 0;
    now_ = 0.0;
    next_seq_ = 0;
    cursor_ = 0;
    cursor_vb_ = 0;
  }

  /// Introspection for the unit tests.
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

 private:
  struct Ref {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Bucket {
    std::vector<Ref> refs;
    std::size_t head = 0;  ///< popped prefix (compacted when drained)
  };

  static constexpr std::size_t kMinBuckets = 8;

  static bool before(const Ref& a, const Ref& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  std::uint64_t virtual_bucket(double time) const {
    const double q = time / width_;
    // Clamp pathological quotients (tiny widths against far-future
    // times); monotonicity — all the order proof needs — survives.
    if (q >= 9.0e18) {
      return static_cast<std::uint64_t>(9.0e18);
    }
    return static_cast<std::uint64_t>(q);
  }

  std::size_t ring_index(std::uint64_t vb) const {
    return static_cast<std::size_t>(vb % buckets_.size());
  }

  SimEvent take(Bucket& bucket) {
    const Ref ref = bucket.refs[bucket.head++];
    if (bucket.head == bucket.refs.size()) {
      bucket.refs.clear();
      bucket.head = 0;
    }
    --count_;
    now_ = ref.time;
    // Re-anchor the scan at the popped event's exact virtual bucket:
    // this keeps the insert invariant (new events never land behind
    // the cursor) exact even across float boundary rounding.
    cursor_vb_ = virtual_bucket(ref.time);
    cursor_ = ring_index(cursor_vb_);
    const SimEvent event = slab_[ref.slot];
    free_.push_back(ref.slot);
    if (count_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
      rebuild(buckets_.size() / 2);
    }
    return event;
  }

  /// Re-bucket everything into `new_count` buckets with a width fitted
  /// to the observed event spacing. O(n log n), amortized O(1) per
  /// operation by the doubling/halving thresholds.
  void rebuild(std::size_t new_count) {
    scratch_.clear();
    for (Bucket& bucket : buckets_) {
      scratch_.insert(scratch_.end(),
                      bucket.refs.begin() +
                          static_cast<std::ptrdiff_t>(bucket.head),
                      bucket.refs.end());
      bucket.refs.clear();
      bucket.head = 0;
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Ref& a, const Ref& b) { return before(a, b); });
    buckets_.resize(new_count);
    width_ = fitted_width();
    // Appending in globally sorted order keeps every bucket sorted.
    for (const Ref& ref : scratch_) {
      buckets_[ring_index(virtual_bucket(ref.time))].refs.push_back(ref);
    }
    cursor_vb_ = virtual_bucket(now_);
    cursor_ = ring_index(cursor_vb_);
  }

  /// Bucket width from the sorted scratch_: ~1/3 of the mean event gap
  /// over the middle 80% (trimming shields the estimate from a single
  /// far-future outlier stretching the span). Degenerate spreads (all
  /// ties, empty) keep the current width.
  double fitted_width() {
    const std::size_t n = scratch_.size();
    if (n < 2) {
      return width_;
    }
    const std::size_t trim = n / 10;
    double span = scratch_[n - 1 - trim].time - scratch_[trim].time;
    std::size_t gaps = n - 1 - 2 * trim;
    if (!(span > 0.0)) {
      span = scratch_.back().time - scratch_.front().time;  // untrimmed
      gaps = n - 1;
    }
    if (!(span > 0.0)) {
      return width_;  // all events tie: width is irrelevant
    }
    const double w = 3.0 * span / static_cast<double>(gaps);
    if (!(w > 1e-300) || !(w < 1e300)) {
      return width_;
    }
    return w;
  }

  std::vector<Bucket> buckets_;
  std::vector<SimEvent> slab_;     ///< event payload arena
  std::vector<std::uint32_t> free_;  ///< recycled slab slots
  std::vector<Ref> scratch_;       ///< rebuild staging
  double width_ = 1.0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  std::size_t cursor_ = 0;        ///< ring position of the scan
  std::uint64_t cursor_vb_ = 0;   ///< the scan's virtual bucket number
};

}  // namespace optibar
