/*
 * optibar C API — topology-adaptive barriers for unmodified MPI codes.
 *
 * Section VIII of Meyer & Elster (IPDPS 2011) proposes "a library
 * implementation which would benefit unmodified application codes" built
 * on "a solution which stores the profile in a manner which can be
 * efficiently indexed at run-time". This header is that interface for C
 * (and, via ISO_C_BINDING, Fortran) MPI applications:
 *
 *   1. the admin profiles the machine once (optibar CLI) and installs
 *      the profile file;
 *   2. the application opens the library against that file;
 *   3. for its communicator (world or any rank subset) it requests a
 *      *plan*: the tuned barrier flattened into a per-rank list of
 *      point-to-point operations;
 *   4. at each barrier call the application replays its rank's ops with
 *      its own MPI calls: MPI_Issend / MPI_Irecv per op (the op's stage
 *      field is the tag), MPI_Waitall wherever stage_end is set.
 *
 * All functions are thread-safe; distinct subsets tune in parallel and
 * repeated plan requests are read-locked cache hits.
 *
 * ERROR MODEL. Every entry point sets a thread-local status code,
 * readable via optibar_last_status(); on failure a thread-local
 * message is readable via optibar_last_error(). Failing functions
 * additionally return NULL / 0. The *_v2 entry points are the
 * preferred spellings; the original errbuf-taking signatures remain as
 * thin wrappers over them.
 *
 * MIGRATION from the errbuf API:
 *     optibar_open(path, errbuf, len)       -> optibar_open_v2(path, 1)
 *     optibar_world_plan(lib, errbuf, len)  -> optibar_world_plan_v2(lib)
 *     optibar_subset_plan(lib, r, n, e, l)  -> optibar_subset_plan_v2(lib, r, n)
 * and on NULL results read optibar_last_status() / optibar_last_error()
 * instead of the buffer.
 */
#ifndef OPTIBAR_CAPI_H
#define OPTIBAR_CAPI_H

#include <stddef.h>
#include <stdint.h>

/* Compile-time deprecation marker for the legacy errbuf signatures. */
#if defined(__GNUC__) || defined(__clang__)
#define OPTIBAR_DEPRECATED(msg) __attribute__((deprecated(msg)))
#elif defined(_MSC_VER)
#define OPTIBAR_DEPRECATED(msg) __declspec(deprecated(msg))
#else
#define OPTIBAR_DEPRECATED(msg)
#endif

#ifdef __cplusplus
extern "C" {
#endif

typedef struct optibar_library_s optibar_library;
typedef struct optibar_plan_s optibar_plan;

/* Outcome of the most recent optibar call on the calling thread. */
typedef enum {
  OPTIBAR_OK = 0,
  OPTIBAR_ERR_INVALID_ARGUMENT = 1, /* NULL handle, bad rank/subset, ... */
  OPTIBAR_ERR_IO = 2,               /* profile file unreadable/malformed */
  OPTIBAR_ERR_TUNING = 3,           /* the tuning pipeline failed */
  OPTIBAR_ERR_INTERNAL = 4,         /* unexpected failure; report a bug */
  OPTIBAR_DEGRADED = 5 /* plan served, but it is the quarantine fallback
                        * (a dissemination barrier), not the tuned plan.
                        * Not an error: the plan pointer is non-NULL and
                        * fully usable; optibar_last_error() carries the
                        * quarantine reason. See optibar_report_stall. */
} optibar_status;

/* Status of the most recent optibar call made by this thread. */
optibar_status optibar_last_status(void);

/* Message of the most recent failure on this thread; "" after success.
 * The pointer stays valid until the thread's next optibar call. */
const char* optibar_last_error(void);

/* Static name of a status code, e.g. "OPTIBAR_ERR_IO". */
const char* optibar_status_string(optibar_status status);

/* One point-to-point operation of a rank's barrier sequence. */
typedef struct {
  int stage;     /* stage index; use as the MPI tag (offset per episode) */
  int is_send;   /* 1: synchronized send to `peer`; 0: receive from it */
  int peer;      /* local rank within the plan's communicator */
  int stage_end; /* 1: MPI_Waitall over the stage's requests after this op */
} optibar_op;

/* Open a library over a stored machine profile. `threads` is the
 * tuning engine's execution width: 1 = serial, 0 = one per hardware
 * thread. NULL on failure (status: IO or INVALID_ARGUMENT). */
optibar_library* optibar_open_v2(const char* profile_path, size_t threads);

void optibar_close(optibar_library* library);

/* Number of ranks covered by the profile; 0 on NULL. */
size_t optibar_ranks(const optibar_library* library);

/* Tuned plan for all ranks. Owned by the library; valid until close.
 * NULL on failure (status: INVALID_ARGUMENT or TUNING). */
const optibar_plan* optibar_world_plan_v2(optibar_library* library);

/* Tuned plan for a rank subset (the subset order defines the plan's
 * local rank numbering). Cached: repeated requests are lookups.
 * NULL on failure (status: INVALID_ARGUMENT or TUNING). */
const optibar_plan* optibar_subset_plan_v2(optibar_library* library,
                                           const size_t* ranks, size_t count);

/* Batch tuning: `count` subsets, concatenated into `ranks` with
 * per-subset lengths in `counts` (subset s occupies ranks[sum(counts[0
 * .. s-1]) .. +counts[s]]). Not-yet-cached subsets tune in parallel
 * across the library's thread pool. Fills out_plans[0..count-1] and
 * returns count; on failure returns 0 and sets the status (no plans
 * are partially written). */
size_t optibar_tune_all(optibar_library* library, const size_t* ranks,
                        const size_t* counts, size_t count,
                        const optibar_plan** out_plans);

/* Plan introspection. */
size_t optibar_plan_ranks(const optibar_plan* plan);
double optibar_plan_predicted_seconds(const optibar_plan* plan);
size_t optibar_plan_stage_count(const optibar_plan* plan);

/* Number of ops rank `rank` executes per barrier call; 0 (with status
 * INVALID_ARGUMENT) when `plan` is NULL or `rank` is out of range. */
size_t optibar_plan_op_count(const optibar_plan* plan, size_t rank);

/* Copy up to `capacity` of rank `rank`'s ops into `out`; returns the
 * number copied (equal to op_count when capacity suffices), 0 with
 * status INVALID_ARGUMENT on NULL plan/out or out-of-range rank. */
size_t optibar_plan_ops(const optibar_plan* plan, size_t rank,
                        optibar_op* out, size_t capacity);

/*
 * FAILURE SEMANTICS. Tuned plans are an optimization, never a
 * correctness dependency. An application that watches a served plan
 * stall in production (its own timeout, or a StallReport from the
 * simulation harness) reports the failure here. After
 * `quarantine_threshold` reports (default 3) for the same subset the
 * library quarantines the tuned plan: subsequent plan requests for
 * that subset return a conservative dissemination barrier instead and
 * set the status OPTIBAR_DEGRADED (the plan pointer is still valid and
 * usable — DEGRADED is a warning, not a failure). Previously returned
 * plan pointers for the subset remain valid.
 *
 * Returns 1 when the subset is now served degraded, 0 when the report
 * was recorded but the threshold is not yet reached, and -1 on error
 * (status INVALID_ARGUMENT: bad subset, or no plan was ever served for
 * it). `detail` is an optional human-readable description of the
 * observed failure (may be NULL); it is embedded in the quarantine
 * reason surfaced through optibar_last_error(). */
int optibar_report_stall(optibar_library* library, const size_t* ranks,
                         size_t count, const char* detail);

/* 1 when `plan` is a quarantine fallback (see optibar_report_stall),
 * 0 otherwise; 0 with status INVALID_ARGUMENT on NULL. */
int optibar_plan_is_degraded(const optibar_plan* plan);

/*
 * PLAN SERVICE. The library is a long-running, self-healing plan
 * service: every served plan carries a lifecycle state
 * (healthy -> suspect -> quarantined -> retuning -> probation ->
 * healthy; degraded is terminal), driven by the feedback calls below.
 * With auto-repair enabled (optibar_open_service) a quarantined plan is
 * re-tuned by a background worker against failure-inflated cost
 * estimates while the fallback keeps serving; the repaired plan is
 * promoted only after it beats the fallback in simulation, then must
 * survive a probation period of successful executions.
 */
typedef enum {
  OPTIBAR_PLAN_HEALTHY = 0,     /* serving the tuned plan */
  OPTIBAR_PLAN_SUSPECT = 1,     /* failures below the threshold */
  OPTIBAR_PLAN_QUARANTINED = 2, /* serving the fallback; repair queued */
  OPTIBAR_PLAN_RETUNING = 3,    /* serving the fallback; repair running */
  OPTIBAR_PLAN_PROBATION = 4,   /* serving the repaired plan, on trial */
  OPTIBAR_PLAN_DEGRADED = 5     /* fallback forever; repairs exhausted */
} optibar_plan_state_t;

/* Open a library with the self-healing service enabled: auto_repair
 * != 0 starts the background repair loop (quarantined plans are
 * re-tuned and promoted back). Otherwise identical to optibar_open_v2.
 * NULL on failure (status: IO or INVALID_ARGUMENT). */
optibar_library* optibar_open_service(const char* profile_path,
                                      size_t threads, int auto_repair);

/* Lifecycle state of the subset's plan, written to *out_state. Returns
 * OPTIBAR_OK, or an error status (INVALID_ARGUMENT: bad subset, NULL
 * out_state, or no plan was ever served for the subset). */
optibar_status optibar_plan_state(optibar_library* library,
                                  const size_t* ranks, size_t count,
                                  optibar_plan_state_t* out_state);

/* Feed one measured point-to-point latency (seconds) for the local
 * subset ranks (src, dst) into the subset's drift monitor. Non-finite
 * or negative measurements, src == dst, and out-of-range indices are
 * rejected with INVALID_ARGUMENT. With auto-repair, drift beyond the
 * re-tune threshold triggers a background re-tune of the plan. */
optibar_status optibar_report_latency(optibar_library* library,
                                      const size_t* ranks, size_t count,
                                      size_t src, size_t dst, double seconds);

/* Positive feedback: the subset's served plan executed to completion.
 * Advances probation back toward healthy and clears suspect counts. */
optibar_status optibar_report_success(optibar_library* library,
                                      const size_t* ranks, size_t count);

/* Block until the background repair queue is drained and no repair is
 * running. Immediate when auto-repair is off. */
optibar_status optibar_service_wait(optibar_library* library);

/* Persist every cached plan plus its health record to `path` (plan
 * store v1, docs/FORMATS.md). The write is atomic: a temporary sibling
 * is renamed into place. */
optibar_status optibar_store_save(optibar_library* library, const char* path);

/* Warm restart: load a plan store into a freshly opened library (no
 * plans requested yet). Health states are restored; with auto-repair,
 * loaded quarantines re-enqueue their repair. Malformed, truncated, or
 * mismatched stores fail with OPTIBAR_ERR_IO and leave the library
 * usable. */
optibar_status optibar_store_load(optibar_library* library, const char* path);

/* Collective operation kinds for optibar_tune_collective_v2. */
typedef enum {
  OPTIBAR_COLLECTIVE_BCAST = 0,
  OPTIBAR_COLLECTIVE_REDUCE = 1,
  OPTIBAR_COLLECTIVE_ALLREDUCE = 2
} optibar_collective_op;

/* Tune a payload-carrying collective (broadcast / reduce / allreduce)
 * against the library's profile. `payload_bytes` is the total payload
 * (must be a multiple of 8, the engine's element width; 0 tunes the
 * pure signalling pattern); `root` is the root rank for the rooted ops
 * and is ignored for allreduce. On success writes the predicted
 * completion time into *out_predicted_seconds and the stage count of
 * the winning schedule into *out_stages (either pointer may be NULL)
 * and returns OPTIBAR_OK. On failure returns the error status (also
 * readable via optibar_last_status / optibar_last_error) and leaves
 * the out parameters unwritten. */
optibar_status optibar_tune_collective_v2(optibar_library* library,
                                          optibar_collective_op op,
                                          size_t payload_bytes, size_t root,
                                          double* out_predicted_seconds,
                                          size_t* out_stages);

/* Transport policy chosen by optibar_tune_hybrid_v2. */
typedef enum {
  OPTIBAR_TRANSPORT_TWO_SIDED = 0, /* every signal is a matched send/recv */
  OPTIBAR_TRANSPORT_ONE_SIDED = 1, /* every signal is an RMA put */
  OPTIBAR_TRANSPORT_HYBRID = 2     /* per-edge choice by predicted cost */
} optibar_transport;

/* Tune the full-communicator barrier and pick the cheapest transport
 * assignment among all-two-sided, all-one-sided, and the per-edge
 * hybrid descent, under the extended cost model (one-sided delivery
 * latency R; profiles without R data price puts at the conservative
 * L fallback and come back all-two-sided). On success writes the
 * predicted completion time of the winner into *out_predicted_seconds,
 * the winning policy into *out_transport, and the number of signals it
 * tags one-sided into *out_one_sided_signals (each pointer may be
 * NULL) and returns OPTIBAR_OK. On failure returns the error status
 * with optibar_last_error() describing the failure, and leaves the out
 * parameters unwritten. */
optibar_status optibar_tune_hybrid_v2(optibar_library* library,
                                      double* out_predicted_seconds,
                                      optibar_transport* out_transport,
                                      size_t* out_one_sided_signals);

/*
 * NONBLOCKING EPISODES (MPI_Ibarrier-style lifecycle). A post starts
 * one in-process execution of a tuned schedule on the library's
 * threaded runtime — every rank of the profile runs as a thread — and
 * returns an episode handle immediately, so the caller overlaps its own
 * computation with the synchronization. The handle follows the same
 * status-code idiom as every other entry point: each call sets
 * optibar_last_status() / optibar_last_error().
 *
 *     optibar_episode* e = optibar_ibarrier_post(lib);
 *     while (optibar_ibarrier_test(e) == 0) { compute_some(); }
 *     optibar_ibarrier_wait(e);   // joins and frees the episode
 *
 * An episode MUST be waited exactly once (wait frees it, even after
 * failure) and before optibar_close on its library. Episodes are
 * independent; several may be in flight concurrently.
 */
typedef struct optibar_episode_s optibar_episode;

/* Post one execution of the library's tuned full-communicator barrier
 * (the same plan optibar_world_plan_v2 serves, including the degraded
 * fallback after quarantine). NULL on failure (status:
 * INVALID_ARGUMENT or TUNING). */
optibar_episode* optibar_ibarrier_post(optibar_library* library);

/* Nonblocking probe: 1 when the episode completed, 0 while it is still
 * in flight, -1 when `episode` is NULL or the run failed (the status
 * carries the failure; the episode stays valid until waited). */
int optibar_ibarrier_test(optibar_episode* episode);

/* Block until the episode reaches a terminal state, free it, and
 * return its final status (OPTIBAR_OK on completion). */
optibar_status optibar_ibarrier_wait(optibar_episode* episode);

/* Post one execution of a tuned payload-carrying collective. `data`
 * holds every rank's buffer concatenated — ranks * elem_count
 * little-endian 64-bit words, rank r's buffer at data[r * elem_count]
 * — and must stay valid and untouched until the episode tests done or
 * is waited; on completion it holds the per-rank results (reduce
 * combines with sum). `root` is ignored for allreduce. NULL on failure
 * (status: INVALID_ARGUMENT or TUNING). */
optibar_episode* optibar_icollective_post(optibar_library* library,
                                          optibar_collective_op op,
                                          uint64_t* data, size_t elem_count,
                                          size_t root);

/* Same contract as optibar_ibarrier_test / optibar_ibarrier_wait. */
int optibar_icollective_test(optibar_episode* episode);
optibar_status optibar_icollective_wait(optibar_episode* episode);

/*
 * DEPRECATED errbuf-based signatures — thin wrappers over the *_v2
 * functions above (serial tuning, threads = 1). On failure they copy
 * optibar_last_error() into errbuf (always NUL-terminated, truncating
 * if needed). Prefer the *_v2 forms + optibar_last_status(): they
 * carry a machine-readable status code, never truncate the message,
 * and skip the per-call buffer plumbing. These wrappers remain only
 * for source compatibility with pre-status callers and may be removed
 * in a future major version.
 */
OPTIBAR_DEPRECATED("use optibar_open_v2 + optibar_last_status/last_error")
optibar_library* optibar_open(const char* profile_path, char* errbuf,
                              size_t errbuf_len);
OPTIBAR_DEPRECATED("use optibar_world_plan_v2 + optibar_last_status/last_error")
const optibar_plan* optibar_world_plan(optibar_library* library, char* errbuf,
                                       size_t errbuf_len);
OPTIBAR_DEPRECATED(
    "use optibar_subset_plan_v2 + optibar_last_status/last_error")
const optibar_plan* optibar_subset_plan(optibar_library* library,
                                        const size_t* ranks, size_t count,
                                        char* errbuf, size_t errbuf_len);

#ifdef __cplusplus
}
#endif

#endif /* OPTIBAR_CAPI_H */
