/*
 * optibar C API — topology-adaptive barriers for unmodified MPI codes.
 *
 * Section VIII of Meyer & Elster (IPDPS 2011) proposes "a library
 * implementation which would benefit unmodified application codes" built
 * on "a solution which stores the profile in a manner which can be
 * efficiently indexed at run-time". This header is that interface for C
 * (and, via ISO_C_BINDING, Fortran) MPI applications:
 *
 *   1. the admin profiles the machine once (optibar CLI) and installs
 *      the profile file;
 *   2. the application opens the library against that file;
 *   3. for its communicator (world or any rank subset) it requests a
 *      *plan*: the tuned barrier flattened into a per-rank list of
 *      point-to-point operations;
 *   4. at each barrier call the application replays its rank's ops with
 *      its own MPI calls: MPI_Issend / MPI_Irecv per op (the op's stage
 *      field is the tag), MPI_Waitall wherever stage_end is set.
 *
 * All functions are thread-safe. Failing functions return NULL / 0 and,
 * when an error buffer is supplied, copy a message into it.
 */
#ifndef OPTIBAR_CAPI_H
#define OPTIBAR_CAPI_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct optibar_library_s optibar_library;
typedef struct optibar_plan_s optibar_plan;

/* One point-to-point operation of a rank's barrier sequence. */
typedef struct {
  int stage;     /* stage index; use as the MPI tag (offset per episode) */
  int is_send;   /* 1: synchronized send to `peer`; 0: receive from it */
  int peer;      /* local rank within the plan's communicator */
  int stage_end; /* 1: MPI_Waitall over the stage's requests after this op */
} optibar_op;

/* Open a library over a stored machine profile. NULL on failure. */
optibar_library* optibar_open(const char* profile_path, char* errbuf,
                              size_t errbuf_len);

void optibar_close(optibar_library* library);

/* Number of ranks covered by the profile; 0 on NULL. */
size_t optibar_ranks(const optibar_library* library);

/* Tuned plan for all ranks. Owned by the library; valid until close. */
const optibar_plan* optibar_world_plan(optibar_library* library, char* errbuf,
                                       size_t errbuf_len);

/* Tuned plan for a rank subset (the subset order defines the plan's
 * local rank numbering). Cached: repeated requests are lookups. */
const optibar_plan* optibar_subset_plan(optibar_library* library,
                                        const size_t* ranks, size_t count,
                                        char* errbuf, size_t errbuf_len);

/* Plan introspection. */
size_t optibar_plan_ranks(const optibar_plan* plan);
double optibar_plan_predicted_seconds(const optibar_plan* plan);
size_t optibar_plan_stage_count(const optibar_plan* plan);

/* Number of ops rank `rank` executes per barrier call; 0 on bad input. */
size_t optibar_plan_op_count(const optibar_plan* plan, size_t rank);

/* Copy up to `capacity` of rank `rank`'s ops into `out`; returns the
 * number copied (equal to op_count when capacity suffices). */
size_t optibar_plan_ops(const optibar_plan* plan, size_t rank,
                        optibar_op* out, size_t capacity);

#ifdef __cplusplus
}
#endif

#endif /* OPTIBAR_CAPI_H */
