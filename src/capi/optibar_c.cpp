// Implementation of the C API over BarrierLibrary.
//
// Error model: every entry point records its outcome in thread-local
// state (tl_status / tl_message) so concurrent callers never observe
// each other's failures. The deprecated errbuf signatures are wrappers
// that forward to the *_v2 forms and copy the thread-local message out.
#include "capi/optibar.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "collective/executor.hpp"
#include "collective/tuner.hpp"
#include "core/library.hpp"
#include "rma/transport.hpp"
#include "simmpi/executor.hpp"
#include "topology/profile.hpp"
#include "util/error.hpp"

namespace {

using optibar::BarrierLibrary;
using optibar::EngineOptions;
using optibar::LibraryEntry;
using optibar::Schedule;
using optibar::TopologyProfile;

thread_local optibar_status tl_status = OPTIBAR_OK;
thread_local std::string tl_message;

void set_ok() {
  tl_status = OPTIBAR_OK;
  tl_message.clear();
}

void set_error(optibar_status status, std::string message) {
  tl_status = status;
  tl_message = std::move(message);
  if (tl_message.empty()) {
    // Guarantee: a non-OK status always has a non-empty message, even
    // when an exception carried an empty what().
    tl_message = optibar_status_string(status);
  }
}

/// Record the in-flight exception under `status`; unknown exception
/// types degrade to OPTIBAR_ERR_INTERNAL.
void set_caught(optibar_status status) {
  try {
    throw;
  } catch (const std::exception& error) {
    set_error(status, error.what());
  } catch (...) {
    set_error(OPTIBAR_ERR_INTERNAL, "unknown exception in optibar");
  }
}

void fill_error(char* errbuf, size_t errbuf_len) {
  if (errbuf == nullptr || errbuf_len == 0) {
    return;
  }
  // snprintf always NUL-terminates, truncating when tl_message is
  // longer than the buffer.
  std::snprintf(errbuf, errbuf_len, "%s", tl_message.c_str());
}

}  // namespace

/// A tuned barrier flattened into per-rank op arrays.
struct optibar_plan_s {
  std::size_t ranks = 0;
  std::size_t stages = 0;
  double predicted_seconds = 0.0;
  bool degraded = false;
  std::string degradation_reason;
  std::vector<std::vector<optibar_op>> per_rank;

  explicit optibar_plan_s(const LibraryEntry& entry) {
    const Schedule& schedule = entry.stored.schedule;
    ranks = schedule.ranks();
    stages = schedule.stage_count();
    predicted_seconds = entry.predicted_cost;
    degraded = entry.degraded;
    degradation_reason = entry.degradation_reason;
    per_rank.resize(ranks);
    for (std::size_t rank = 0; rank < ranks; ++rank) {
      std::vector<optibar_op>& ops = per_rank[rank];
      for (std::size_t stage = 0; stage < stages; ++stage) {
        const auto sends = schedule.targets_of(rank, stage);
        const auto recvs = schedule.sources_of(rank, stage);
        if (sends.empty() && recvs.empty()) {
          continue;  // rank-local no-op stage eliminated
        }
        for (std::size_t dst : sends) {
          ops.push_back(optibar_op{static_cast<int>(stage), 1,
                                   static_cast<int>(dst), 0});
        }
        for (std::size_t src : recvs) {
          ops.push_back(optibar_op{static_cast<int>(stage), 0,
                                   static_cast<int>(src), 0});
        }
        ops.back().stage_end = 1;
      }
    }
  }
};

/// The C handle: the C++ library plus plan storage keyed by the
/// entry's generation — a library-wide unique publication id, so a
/// repair promoting a new entry (or an eviction recycling an address)
/// can never alias a previously flattened plan. The map is read-locked
/// on hits so concurrent barrier setup scales.
struct optibar_library_s {
  explicit optibar_library_s(TopologyProfile profile, EngineOptions options)
      : library(std::move(profile), std::move(options)) {}

  const optibar_plan* plan_for(const LibraryEntry& entry) {
    {
      std::shared_lock<std::shared_mutex> read(mutex);
      auto it = plans.find(entry.generation);
      if (it != plans.end()) {
        return it->second.get();
      }
    }
    std::unique_lock<std::shared_mutex> write(mutex);
    auto it = plans.find(entry.generation);
    if (it == plans.end()) {
      it = plans
               .emplace(entry.generation,
                        std::make_unique<optibar_plan_s>(entry))
               .first;
    }
    return it->second.get();
  }

  BarrierLibrary library;
  std::shared_mutex mutex;
  std::map<std::uint64_t, std::unique_ptr<optibar_plan_s>> plans;
};

/// One in-flight nonblocking episode: a worker thread driving a full
/// in-process execution on the threaded runtime. The worker publishes
/// its outcome (error fields first, then the release store on
/// done/failed) so test/wait observe a consistent terminal state with
/// one acquire load.
struct optibar_episode_s {
  std::thread worker;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  optibar_status error_status = OPTIBAR_ERR_INTERNAL;
  std::string error;

  ~optibar_episode_s() {
    if (worker.joinable()) {
      worker.join();
    }
  }

  /// Record the in-flight exception as this episode's terminal failure.
  void fail_caught() {
    try {
      throw;
    } catch (const std::exception& exception) {
      error = exception.what();
    } catch (...) {
      error = "unknown exception in optibar episode";
    }
    error_status = OPTIBAR_ERR_INTERNAL;
    failed.store(true, std::memory_order_release);
  }
};

namespace {

/// Shared subset screening so the C layer can distinguish caller bugs
/// (INVALID_ARGUMENT) from tuning failures (TUNING). Returns false with
/// the status already set.
bool check_subset(const optibar_library* library, const size_t* ranks,
                  size_t count) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return false;
  }
  if (ranks == nullptr || count == 0) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "empty rank subset");
    return false;
  }
  const size_t world = library->library.ranks();
  for (size_t i = 0; i < count; ++i) {
    if (ranks[i] >= world) {
      set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
                "rank " + std::to_string(ranks[i]) + " out of range (" +
                    std::to_string(world) + ")");
      return false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (ranks[j] == ranks[i]) {
        set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
                  "duplicate rank " + std::to_string(ranks[i]));
        return false;
      }
    }
  }
  return true;
}

/// Shared probe behind optibar_ibarrier_test / optibar_icollective_test.
int episode_test(optibar_episode* episode) {
  if (episode == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "episode is NULL");
    return -1;
  }
  if (episode->failed.load(std::memory_order_acquire)) {
    set_error(episode->error_status, episode->error);
    return -1;
  }
  if (episode->done.load(std::memory_order_acquire)) {
    set_ok();
    return 1;
  }
  set_ok();
  return 0;
}

/// Shared join-and-free behind optibar_ibarrier_wait /
/// optibar_icollective_wait.
optibar_status episode_wait(optibar_episode* episode) {
  if (episode == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "episode is NULL");
    return tl_status;
  }
  if (episode->worker.joinable()) {
    episode->worker.join();
  }
  if (episode->failed.load(std::memory_order_acquire)) {
    set_error(episode->error_status, episode->error);
  } else {
    set_ok();
  }
  delete episode;
  return tl_status;
}

}  // namespace

extern "C" {

optibar_status optibar_last_status(void) { return tl_status; }

const char* optibar_last_error(void) { return tl_message.c_str(); }

const char* optibar_status_string(optibar_status status) {
  switch (status) {
    case OPTIBAR_OK:
      return "OPTIBAR_OK";
    case OPTIBAR_ERR_INVALID_ARGUMENT:
      return "OPTIBAR_ERR_INVALID_ARGUMENT";
    case OPTIBAR_ERR_IO:
      return "OPTIBAR_ERR_IO";
    case OPTIBAR_ERR_TUNING:
      return "OPTIBAR_ERR_TUNING";
    case OPTIBAR_ERR_INTERNAL:
      return "OPTIBAR_ERR_INTERNAL";
    case OPTIBAR_DEGRADED:
      return "OPTIBAR_DEGRADED";
  }
  return "OPTIBAR_ERR_INTERNAL";
}

optibar_library* optibar_open_v2(const char* profile_path, size_t threads) {
  if (profile_path == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "profile_path is NULL");
    return nullptr;
  }
  TopologyProfile profile;
  try {
    profile = TopologyProfile::load_file(profile_path);
  } catch (...) {
    set_caught(OPTIBAR_ERR_IO);
    return nullptr;
  }
  try {
    EngineOptions options;
    options.threads = threads;
    auto* handle =
        new optibar_library_s(std::move(profile), std::move(options));
    set_ok();
    return handle;
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
    return nullptr;
  }
}

void optibar_close(optibar_library* library) {
  delete library;
  set_ok();
}

size_t optibar_ranks(const optibar_library* library) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return 0;
  }
  set_ok();
  return library->library.ranks();
}

const optibar_plan* optibar_world_plan_v2(optibar_library* library) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return nullptr;
  }
  try {
    const optibar_plan* plan = library->plan_for(library->library.full_barrier());
    if (plan->degraded) {
      set_error(OPTIBAR_DEGRADED, plan->degradation_reason);
    } else {
      set_ok();
    }
    return plan;
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
    return nullptr;
  }
}

const optibar_plan* optibar_subset_plan_v2(optibar_library* library,
                                           const size_t* ranks, size_t count) {
  if (!check_subset(library, ranks, count)) {
    return nullptr;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    const optibar_plan* plan =
        library->plan_for(library->library.subset_plan(subset));
    if (plan->degraded) {
      set_error(OPTIBAR_DEGRADED, plan->degradation_reason);
    } else {
      set_ok();
    }
    return plan;
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
    return nullptr;
  }
}

size_t optibar_tune_all(optibar_library* library, const size_t* ranks,
                        const size_t* counts, size_t count,
                        const optibar_plan** out_plans) {
  if (library == nullptr || counts == nullptr || out_plans == nullptr ||
      count == 0) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "invalid tune_all arguments");
    return 0;
  }
  std::vector<std::vector<std::size_t>> subsets(count);
  size_t offset = 0;
  for (size_t s = 0; s < count; ++s) {
    if (!check_subset(library, ranks == nullptr ? nullptr : ranks + offset,
                      counts[s])) {
      tl_message = "subset " + std::to_string(s) + ": " + tl_message;
      return 0;
    }
    subsets[s].assign(ranks + offset, ranks + offset + counts[s]);
    offset += counts[s];
  }
  std::vector<const LibraryEntry*> entries;
  try {
    entries = library->library.tune_all(subsets);
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
    return 0;
  }
  try {
    // Flatten every entry before touching out_plans so a failure leaves
    // the caller's array unwritten, as documented.
    std::vector<const optibar_plan*> plans(count);
    for (size_t s = 0; s < count; ++s) {
      plans[s] = library->plan_for(*entries[s]);
    }
    for (size_t s = 0; s < count; ++s) {
      out_plans[s] = plans[s];
    }
  } catch (...) {
    set_caught(OPTIBAR_ERR_INTERNAL);
    return 0;
  }
  set_ok();
  return count;
}

size_t optibar_plan_ranks(const optibar_plan* plan) {
  if (plan == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "plan is NULL");
    return 0;
  }
  set_ok();
  return plan->ranks;
}

double optibar_plan_predicted_seconds(const optibar_plan* plan) {
  if (plan == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "plan is NULL");
    return 0.0;
  }
  set_ok();
  return plan->predicted_seconds;
}

size_t optibar_plan_stage_count(const optibar_plan* plan) {
  if (plan == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "plan is NULL");
    return 0;
  }
  set_ok();
  return plan->stages;
}

size_t optibar_plan_op_count(const optibar_plan* plan, size_t rank) {
  if (plan == nullptr || rank >= plan->ranks) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              plan == nullptr ? "plan is NULL" : "rank out of range");
    return 0;
  }
  set_ok();
  return plan->per_rank[rank].size();
}

size_t optibar_plan_ops(const optibar_plan* plan, size_t rank,
                        optibar_op* out, size_t capacity) {
  if (plan == nullptr || out == nullptr || rank >= plan->ranks) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              plan == nullptr    ? "plan is NULL"
              : out == nullptr   ? "out is NULL"
                                 : "rank out of range");
    return 0;
  }
  set_ok();
  const std::vector<optibar_op>& ops = plan->per_rank[rank];
  const size_t n = capacity < ops.size() ? capacity : ops.size();
  for (size_t i = 0; i < n; ++i) {
    out[i] = ops[i];
  }
  return n;
}

int optibar_report_stall(optibar_library* library, const size_t* ranks,
                         size_t count, const char* detail) {
  if (!check_subset(library, ranks, count)) {
    return -1;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    const bool degraded = library->library.report_execution_failure(
        subset, detail == nullptr ? "unspecified stall" : detail);
    set_ok();
    return degraded ? 1 : 0;
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
    return -1;
  }
}

int optibar_plan_is_degraded(const optibar_plan* plan) {
  if (plan == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "plan is NULL");
    return 0;
  }
  set_ok();
  return plan->degraded ? 1 : 0;
}

/* ---- plan service ---- */

optibar_library* optibar_open_service(const char* profile_path,
                                      size_t threads, int auto_repair) {
  if (profile_path == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "profile_path is NULL");
    return nullptr;
  }
  TopologyProfile profile;
  try {
    profile = TopologyProfile::load_file(profile_path);
  } catch (...) {
    set_caught(OPTIBAR_ERR_IO);
    return nullptr;
  }
  try {
    EngineOptions options;
    options.threads = threads;
    options.service.auto_repair = auto_repair != 0;
    auto* handle =
        new optibar_library_s(std::move(profile), std::move(options));
    set_ok();
    return handle;
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
    return nullptr;
  }
}

optibar_status optibar_plan_state(optibar_library* library,
                                  const size_t* ranks, size_t count,
                                  optibar_plan_state_t* out_state) {
  if (!check_subset(library, ranks, count)) {
    return tl_status;
  }
  if (out_state == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "out_state is NULL");
    return tl_status;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    const optibar::PlanState state = library->library.plan_state(subset);
    *out_state = static_cast<optibar_plan_state_t>(state);
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
  }
  return tl_status;
}

optibar_status optibar_report_latency(optibar_library* library,
                                      const size_t* ranks, size_t count,
                                      size_t src, size_t dst,
                                      double seconds) {
  if (!check_subset(library, ranks, count)) {
    return tl_status;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    library->library.report_measured_latency(subset, src, dst, seconds);
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
  }
  return tl_status;
}

optibar_status optibar_report_success(optibar_library* library,
                                      const size_t* ranks, size_t count) {
  if (!check_subset(library, ranks, count)) {
    return tl_status;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    library->library.report_execution_success(subset);
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
  }
  return tl_status;
}

optibar_status optibar_service_wait(optibar_library* library) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return tl_status;
  }
  try {
    library->library.wait_for_repairs();
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_INTERNAL);
  }
  return tl_status;
}

optibar_status optibar_store_save(optibar_library* library,
                                  const char* path) {
  if (library == nullptr || path == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              library == nullptr ? "library is NULL" : "path is NULL");
    return tl_status;
  }
  try {
    library->library.save_store(path);
    set_ok();
  } catch (const optibar::IoError&) {
    set_caught(OPTIBAR_ERR_IO);
  } catch (...) {
    set_caught(OPTIBAR_ERR_INTERNAL);
  }
  return tl_status;
}

optibar_status optibar_store_load(optibar_library* library,
                                  const char* path) {
  if (library == nullptr || path == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              library == nullptr ? "library is NULL" : "path is NULL");
    return tl_status;
  }
  try {
    library->library.load_store(path);
    set_ok();
  } catch (const optibar::IoError&) {
    set_caught(OPTIBAR_ERR_IO);
  } catch (...) {
    set_caught(OPTIBAR_ERR_INVALID_ARGUMENT);
  }
  return tl_status;
}

optibar_status optibar_tune_collective_v2(optibar_library* library,
                                          optibar_collective_op op,
                                          size_t payload_bytes, size_t root,
                                          double* out_predicted_seconds,
                                          size_t* out_stages) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return tl_status;
  }
  optibar::CollectiveTuneOptions options;
  switch (op) {
    case OPTIBAR_COLLECTIVE_BCAST:
      options.op = optibar::CollectiveOp::kBroadcast;
      break;
    case OPTIBAR_COLLECTIVE_REDUCE:
      options.op = optibar::CollectiveOp::kReduce;
      break;
    case OPTIBAR_COLLECTIVE_ALLREDUCE:
      options.op = optibar::CollectiveOp::kAllreduce;
      break;
    default:
      set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
                "unknown collective op " + std::to_string(op));
      return tl_status;
  }
  if (root >= library->library.ranks()) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              "root " + std::to_string(root) + " out of range (" +
                  std::to_string(library->library.ranks()) + ")");
    return tl_status;
  }
  if (payload_bytes % options.elem_bytes != 0) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              "payload_bytes must be a multiple of " +
                  std::to_string(options.elem_bytes));
    return tl_status;
  }
  options.payload_bytes = payload_bytes;
  options.root = root;
  try {
    const optibar::CollectiveTuneResult tuned = optibar::tune_collective(
        library->library.profile(), options, library->library.options());
    if (out_predicted_seconds != nullptr) {
      *out_predicted_seconds = tuned.predicted_cost();
    }
    if (out_stages != nullptr) {
      *out_stages = tuned.schedule().stage_count();
    }
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
  }
  return tl_status;
}

optibar_status optibar_tune_hybrid_v2(optibar_library* library,
                                      double* out_predicted_seconds,
                                      optibar_transport* out_transport,
                                      size_t* out_one_sided_signals) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return tl_status;
  }
  try {
    const optibar::rma::TransportTune tuned = optibar::rma::tune_best_transport(
        library->library.profile(), library->library.options());
    if (out_predicted_seconds != nullptr) {
      *out_predicted_seconds = tuned.cost;
    }
    if (out_transport != nullptr) {
      switch (tuned.transport) {
        case optibar::rma::Transport::kTwoSided:
          *out_transport = OPTIBAR_TRANSPORT_TWO_SIDED;
          break;
        case optibar::rma::Transport::kOneSided:
          *out_transport = OPTIBAR_TRANSPORT_ONE_SIDED;
          break;
        case optibar::rma::Transport::kHybrid:
          *out_transport = OPTIBAR_TRANSPORT_HYBRID;
          break;
      }
    }
    if (out_one_sided_signals != nullptr) {
      *out_one_sided_signals = tuned.one_sided_signals;
    }
    set_ok();
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
  }
  return tl_status;
}

/* ---- nonblocking episode handles ---- */

optibar_episode* optibar_ibarrier_post(optibar_library* library) {
  if (library == nullptr) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT, "library is NULL");
    return nullptr;
  }
  const LibraryEntry* entry = nullptr;
  try {
    // Tune (or hit the cache) up front so a tuning failure surfaces
    // here, not asynchronously. Entry pointers are stable for the
    // library's lifetime, so the worker may hold one.
    entry = &library->library.full_barrier();
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
    return nullptr;
  }
  auto* episode = new optibar_episode_s;
  episode->worker = std::thread([entry, episode] {
    try {
      const optibar::simmpi::ScheduleExecutor executor(
          entry->stored.schedule);
      executor.run_once();
      episode->done.store(true, std::memory_order_release);
    } catch (...) {
      episode->fail_caught();
    }
  });
  set_ok();
  return episode;
}

int optibar_ibarrier_test(optibar_episode* episode) {
  return episode_test(episode);
}

optibar_status optibar_ibarrier_wait(optibar_episode* episode) {
  return episode_wait(episode);
}

optibar_episode* optibar_icollective_post(optibar_library* library,
                                          optibar_collective_op op,
                                          uint64_t* data, size_t elem_count,
                                          size_t root) {
  if (library == nullptr || data == nullptr || elem_count == 0) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              library == nullptr ? "library is NULL"
              : data == nullptr  ? "data is NULL"
                                 : "elem_count is 0");
    return nullptr;
  }
  optibar::CollectiveTuneOptions options;
  switch (op) {
    case OPTIBAR_COLLECTIVE_BCAST:
      options.op = optibar::CollectiveOp::kBroadcast;
      break;
    case OPTIBAR_COLLECTIVE_REDUCE:
      options.op = optibar::CollectiveOp::kReduce;
      break;
    case OPTIBAR_COLLECTIVE_ALLREDUCE:
      options.op = optibar::CollectiveOp::kAllreduce;
      break;
    default:
      set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
                "unknown collective op " + std::to_string(op));
      return nullptr;
  }
  const size_t ranks = library->library.ranks();
  if (root >= ranks) {
    set_error(OPTIBAR_ERR_INVALID_ARGUMENT,
              "root " + std::to_string(root) + " out of range (" +
                  std::to_string(ranks) + ")");
    return nullptr;
  }
  options.payload_bytes = elem_count * options.elem_bytes;
  options.root = root;
  optibar::CollectiveSchedule schedule;
  try {
    schedule = optibar::tune_collective(library->library.profile(), options,
                                        library->library.options())
                   .schedule();
  } catch (...) {
    set_caught(OPTIBAR_ERR_TUNING);
    return nullptr;
  }
  auto* episode = new optibar_episode_s;
  episode->worker = std::thread(
      [episode, data, elem_count, ranks, schedule = std::move(schedule)] {
        try {
          std::vector<optibar::Payload> inputs(ranks);
          for (size_t rank = 0; rank < ranks; ++rank) {
            inputs[rank].assign(data + rank * elem_count,
                                data + (rank + 1) * elem_count);
          }
          const optibar::CollectiveExecutor executor(schedule);
          const std::vector<optibar::Payload> results =
              executor.run_once(inputs, optibar::ReduceOp::kSum);
          // Results land in the caller's buffer before the release
          // store, so a caller that observed done may read them.
          for (size_t rank = 0; rank < ranks; ++rank) {
            for (size_t i = 0; i < elem_count; ++i) {
              data[rank * elem_count + i] = results[rank][i];
            }
          }
          episode->done.store(true, std::memory_order_release);
        } catch (...) {
          episode->fail_caught();
        }
      });
  set_ok();
  return episode;
}

int optibar_icollective_test(optibar_episode* episode) {
  return episode_test(episode);
}

optibar_status optibar_icollective_wait(optibar_episode* episode) {
  return episode_wait(episode);
}

/* ---- deprecated errbuf wrappers ---- */

optibar_library* optibar_open(const char* profile_path, char* errbuf,
                              size_t errbuf_len) {
  optibar_library* library = optibar_open_v2(profile_path, 1);
  if (library == nullptr) {
    fill_error(errbuf, errbuf_len);
  }
  return library;
}

const optibar_plan* optibar_world_plan(optibar_library* library, char* errbuf,
                                       size_t errbuf_len) {
  const optibar_plan* plan = optibar_world_plan_v2(library);
  if (plan == nullptr) {
    fill_error(errbuf, errbuf_len);
  }
  return plan;
}

const optibar_plan* optibar_subset_plan(optibar_library* library,
                                        const size_t* ranks, size_t count,
                                        char* errbuf, size_t errbuf_len) {
  const optibar_plan* plan = optibar_subset_plan_v2(library, ranks, count);
  if (plan == nullptr) {
    fill_error(errbuf, errbuf_len);
  }
  return plan;
}

}  // extern "C"
