// Implementation of the C API over BarrierLibrary.
#include "capi/optibar.h"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/library.hpp"
#include "topology/profile.hpp"
#include "util/error.hpp"

namespace {

using optibar::BarrierLibrary;
using optibar::LibraryEntry;
using optibar::Schedule;
using optibar::TopologyProfile;

void fill_error(char* errbuf, size_t errbuf_len, const char* message) {
  if (errbuf == nullptr || errbuf_len == 0) {
    return;
  }
  std::strncpy(errbuf, message, errbuf_len - 1);
  errbuf[errbuf_len - 1] = '\0';
}

}  // namespace

/// A tuned barrier flattened into per-rank op arrays.
struct optibar_plan_s {
  std::size_t ranks = 0;
  std::size_t stages = 0;
  double predicted_seconds = 0.0;
  std::vector<std::vector<optibar_op>> per_rank;

  explicit optibar_plan_s(const LibraryEntry& entry) {
    const Schedule& schedule = entry.stored.schedule;
    ranks = schedule.ranks();
    stages = schedule.stage_count();
    predicted_seconds = entry.predicted_cost;
    per_rank.resize(ranks);
    for (std::size_t rank = 0; rank < ranks; ++rank) {
      std::vector<optibar_op>& ops = per_rank[rank];
      for (std::size_t stage = 0; stage < stages; ++stage) {
        const auto sends = schedule.targets_of(rank, stage);
        const auto recvs = schedule.sources_of(rank, stage);
        if (sends.empty() && recvs.empty()) {
          continue;  // rank-local no-op stage eliminated
        }
        for (std::size_t dst : sends) {
          ops.push_back(optibar_op{static_cast<int>(stage), 1,
                                   static_cast<int>(dst), 0});
        }
        for (std::size_t src : recvs) {
          ops.push_back(optibar_op{static_cast<int>(stage), 0,
                                   static_cast<int>(src), 0});
        }
        ops.back().stage_end = 1;
      }
    }
  }
};

/// The C handle: the C++ library plus plan storage keyed by entry.
struct optibar_library_s {
  // BarrierLibrary holds a mutex and is immovable; construct in place.
  explicit optibar_library_s(TopologyProfile profile)
      : library(std::move(profile)) {}

  const optibar_plan* plan_for(const LibraryEntry& entry) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = plans.find(&entry);
    if (it == plans.end()) {
      it = plans.emplace(&entry, std::make_unique<optibar_plan_s>(entry))
               .first;
    }
    return it->second.get();
  }

  BarrierLibrary library;
  std::mutex mutex;
  std::map<const LibraryEntry*, std::unique_ptr<optibar_plan_s>> plans;
};

extern "C" {

optibar_library* optibar_open(const char* profile_path, char* errbuf,
                              size_t errbuf_len) {
  if (profile_path == nullptr) {
    fill_error(errbuf, errbuf_len, "profile_path is NULL");
    return nullptr;
  }
  try {
    return new optibar_library_s(TopologyProfile::load_file(profile_path));
  } catch (const std::exception& error) {
    fill_error(errbuf, errbuf_len, error.what());
    return nullptr;
  }
}

void optibar_close(optibar_library* library) { delete library; }

size_t optibar_ranks(const optibar_library* library) {
  return library == nullptr ? 0 : library->library.ranks();
}

const optibar_plan* optibar_world_plan(optibar_library* library, char* errbuf,
                                       size_t errbuf_len) {
  if (library == nullptr) {
    fill_error(errbuf, errbuf_len, "library is NULL");
    return nullptr;
  }
  try {
    return library->plan_for(library->library.full_barrier());
  } catch (const std::exception& error) {
    fill_error(errbuf, errbuf_len, error.what());
    return nullptr;
  }
}

const optibar_plan* optibar_subset_plan(optibar_library* library,
                                        const size_t* ranks, size_t count,
                                        char* errbuf, size_t errbuf_len) {
  if (library == nullptr || ranks == nullptr || count == 0) {
    fill_error(errbuf, errbuf_len, "invalid subset arguments");
    return nullptr;
  }
  try {
    const std::vector<std::size_t> subset(ranks, ranks + count);
    return library->plan_for(library->library.barrier_for(subset));
  } catch (const std::exception& error) {
    fill_error(errbuf, errbuf_len, error.what());
    return nullptr;
  }
}

size_t optibar_plan_ranks(const optibar_plan* plan) {
  return plan == nullptr ? 0 : plan->ranks;
}

double optibar_plan_predicted_seconds(const optibar_plan* plan) {
  return plan == nullptr ? 0.0 : plan->predicted_seconds;
}

size_t optibar_plan_stage_count(const optibar_plan* plan) {
  return plan == nullptr ? 0 : plan->stages;
}

size_t optibar_plan_op_count(const optibar_plan* plan, size_t rank) {
  if (plan == nullptr || rank >= plan->ranks) {
    return 0;
  }
  return plan->per_rank[rank].size();
}

size_t optibar_plan_ops(const optibar_plan* plan, size_t rank,
                        optibar_op* out, size_t capacity) {
  if (plan == nullptr || rank >= plan->ranks || out == nullptr) {
    return 0;
  }
  const std::vector<optibar_op>& ops = plan->per_rank[rank];
  const size_t n = capacity < ops.size() ? capacity : ops.size();
  for (size_t i = 0; i < n; ++i) {
    out[i] = ops[i];
  }
  return n;
}

}  // extern "C"
