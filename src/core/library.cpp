#include "core/library.hpp"

#include <set>

#include "util/error.hpp"

namespace optibar {

BarrierLibrary::BarrierLibrary(TopologyProfile profile, TuneOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {
  OPTIBAR_REQUIRE(profile_.ranks() > 0, "empty profile");
}

BarrierLibrary BarrierLibrary::from_profile_file(const std::string& path,
                                                 TuneOptions options) {
  return BarrierLibrary(TopologyProfile::load_file(path), std::move(options));
}

const LibraryEntry& BarrierLibrary::full_barrier() {
  std::vector<std::size_t> all(profile_.ranks());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return barrier_for(all);
}

const LibraryEntry& BarrierLibrary::barrier_for(
    const std::vector<std::size_t>& ranks) {
  OPTIBAR_REQUIRE(!ranks.empty(), "empty rank subset");
  std::set<std::size_t> seen;
  for (std::size_t r : ranks) {
    OPTIBAR_REQUIRE(r < profile_.ranks(),
                    "rank " << r << " out of range (" << profile_.ranks()
                            << ")");
    OPTIBAR_REQUIRE(seen.insert(r).second, "duplicate rank " << r);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(ranks);
  if (it != cache_.end()) {
    return *it->second;
  }

  const TopologyProfile local = profile_.restrict_to(ranks);
  const TuneResult tuned = tune_barrier(local, options_);
  auto entry = std::make_unique<LibraryEntry>();
  entry->global_ranks = ranks;
  entry->stored.schedule = tuned.schedule();
  entry->stored.awaited_stages = tuned.barrier().awaited_stages;
  entry->compiled = CompiledBarrier(tuned.schedule());
  entry->predicted_cost = tuned.predicted_cost();
  return *cache_.emplace(ranks, std::move(entry)).first->second;
}

std::size_t BarrierLibrary::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace optibar
