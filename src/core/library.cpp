#include "core/library.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

namespace {

/// FNV-1a over the subset elements; order-sensitive on purpose (order
/// defines local rank numbering, so permutations are distinct plans).
struct SubsetHash {
  std::size_t operator()(const std::vector<std::size_t>& ranks) const {
    std::size_t h = 1469598103934665603ull;
    for (std::size_t r : ranks) {
      h ^= r + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

/// One cache entry: built exactly once under its own mutex so
/// concurrent first requests for the same subset serialize here, not
/// on the shard.
struct BarrierLibrary::Slot {
  std::mutex build_mutex;
  std::atomic<bool> ready{false};
  std::exception_ptr error;  // sticky: a failed tune stays failed
  LibraryEntry entry;

  /// Degraded-mode state (report_execution_failure). `fallback` is
  /// built at most once, under build_mutex, and published with a
  /// release store on `degraded` — readers that acquire-load `degraded`
  /// as true may read `fallback` without the lock, exactly the
  /// ready/entry protocol above.
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> degraded{false};
  LibraryEntry fallback;
};

struct BarrierLibrary::Shard {
  mutable std::shared_mutex mutex;
  std::unordered_map<std::vector<std::size_t>, std::shared_ptr<Slot>,
                     SubsetHash>
      slots;
};

BarrierLibrary::BarrierLibrary(TopologyProfile profile, EngineOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {
  options_.validate();
  OPTIBAR_REQUIRE(profile_.ranks() > 0, "empty profile");
  shard_mask_ = options_.cache_shards - 1;  // power of two, validated
  shards_ = std::make_unique<Shard[]>(options_.cache_shards);
  if (options_.resolved_threads() > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.resolved_threads());
  }
}

BarrierLibrary::~BarrierLibrary() = default;
BarrierLibrary::BarrierLibrary(BarrierLibrary&&) noexcept = default;

BarrierLibrary BarrierLibrary::from_profile_file(const std::string& path,
                                                 EngineOptions options) {
  return BarrierLibrary(TopologyProfile::load_file(path), std::move(options));
}

const LibraryEntry& BarrierLibrary::full_barrier() {
  std::vector<std::size_t> all(profile_.ranks());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return subset_plan(all);
}

void BarrierLibrary::validate_subset(
    const std::vector<std::size_t>& ranks) const {
  OPTIBAR_REQUIRE(!ranks.empty(), "empty rank subset");
  std::set<std::size_t> seen;
  for (std::size_t r : ranks) {
    OPTIBAR_REQUIRE(r < profile_.ranks(),
                    "rank " << r << " out of range (" << profile_.ranks()
                            << ")");
    OPTIBAR_REQUIRE(seen.insert(r).second, "duplicate rank " << r);
  }
}

BarrierLibrary::Slot* BarrierLibrary::find_slot(
    const std::vector<std::size_t>& ranks) {
  Shard& shard = shards_[SubsetHash{}(ranks)&shard_mask_];
  std::shared_lock<std::shared_mutex> read(shard.mutex);
  auto it = shard.slots.find(ranks);
  return it == shard.slots.end() ? nullptr : it->second.get();
}

BarrierLibrary::Slot& BarrierLibrary::slot_for(
    const std::vector<std::size_t>& ranks) {
  Shard& shard = shards_[SubsetHash{}(ranks)&shard_mask_];
  {
    std::shared_lock<std::shared_mutex> read(shard.mutex);
    auto it = shard.slots.find(ranks);
    if (it != shard.slots.end()) {
      return *it->second;
    }
  }
  std::unique_lock<std::shared_mutex> write(shard.mutex);
  auto [it, inserted] = shard.slots.try_emplace(ranks);
  if (inserted) {
    it->second = std::make_shared<Slot>();
  }
  return *it->second;
}

void BarrierLibrary::build_entry_locked(Slot& slot,
                                        const std::vector<std::size_t>& ranks,
                                        ThreadPool* pool) {
  // Caller holds slot.build_mutex and has checked !ready && !error.
  try {
    const TopologyProfile local = profile_.restrict_to(ranks);
    const TuneResult tuned = tune_barrier(local, options_, pool);
    slot.entry.global_ranks = ranks;
    slot.entry.stored.schedule = tuned.schedule();
    slot.entry.stored.awaited_stages = tuned.barrier().awaited_stages;
    slot.entry.compiled = CompiledBarrier(tuned.schedule());
    slot.entry.predicted_cost = tuned.predicted_cost();
    slot.ready.store(true, std::memory_order_release);
  } catch (...) {
    slot.error = std::current_exception();
  }
}

const LibraryEntry& BarrierLibrary::built_entry(
    Slot& slot, const std::vector<std::size_t>& ranks, ThreadPool* pool) {
  if (slot.degraded.load(std::memory_order_acquire)) {
    return slot.fallback;  // quarantined: serve the safe plan instead
  }
  if (slot.ready.load(std::memory_order_acquire)) {
    return slot.entry;  // fast path: no lock at all on a warm cache
  }
  std::lock_guard<std::mutex> build(slot.build_mutex);
  if (!slot.ready.load(std::memory_order_relaxed) && !slot.error) {
    build_entry_locked(slot, ranks, pool);
  }
  if (slot.error) {
    std::rethrow_exception(slot.error);
  }
  return slot.entry;
}

const LibraryEntry& BarrierLibrary::subset_plan(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  return built_entry(slot_for(ranks), ranks, pool_.get());
}

std::vector<const LibraryEntry*> BarrierLibrary::tune_all(
    const std::vector<std::vector<std::size_t>>& subsets) {
  std::vector<Slot*> slots(subsets.size());
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    validate_subset(subsets[i]);
    slots[i] = &slot_for(subsets[i]);
  }

  // Fan the not-yet-built distinct subsets out across the pool. Pool
  // tasks only try_lock: a slot somebody else is already building is
  // skipped here and collected (blocking) below, so no pool task ever
  // blocks — that keeps the helping scheduler deadlock-free. Each task
  // tunes serially; the batch itself is the parallel grain.
  if (pool_ != nullptr) {
    std::vector<std::size_t> work;
    std::unordered_set<Slot*> seen;
    for (std::size_t i = 0; i < subsets.size(); ++i) {
      if (!slots[i]->ready.load(std::memory_order_acquire) &&
          seen.insert(slots[i]).second) {
        work.push_back(i);
      }
    }
    if (work.size() > 1) {
      pool_->parallel_for(work.size(), [&](std::size_t k) {
        Slot& slot = *slots[work[k]];
        std::unique_lock<std::mutex> build(slot.build_mutex,
                                           std::try_to_lock);
        if (!build.owns_lock() ||
            slot.ready.load(std::memory_order_relaxed) || slot.error) {
          return;
        }
        build_entry_locked(slot, subsets[work[k]], nullptr);
      });
    }
  }

  std::vector<const LibraryEntry*> out(subsets.size());
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    out[i] = &built_entry(*slots[i], subsets[i], pool_.get());
  }
  return out;
}

bool BarrierLibrary::report_execution_failure(
    const std::vector<std::size_t>& ranks, const std::string& reason) {
  validate_subset(ranks);
  Slot* slot = find_slot(ranks);
  OPTIBAR_REQUIRE(slot != nullptr &&
                      (slot->ready.load(std::memory_order_acquire) ||
                       slot->degraded.load(std::memory_order_acquire)),
                  "execution failure reported for a subset that was never "
                  "served a plan");
  if (slot->degraded.load(std::memory_order_acquire)) {
    slot->failures.fetch_add(1, std::memory_order_relaxed);
    return true;  // already quarantined; keep counting
  }
  const std::size_t count =
      slot->failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count < options_.quarantine_threshold) {
    return false;
  }
  // Threshold reached: build the fallback once, under the slot's build
  // mutex, and publish it with a release store on `degraded`.
  std::lock_guard<std::mutex> build(slot->build_mutex);
  if (!slot->degraded.load(std::memory_order_relaxed)) {
    const Schedule safe = dissemination_barrier(ranks.size());
    slot->fallback.global_ranks = ranks;
    slot->fallback.stored.schedule = safe;
    slot->fallback.stored.awaited_stages.clear();
    slot->fallback.compiled = CompiledBarrier(safe);
    slot->fallback.predicted_cost =
        predicted_time(safe, profile_.restrict_to(ranks).symmetrized());
    slot->fallback.degraded = true;
    slot->fallback.degradation_reason =
        "tuned plan quarantined after " + std::to_string(count) +
        " execution failure(s): " + reason;
    slot->degraded.store(true, std::memory_order_release);
  }
  return true;
}

std::size_t BarrierLibrary::failure_count(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  Slot* slot = find_slot(ranks);
  return slot == nullptr ? 0
                         : slot->failures.load(std::memory_order_relaxed);
}

bool BarrierLibrary::is_quarantined(const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  Slot* slot = find_slot(ranks);
  return slot != nullptr && slot->degraded.load(std::memory_order_acquire);
}

std::size_t BarrierLibrary::cache_size() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock<std::shared_mutex> read(shards_[s].mutex);
    for (const auto& [ranks, slot] : shards_[s].slots) {
      if (slot->ready.load(std::memory_order_acquire)) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace optibar
