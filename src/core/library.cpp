#include "core/library.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/plan_store.hpp"
#include "core/retune.hpp"
#include "netsim/engine.hpp"
#include "simmpi/resilience.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

namespace {

/// FNV-1a over the subset elements; order-sensitive on purpose (order
/// defines local rank numbering, so permutations are distinct plans).
struct SubsetHash {
  std::size_t operator()(const std::vector<std::size_t>& ranks) const {
    std::size_t h = 1469598103934665603ull;
    for (std::size_t r : ranks) {
      h ^= r + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Cap on accumulated stall evidence per slot; a misbehaving reporter
/// cannot grow the pair list without bound.
constexpr std::size_t kMaxEvidencePairs = 4096;

}  // namespace

/// One cache entry. Concurrent first requests for the same subset
/// serialize on build_mutex; after that, the entry the slot serves is
/// published through the lock-free `active` pointer. Entries are
/// immutable once published and owned by `versions`, so a reader's
/// entry stays valid even while a repair promotes a successor.
struct BarrierLibrary::Slot {
  std::mutex build_mutex;
  std::exception_ptr error;  // sticky: a failed tune stays failed

  /// The entry subset_plan() serves; release-published, acquire-read.
  std::atomic<const LibraryEntry*> active{nullptr};
  /// Lifecycle state (plan_health.hpp); written under build_mutex,
  /// readable lock-free.
  std::atomic<PlanState> state{PlanState::kHealthy};
  /// Cumulative failure reports; monotonic.
  std::atomic<std::size_t> failures{0};

  // Everything below is guarded by build_mutex.
  std::vector<std::unique_ptr<LibraryEntry>> versions;
  const LibraryEntry* tuned = nullptr;     ///< latest tuned version
  const LibraryEntry* fallback = nullptr;  ///< latest fallback version
  std::size_t repair_attempts = 0;
  std::size_t probation_left = 0;
  std::string last_reason;
  /// Deduplicated (src, dst) local pairs blamed by StallReports since
  /// the last repair consumed them.
  std::vector<std::pair<std::size_t, std::size_t>> evidence;
  std::unique_ptr<DriftMonitor> monitor;  ///< lazily created
  bool repair_pending = false;  ///< a repair job is queued or running
};

struct BarrierLibrary::Shard {
  mutable std::shared_mutex mutex;
  std::unordered_map<std::vector<std::size_t>, std::shared_ptr<Slot>,
                     SubsetHash>
      slots;
};

/// One queued repair. Holds the slot by shared_ptr so an eviction can
/// never dangle a job that is already in flight.
struct BarrierLibrary::RepairJob {
  std::shared_ptr<Slot> slot;
  std::vector<std::size_t> ranks;
  bool drift_only = false;
  std::chrono::steady_clock::time_point due;
};

/// All state the background worker touches. Heap-allocated and owned
/// by unique_ptr so its address survives a BarrierLibrary move; the
/// worker thread is handed a Service* and never dereferences the
/// (movable) library object itself.
struct BarrierLibrary::Service {
  explicit Service(EngineOptions engine_options)
      : options(std::move(engine_options)) {}

  EngineOptions options;       ///< worker's copy of the knobs
  ThreadPool* pool = nullptr;  ///< pointee owned by the library; stable

  std::atomic<std::uint64_t> next_generation{0};
  std::atomic<std::size_t> slot_count{0};

  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable idle_cv;
  std::deque<RepairJob> queue;
  std::size_t active_jobs = 0;
  bool stop = false;
  bool started = false;
  std::thread worker;

  // ServiceStats counters, relaxed atomics.
  std::atomic<std::size_t> plan_requests{0};
  std::atomic<std::size_t> tunes{0};
  std::atomic<std::size_t> stall_reports{0};
  std::atomic<std::size_t> latency_reports{0};
  std::atomic<std::size_t> success_reports{0};
  std::atomic<std::size_t> quarantines{0};
  std::atomic<std::size_t> repairs_started{0};
  std::atomic<std::size_t> repairs_promoted{0};
  std::atomic<std::size_t> repairs_failed{0};
  std::atomic<std::size_t> repairs_rejected{0};
  std::atomic<std::size_t> warm_start_hits{0};
  std::atomic<std::size_t> drift_retunes{0};
  std::atomic<std::size_t> permanent_degradations{0};
  std::atomic<std::size_t> evictions{0};

  ~Service() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    work_cv.notify_all();
    if (worker.joinable()) {
      worker.join();
    }
  }
};

BarrierLibrary::BarrierLibrary(TopologyProfile profile, EngineOptions options)
    : profile_(std::move(profile)), options_(std::move(options)) {
  options_.validate();
  OPTIBAR_REQUIRE(profile_.ranks() > 0, "empty profile");
  shard_mask_ = options_.cache_shards - 1;  // power of two, validated
  shards_ = std::make_unique<Shard[]>(options_.cache_shards);
  if (options_.resolved_threads() > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.resolved_threads());
  }
  service_ = std::make_unique<Service>(options_);
  service_->pool = pool_.get();
}

BarrierLibrary::~BarrierLibrary() = default;
BarrierLibrary::BarrierLibrary(BarrierLibrary&&) noexcept = default;

BarrierLibrary BarrierLibrary::from_profile_file(const std::string& path,
                                                 EngineOptions options) {
  return BarrierLibrary(TopologyProfile::load_file(path), std::move(options));
}

const LibraryEntry& BarrierLibrary::full_barrier() {
  std::vector<std::size_t> all(profile_.ranks());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return subset_plan(all);
}

void BarrierLibrary::validate_subset(
    const std::vector<std::size_t>& ranks) const {
  OPTIBAR_REQUIRE(!ranks.empty(), "empty rank subset");
  std::set<std::size_t> seen;
  for (std::size_t r : ranks) {
    OPTIBAR_REQUIRE(r < profile_.ranks(),
                    "rank " << r << " out of range (" << profile_.ranks()
                            << ")");
    OPTIBAR_REQUIRE(seen.insert(r).second, "duplicate rank " << r);
  }
}

std::shared_ptr<BarrierLibrary::Slot> BarrierLibrary::find_slot(
    const std::vector<std::size_t>& ranks) {
  Shard& shard = shards_[SubsetHash{}(ranks)&shard_mask_];
  std::shared_lock<std::shared_mutex> read(shard.mutex);
  auto it = shard.slots.find(ranks);
  return it == shard.slots.end() ? nullptr : it->second;
}

std::shared_ptr<BarrierLibrary::Slot> BarrierLibrary::served_slot(
    const std::vector<std::size_t>& ranks) {
  std::shared_ptr<Slot> slot = find_slot(ranks);
  OPTIBAR_REQUIRE(slot != nullptr &&
                      slot->active.load(std::memory_order_acquire) != nullptr,
                  "no plan was ever served for this subset");
  return slot;
}

std::shared_ptr<BarrierLibrary::Slot> BarrierLibrary::slot_for(
    const std::vector<std::size_t>& ranks) {
  Shard& shard = shards_[SubsetHash{}(ranks)&shard_mask_];
  {
    std::shared_lock<std::shared_mutex> read(shard.mutex);
    auto it = shard.slots.find(ranks);
    if (it != shard.slots.end()) {
      return it->second;
    }
  }
  std::shared_ptr<Slot> slot;
  bool inserted = false;
  {
    std::unique_lock<std::shared_mutex> write(shard.mutex);
    auto [it, fresh] = shard.slots.try_emplace(ranks);
    if (fresh) {
      it->second = std::make_shared<Slot>();
    }
    slot = it->second;
    inserted = fresh;
  }
  if (inserted) {
    service_->slot_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cap = options_.service.max_cache_entries;
    if (cap > 0 &&
        service_->slot_count.load(std::memory_order_relaxed) > cap) {
      enforce_cache_bound(ranks);
    }
  }
  return slot;
}

void BarrierLibrary::enforce_cache_bound(const std::vector<std::size_t>& keep) {
  const std::size_t cap = options_.service.max_cache_entries;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  // Bounded number of sweeps: an eviction pass that finds every
  // candidate busy gives up rather than spinning.
  for (int sweep = 0; sweep < 64; ++sweep) {
    if (service_->slot_count.load(std::memory_order_relaxed) <= cap) {
      return;
    }
    // Cheapest-to-retune-first: the smallest subset is the cheapest to
    // rebuild on a future miss. Entries under repair are never evicted.
    std::size_t best_shard = kNone;
    std::vector<std::size_t> best_key;
    std::size_t best_size = kNone;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      std::shared_lock<std::shared_mutex> read(shards_[s].mutex);
      for (const auto& [key, slot] : shards_[s].slots) {
        if (key == keep || key.size() >= best_size) {
          continue;
        }
        std::unique_lock<std::mutex> guard(slot->build_mutex,
                                           std::try_to_lock);
        if (!guard.owns_lock() || slot->repair_pending ||
            slot->state.load(std::memory_order_relaxed) ==
                PlanState::kRetuning) {
          continue;
        }
        best_shard = s;
        best_key = key;
        best_size = key.size();
      }
    }
    if (best_shard == kNone) {
      return;  // everything left is busy or the fresh insert
    }
    Shard& shard = shards_[best_shard];
    std::unique_lock<std::shared_mutex> write(shard.mutex);
    auto it = shard.slots.find(best_key);
    if (it == shard.slots.end()) {
      continue;
    }
    // Hold the slot past the guard: erase() may drop the map's last
    // reference, and the guard must not unlock a destroyed mutex.
    std::shared_ptr<Slot> doomed = it->second;
    {
      std::unique_lock<std::mutex> guard(doomed->build_mutex,
                                         std::try_to_lock);
      if (!guard.owns_lock() || doomed->repair_pending ||
          doomed->state.load(std::memory_order_relaxed) ==
              PlanState::kRetuning) {
        continue;  // became busy between the scan and the erase
      }
      shard.slots.erase(it);
    }
    service_->slot_count.fetch_sub(1, std::memory_order_relaxed);
    service_->evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void BarrierLibrary::build_entry_locked(Slot& slot,
                                        const std::vector<std::size_t>& ranks,
                                        ThreadPool* pool) {
  // Caller holds slot.build_mutex and has checked !active && !error.
  try {
    const TopologyProfile local = profile_.restrict_to(ranks);
    const TuneResult tuned = tune_barrier(local, options_, pool);
    auto entry = std::make_unique<LibraryEntry>();
    entry->global_ranks = ranks;
    entry->stored.schedule = tuned.schedule();
    entry->stored.awaited_stages = tuned.barrier().awaited_stages;
    entry->compiled = CompiledBarrier(tuned.schedule());
    entry->predicted_cost = tuned.predicted_cost();
    entry->generation =
        service_->next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
    slot.tuned = entry.get();
    slot.versions.push_back(std::move(entry));
    service_->tunes.fetch_add(1, std::memory_order_relaxed);
    slot.active.store(slot.tuned, std::memory_order_release);
  } catch (...) {
    slot.error = std::current_exception();
  }
}

const LibraryEntry& BarrierLibrary::built_entry(
    Slot& slot, const std::vector<std::size_t>& ranks, ThreadPool* pool) {
  if (const LibraryEntry* entry =
          slot.active.load(std::memory_order_acquire)) {
    return *entry;  // fast path: no lock at all on a warm cache
  }
  std::lock_guard<std::mutex> build(slot.build_mutex);
  if (slot.active.load(std::memory_order_relaxed) == nullptr && !slot.error) {
    build_entry_locked(slot, ranks, pool);
  }
  if (slot.error) {
    std::rethrow_exception(slot.error);
  }
  return *slot.active.load(std::memory_order_relaxed);
}

const LibraryEntry& BarrierLibrary::subset_plan(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  service_->plan_requests.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<Slot> slot = slot_for(ranks);
  return built_entry(*slot, ranks, pool_.get());
}

std::vector<const LibraryEntry*> BarrierLibrary::tune_all(
    const std::vector<std::vector<std::size_t>>& subsets) {
  std::vector<std::shared_ptr<Slot>> slots(subsets.size());
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    validate_subset(subsets[i]);
    slots[i] = slot_for(subsets[i]);
  }

  // Fan the not-yet-built distinct subsets out across the pool. Pool
  // tasks only try_lock: a slot somebody else is already building is
  // skipped here and collected (blocking) below, so no pool task ever
  // blocks — that keeps the helping scheduler deadlock-free. Each task
  // tunes serially; the batch itself is the parallel grain.
  if (pool_ != nullptr) {
    std::vector<std::size_t> work;
    std::unordered_set<Slot*> seen;
    for (std::size_t i = 0; i < subsets.size(); ++i) {
      if (slots[i]->active.load(std::memory_order_acquire) == nullptr &&
          seen.insert(slots[i].get()).second) {
        work.push_back(i);
      }
    }
    if (work.size() > 1) {
      pool_->parallel_for(work.size(), [&](std::size_t k) {
        Slot& slot = *slots[work[k]];
        std::unique_lock<std::mutex> build(slot.build_mutex,
                                           std::try_to_lock);
        if (!build.owns_lock() ||
            slot.active.load(std::memory_order_relaxed) != nullptr ||
            slot.error) {
          return;
        }
        build_entry_locked(slot, subsets[work[k]], nullptr);
      });
    }
  }

  std::vector<const LibraryEntry*> out(subsets.size());
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    service_->plan_requests.fetch_add(1, std::memory_order_relaxed);
    out[i] = &built_entry(*slots[i], subsets[i], pool_.get());
  }
  return out;
}

void BarrierLibrary::ensure_monitor_locked(
    Slot& slot, const std::vector<std::size_t>& ranks) {
  if (slot.monitor == nullptr) {
    slot.monitor = std::make_unique<DriftMonitor>(
        profile_.restrict_to(ranks), options_.service.drift_alpha);
  }
}

void BarrierLibrary::publish_fallback_locked(
    Slot& slot, const std::vector<std::size_t>& ranks,
    const std::string& reason) {
  auto fallback = std::make_unique<LibraryEntry>();
  const Schedule safe = dissemination_barrier(ranks.size());
  fallback->global_ranks = ranks;
  fallback->stored.schedule = safe;
  fallback->compiled = CompiledBarrier(safe);
  fallback->predicted_cost =
      predicted_time(safe, profile_.restrict_to(ranks).symmetrized());
  fallback->degraded = true;
  fallback->degradation_reason = reason;
  fallback->generation =
      service_->next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  slot.fallback = fallback.get();
  slot.versions.push_back(std::move(fallback));
  slot.active.store(slot.fallback, std::memory_order_release);
}

void BarrierLibrary::quarantine_locked(Slot& slot,
                                       const std::vector<std::size_t>& ranks,
                                       const std::string& reason) {
  const std::size_t count = slot.failures.load(std::memory_order_relaxed);
  const std::string full = "tuned plan quarantined after " +
                           std::to_string(count) +
                           " execution failure(s): " + reason;
  publish_fallback_locked(slot, ranks, full);
  slot.last_reason = full;
  slot.state.store(PlanState::kQuarantined, std::memory_order_relaxed);
  service_->quarantines.fetch_add(1, std::memory_order_relaxed);
}

void BarrierLibrary::maybe_enqueue_repair_locked(
    const std::shared_ptr<Slot>& slot, const std::vector<std::size_t>& ranks,
    bool drift_only) {
  const ServiceOptions& service = options_.service;
  if (!service.auto_repair || slot->repair_pending) {
    return;
  }
  if (!drift_only && slot->repair_attempts >= service.max_repair_attempts) {
    return;
  }
  RepairJob job{slot, ranks, drift_only, std::chrono::steady_clock::now()};
  std::lock_guard<std::mutex> lock(service_->mutex);
  if (service_->queue.size() >= service.repair_queue_capacity) {
    service_->repairs_rejected.fetch_add(1, std::memory_order_relaxed);
    return;  // stays quarantined; the next report retries the enqueue
  }
  slot->repair_pending = true;
  service_->queue.push_back(std::move(job));
  if (!service_->started) {
    service_->started = true;
    service_->worker = std::thread(&BarrierLibrary::repair_worker,
                                   service_.get());
  }
  service_->work_cv.notify_one();
}

bool BarrierLibrary::record_failure(
    Slot& slot, const std::vector<std::size_t>& ranks,
    const std::string& reason,
    const std::vector<std::pair<std::size_t, std::size_t>>& evidence) {
  // Re-find the shared_ptr for job ownership; the slot is known cached.
  const std::shared_ptr<Slot> slotp = find_slot(ranks);
  std::lock_guard<std::mutex> lock(slot.build_mutex);
  service_->stall_reports.fetch_add(1, std::memory_order_relaxed);
  const std::size_t count =
      slot.failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!evidence.empty() && slot.evidence.size() < kMaxEvidencePairs) {
    for (const auto& pair : evidence) {
      if (pair.first != pair.second) {
        slot.evidence.push_back(pair);
      }
    }
    std::sort(slot.evidence.begin(), slot.evidence.end());
    slot.evidence.erase(
        std::unique(slot.evidence.begin(), slot.evidence.end()),
        slot.evidence.end());
  }
  switch (slot.state.load(std::memory_order_relaxed)) {
    case PlanState::kQuarantined:
    case PlanState::kRetuning:
    case PlanState::kDegraded:
      return true;  // already on the fallback; keep counting
    case PlanState::kProbation:
      // The repaired plan failed its probation: straight back to the
      // fallback, and permanently degraded once repairs are exhausted.
      quarantine_locked(slot, ranks, reason);
      if (slot.repair_attempts >= options_.service.max_repair_attempts) {
        slot.state.store(PlanState::kDegraded, std::memory_order_relaxed);
        slot.last_reason +=
            " (repairs exhausted after " +
            std::to_string(slot.repair_attempts) + " attempt(s))";
        service_->permanent_degradations.fetch_add(1,
                                                   std::memory_order_relaxed);
      } else {
        ensure_monitor_locked(slot, ranks);
        maybe_enqueue_repair_locked(slotp, ranks, /*drift_only=*/false);
      }
      return true;
    case PlanState::kHealthy:
      slot.state.store(PlanState::kSuspect, std::memory_order_relaxed);
      [[fallthrough]];
    case PlanState::kSuspect:
      if (count < options_.quarantine_threshold) {
        return false;
      }
      quarantine_locked(slot, ranks, reason);
      ensure_monitor_locked(slot, ranks);
      maybe_enqueue_repair_locked(slotp, ranks, /*drift_only=*/false);
      return true;
  }
  return true;
}

bool BarrierLibrary::report_execution_failure(
    const std::vector<std::size_t>& ranks, const std::string& reason) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = served_slot(ranks);
  return record_failure(*slot, ranks, reason, {});
}

bool BarrierLibrary::report_execution_failure(
    const std::vector<std::size_t>& ranks,
    const simmpi::StallReport& report) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = served_slot(ranks);
  return record_failure(*slot, ranks, report.describe(),
                        report.implicated_pairs());
}

void BarrierLibrary::report_execution_success(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = served_slot(ranks);
  std::lock_guard<std::mutex> lock(slot->build_mutex);
  service_->success_reports.fetch_add(1, std::memory_order_relaxed);
  switch (slot->state.load(std::memory_order_relaxed)) {
    case PlanState::kProbation:
      if (slot->probation_left > 0) {
        --slot->probation_left;
      }
      if (slot->probation_left == 0) {
        slot->state.store(PlanState::kHealthy, std::memory_order_relaxed);
        slot->failures.store(0, std::memory_order_relaxed);
        slot->evidence.clear();
        slot->last_reason.clear();
        if (slot->monitor != nullptr) {
          slot->monitor->rebaseline();
        }
      }
      break;
    case PlanState::kSuspect:
      slot->failures.store(0, std::memory_order_relaxed);
      slot->evidence.clear();
      slot->state.store(PlanState::kHealthy, std::memory_order_relaxed);
      break;
    default:
      break;  // healthy: nothing to clear; fallback states: expected
  }
}

void BarrierLibrary::report_measured_latency(
    const std::vector<std::size_t>& ranks, std::size_t src, std::size_t dst,
    double seconds) {
  validate_subset(ranks);
  OPTIBAR_REQUIRE(std::isfinite(seconds) && seconds >= 0.0,
                  "measured latency must be finite and non-negative, got "
                      << seconds);
  OPTIBAR_REQUIRE(src < ranks.size() && dst < ranks.size(),
                  "latency indices are local subset ranks: ("
                      << src << ", " << dst << ") out of range ("
                      << ranks.size() << ")");
  OPTIBAR_REQUIRE(src != dst, "latency observation needs distinct ranks");
  const std::shared_ptr<Slot> slot = served_slot(ranks);
  std::lock_guard<std::mutex> lock(slot->build_mutex);
  ensure_monitor_locked(*slot, ranks);
  slot->monitor->observe_latency(src, dst, seconds);
  service_->latency_reports.fetch_add(1, std::memory_order_relaxed);
  const PlanState state = slot->state.load(std::memory_order_relaxed);
  if ((state == PlanState::kHealthy || state == PlanState::kSuspect) &&
      slot->monitor->max_drift() >=
          options_.service.drift_retune_threshold) {
    maybe_enqueue_repair_locked(slot, ranks, /*drift_only=*/true);
  }
}

std::size_t BarrierLibrary::failure_count(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = find_slot(ranks);
  return slot == nullptr ? 0
                         : slot->failures.load(std::memory_order_relaxed);
}

bool BarrierLibrary::is_quarantined(const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = find_slot(ranks);
  return slot != nullptr &&
         serves_fallback(slot->state.load(std::memory_order_acquire));
}

PlanState BarrierLibrary::plan_state(const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  return served_slot(ranks)->state.load(std::memory_order_acquire);
}

PlanHealthView BarrierLibrary::plan_health(
    const std::vector<std::size_t>& ranks) {
  validate_subset(ranks);
  const std::shared_ptr<Slot> slot = served_slot(ranks);
  std::lock_guard<std::mutex> lock(slot->build_mutex);
  PlanHealthView view;
  view.state = slot->state.load(std::memory_order_relaxed);
  view.failures = slot->failures.load(std::memory_order_relaxed);
  view.repair_attempts = slot->repair_attempts;
  view.probation_left = slot->probation_left;
  const LibraryEntry* active = slot->active.load(std::memory_order_relaxed);
  view.generation = active == nullptr ? 0 : active->generation;
  view.observed_drift =
      slot->monitor == nullptr ? 0.0 : slot->monitor->max_drift();
  view.reason = slot->last_reason;
  return view;
}

void BarrierLibrary::wait_for_repairs() {
  std::unique_lock<std::mutex> lock(service_->mutex);
  service_->idle_cv.wait(lock, [this] {
    return service_->queue.empty() && service_->active_jobs == 0;
  });
}

ServiceStats BarrierLibrary::stats() const {
  const Service& s = *service_;
  ServiceStats out;
  out.plan_requests = s.plan_requests.load(std::memory_order_relaxed);
  out.tunes = s.tunes.load(std::memory_order_relaxed);
  out.stall_reports = s.stall_reports.load(std::memory_order_relaxed);
  out.latency_reports = s.latency_reports.load(std::memory_order_relaxed);
  out.success_reports = s.success_reports.load(std::memory_order_relaxed);
  out.quarantines = s.quarantines.load(std::memory_order_relaxed);
  out.repairs_started = s.repairs_started.load(std::memory_order_relaxed);
  out.repairs_promoted = s.repairs_promoted.load(std::memory_order_relaxed);
  out.repairs_failed = s.repairs_failed.load(std::memory_order_relaxed);
  out.repairs_rejected = s.repairs_rejected.load(std::memory_order_relaxed);
  out.warm_start_hits = s.warm_start_hits.load(std::memory_order_relaxed);
  out.drift_retunes = s.drift_retunes.load(std::memory_order_relaxed);
  out.permanent_degradations =
      s.permanent_degradations.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  return out;
}

std::size_t BarrierLibrary::cache_size() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock<std::shared_mutex> read(shards_[s].mutex);
    for (const auto& [ranks, slot] : shards_[s].slots) {
      if (slot->active.load(std::memory_order_acquire) != nullptr) {
        ++n;
      }
    }
  }
  return n;
}

/* ---- warm-restartable plan store ---- */

void BarrierLibrary::save_store(const std::string& path) {
  std::vector<PlanStoreRecord> records;
  for (std::size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock<std::shared_mutex> read(shards_[s].mutex);
    for (const auto& [ranks, slot] : shards_[s].slots) {
      std::lock_guard<std::mutex> lock(slot->build_mutex);
      if (slot->tuned == nullptr) {
        continue;  // never successfully tuned; nothing worth keeping
      }
      PlanStoreRecord record;
      record.subset = ranks;
      record.state = slot->state.load(std::memory_order_relaxed);
      record.failures = slot->failures.load(std::memory_order_relaxed);
      record.repair_attempts = slot->repair_attempts;
      record.probation_left = slot->probation_left;
      record.predicted_cost = slot->tuned->predicted_cost;
      record.reason = slot->last_reason;
      record.plan = slot->tuned->stored;
      records.push_back(std::move(record));
    }
  }
  save_plan_store_file(path, profile_.ranks(), std::move(records));
}

void BarrierLibrary::load_store(const std::string& path) {
  OPTIBAR_REQUIRE(
      service_->slot_count.load(std::memory_order_relaxed) == 0,
      "load_store needs an empty library (load before the first tune)");
  const std::vector<PlanStoreRecord> records =
      load_plan_store_file(path, profile_.ranks());
  for (const PlanStoreRecord& record : records) {
    insert_record(record);
  }
}

void BarrierLibrary::insert_record(const PlanStoreRecord& record) {
  // The loader has already range/duplicate-checked the subset and the
  // plan shape; this re-check guards direct callers.
  validate_subset(record.subset);
  OPTIBAR_REQUIRE(record.plan.schedule.ranks() == record.subset.size(),
                  "stored plan shape does not match its subset");
  const std::shared_ptr<Slot> slotp = slot_for(record.subset);
  Slot& slot = *slotp;
  std::lock_guard<std::mutex> lock(slot.build_mutex);
  OPTIBAR_REQUIRE(slot.versions.empty(),
                  "subset already present; load_store needs an empty library");
  auto entry = std::make_unique<LibraryEntry>();
  entry->global_ranks = record.subset;
  entry->stored = record.plan;
  entry->compiled = CompiledBarrier(record.plan.schedule);
  entry->predicted_cost = record.predicted_cost;
  entry->generation =
      service_->next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  slot.tuned = entry.get();
  slot.versions.push_back(std::move(entry));
  slot.failures.store(record.failures, std::memory_order_relaxed);
  slot.repair_attempts = record.repair_attempts;
  slot.probation_left = record.probation_left;
  slot.last_reason = record.reason;
  PlanState state = record.state == PlanState::kRetuning
                        ? PlanState::kQuarantined
                        : record.state;
  if (state == PlanState::kProbation && slot.probation_left == 0) {
    slot.probation_left = 1;  // a probation needs at least one success
  }
  slot.state.store(state, std::memory_order_relaxed);
  if (serves_fallback(state)) {
    // The fallback is never stored — it is deterministic, so rebuild it.
    publish_fallback_locked(
        slot, record.subset,
        record.reason.empty() ? "restored from plan store in quarantine"
                              : record.reason);
    if (state == PlanState::kQuarantined) {
      ensure_monitor_locked(slot, record.subset);
      maybe_enqueue_repair_locked(slotp, record.subset,
                                  /*drift_only=*/false);
    }
  } else {
    slot.active.store(slot.tuned, std::memory_order_release);
  }
}

/* ---- background repair loop ---- */

void BarrierLibrary::enqueue_locked(Service& service, RepairJob job) {
  // Caller holds service.mutex (and the slot's build_mutex).
  service.queue.push_back(std::move(job));
  service.work_cv.notify_one();
}

void BarrierLibrary::repair_worker(Service* service) {
  for (;;) {
    RepairJob job;
    {
      std::unique_lock<std::mutex> lock(service->mutex);
      for (;;) {
        if (service->stop) {
          return;
        }
        auto earliest = std::min_element(
            service->queue.begin(), service->queue.end(),
            [](const RepairJob& a, const RepairJob& b) {
              return a.due < b.due;
            });
        if (earliest == service->queue.end()) {
          service->work_cv.wait(lock);
          continue;
        }
        if (earliest->due <= std::chrono::steady_clock::now()) {
          job = std::move(*earliest);
          service->queue.erase(earliest);
          break;
        }
        service->work_cv.wait_until(lock, earliest->due);
      }
      ++service->active_jobs;
    }
    run_repair(*service, std::move(job));
    {
      std::lock_guard<std::mutex> lock(service->mutex);
      --service->active_jobs;
    }
    service->idle_cv.notify_all();
  }
}

void BarrierLibrary::run_repair(Service& service, RepairJob job) {
  Slot& slot = *job.slot;
  const ServiceOptions& knobs = service.options.service;
  TopologyProfile drifted;
  StoredSchedule prior;
  std::size_t attempt = 0;

  {
    std::lock_guard<std::mutex> lock(slot.build_mutex);
    const PlanState state = slot.state.load(std::memory_order_relaxed);
    const bool stale =
        slot.tuned == nullptr || slot.monitor == nullptr ||
        state == PlanState::kDegraded ||
        (job.drift_only && state != PlanState::kHealthy &&
         state != PlanState::kSuspect);
    if (stale) {
      slot.repair_pending = false;
      return;
    }
    if (!job.drift_only) {
      slot.state.store(PlanState::kRetuning, std::memory_order_relaxed);
      attempt = ++slot.repair_attempts;
    }
    // Fold the stall evidence into the drift view: every implicated
    // link looks `evidence_inflation` times slower. One EWMA fold only
    // moves a fraction alpha toward the target, so the target is folded
    // ceil(1/alpha) times — enough to carry most of the inflation.
    const int folds = static_cast<int>(
        std::ceil(1.0 / std::max(knobs.drift_alpha, 1e-9)));
    for (const auto& [i, j] : slot.evidence) {
      const TopologyProfile& current = slot.monitor->current();
      const double target_o = current.o(i, j) * knobs.evidence_inflation;
      const double target_l = current.l(i, j) * knobs.evidence_inflation;
      const double target_r = current.has_rma_latency()
                                  ? current.r(i, j) * knobs.evidence_inflation
                                  : 0.0;
      for (int fold = 0; fold < folds; ++fold) {
        slot.monitor->observe_overhead(i, j, target_o);
        slot.monitor->observe_latency(i, j, target_l);
        if (slot.monitor->current().has_rma_latency()) {
          slot.monitor->observe_rma_latency(i, j, target_r);
        }
      }
    }
    slot.evidence.clear();
    drifted = slot.monitor->current();
    prior = slot.tuned->stored;
    service.repairs_started.fetch_add(1, std::memory_order_relaxed);
  }

  bool promote = false;
  StoredSchedule chosen;
  double chosen_cost = 0.0;
  try {
    // Re-tune against the drifted estimates, with the prior schedule as
    // the warm-start candidate (Estefanel & Mounié: reusing the prior
    // result makes the common repair far cheaper than a cold tune —
    // when the prior still wins on the drifted profile, it is promoted
    // without paying for a new search's output).
    const auto tune_start = std::chrono::steady_clock::now();
    const TuneResult candidate =
        tune_barrier(drifted, service.options, service.pool);
    const double tune_overhead =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      tune_start)
            .count();
    PredictOptions prior_options;
    prior_options.awaited_stages = prior.awaited_stages;
    const double prior_cost =
        predicted_time(prior.schedule, candidate.profile(), prior_options);
    if (prior_cost <= candidate.predicted_cost()) {
      chosen = prior;
      chosen_cost = prior_cost;
      service.warm_start_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      chosen.schedule = candidate.schedule();
      chosen.awaited_stages = candidate.barrier().awaited_stages;
      chosen_cost = candidate.predicted_cost();
    }

    if (job.drift_only) {
      // Replacing a *working* plan is a pure optimization, so the
      // amortization rule gates it: the tuning overhead must pay for
      // itself within the expected remaining calls.
      promote = evaluate_retune(prior_cost, chosen_cost, tune_overhead,
                                knobs.expected_calls)
                    .retune;
    } else {
      // Repairing a *quarantined* plan must not lose to the fallback
      // the slot currently serves — and not just under the predictor
      // that already misjudged it once: the netsim simulator
      // arbitrates. Ties promote: on small subsets the optimal plan IS
      // dissemination, and refusing the tie would degrade a plan that
      // is exactly as good as the fallback it is measured against.
      const Schedule safe = dissemination_barrier(drifted.ranks());
      SimOptions sim;
      sim.seed = 0x9e3779b9ull + drifted.ranks();
      const double candidate_time = simulate_mean_time(
          chosen.schedule, drifted, sim, knobs.promote_sim_reps,
          service.pool);
      const double fallback_time = simulate_mean_time(
          safe, drifted, sim, knobs.promote_sim_reps, service.pool);
      promote = candidate_time <= fallback_time;
    }
  } catch (...) {
    promote = false;  // a tuning/simulation failure is a failed attempt
  }

  std::lock_guard<std::mutex> lock(slot.build_mutex);
  const PlanState state = slot.state.load(std::memory_order_relaxed);
  if (state == PlanState::kDegraded ||
      (job.drift_only && state != PlanState::kHealthy &&
       state != PlanState::kSuspect)) {
    slot.repair_pending = false;
    return;  // the world changed while we tuned; drop the result
  }
  if (promote) {
    auto entry = std::make_unique<LibraryEntry>();
    entry->global_ranks = job.ranks;
    entry->stored = std::move(chosen);
    entry->compiled = CompiledBarrier(entry->stored.schedule);
    entry->predicted_cost = chosen_cost;
    entry->generation =
        service.next_generation.fetch_add(1, std::memory_order_relaxed) + 1;
    slot.tuned = entry.get();
    slot.versions.push_back(std::move(entry));
    slot.monitor->rebaseline();
    if (job.drift_only) {
      service.drift_retunes.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.probation_left = knobs.probation_successes;
      slot.state.store(PlanState::kProbation, std::memory_order_relaxed);
      service.repairs_promoted.fetch_add(1, std::memory_order_relaxed);
    }
    slot.active.store(slot.tuned, std::memory_order_release);
    slot.repair_pending = false;
    return;
  }
  if (job.drift_only) {
    slot.repair_pending = false;  // not amortizable; keep the active plan
    return;
  }
  service.repairs_failed.fetch_add(1, std::memory_order_relaxed);
  if (attempt >= knobs.max_repair_attempts) {
    slot.state.store(PlanState::kDegraded, std::memory_order_relaxed);
    slot.last_reason += " (repairs exhausted after " +
                        std::to_string(attempt) + " attempt(s))";
    service.permanent_degradations.fetch_add(1, std::memory_order_relaxed);
    slot.repair_pending = false;
    return;
  }
  // Retry with exponential backoff; the fallback keeps serving.
  slot.state.store(PlanState::kQuarantined, std::memory_order_relaxed);
  const double delay =
      knobs.repair_backoff_seconds * static_cast<double>(1ull << attempt);
  RepairJob retry{job.slot, job.ranks, /*drift_only=*/false,
                  std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(delay))};
  std::lock_guard<std::mutex> service_lock(service.mutex);
  if (service.queue.size() >= knobs.repair_queue_capacity) {
    service.repairs_rejected.fetch_add(1, std::memory_order_relaxed);
    slot.repair_pending = false;
    return;
  }
  enqueue_locked(service, std::move(retry));  // repair_pending stays true
}

}  // namespace optibar
