// AdaptiveTuner: the end-to-end pipeline of Figure 1's right half.
//
// profile (from disk or an estimator) -> symmetrize -> SSS cluster tree
// -> greedy hybrid composition -> predicted cost + generated code.
// This is the single entry point a library user needs; the individual
// stages remain available for ablation and inspection.
#pragma once

#include <string>

#include "core/cluster_tree.hpp"
#include "core/codegen.hpp"
#include "core/composer.hpp"
#include "core/engine_options.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;

/// Deprecated alias: the tuning knobs were consolidated into the
/// top-level EngineOptions (core/engine_options.hpp), which also
/// carries the search caps and the engine's thread count. Existing
/// code using `.clustering` / `.composition` / `.function_name`
/// continues to work unchanged.
using TuneOptions = EngineOptions;

class TuneResult {
 public:
  TuneResult(TopologyProfile profile, ClusterNode tree, ComposedBarrier barrier,
             double predicted_cost, std::string function_name);

  /// The symmetrized profile the decisions were made against.
  const TopologyProfile& profile() const { return profile_; }
  const ClusterNode& cluster_tree() const { return tree_; }
  const ComposedBarrier& barrier() const { return barrier_; }
  const Schedule& schedule() const { return barrier_.schedule; }

  /// Predicted critical-path cost of the hybrid barrier (Eq. 2 applied
  /// to departure stages).
  double predicted_cost() const { return predicted_cost_; }

  /// Specialised C++ source for the hybrid barrier (Section VII-C).
  GeneratedCode generated_code() const;

  /// Specialised in-process executor.
  CompiledBarrier compiled() const { return CompiledBarrier(schedule()); }

 private:
  TopologyProfile profile_;
  ClusterNode tree_;
  ComposedBarrier barrier_;
  double predicted_cost_;
  std::string function_name_;
};

/// Run the full tuning pipeline on a profile. With options.threads > 1
/// the clustering recursion, the composer's candidate evaluation and
/// subtree builds run on an internal work-stealing pool; the tuned
/// schedule is bit-identical to the serial result at any width.
TuneResult tune_barrier(const TopologyProfile& profile,
                        const EngineOptions& options = {});

/// As above, but on an existing pool (nullptr = serial) instead of
/// spawning one per call — the form BarrierLibrary uses so concurrent
/// tunes share one set of threads. `options.threads` is ignored here.
TuneResult tune_barrier(const TopologyProfile& profile,
                        const EngineOptions& options, ThreadPool* pool);

}  // namespace optibar
