#include "core/plan_store.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>

#include "util/error.hpp"

namespace optibar {

namespace {

constexpr const char* kMagic = "optibar-plan-store";

// Header sanity caps, same doctrine as schedule_io: a lying header must
// not drive allocation.
constexpr std::size_t kMaxRanks = 8192;
constexpr std::size_t kMaxEntries = 100000;

/// Reasons are free text that may span lines (StallReport::describe is
/// multi-line); the store is line-oriented, so reasons are stored on one
/// line with backslash escapes. "-" encodes the empty reason.
std::string escape_reason(const std::string& reason) {
  if (reason.empty()) {
    return "-";
  }
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_reason(const std::string& text) {
  if (text == "-") {
    return {};
  }
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    OPTIBAR_IO_REQUIRE(i + 1 < text.size(),
                       "dangling escape at end of reason line");
    const char next = text[++i];
    switch (next) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        OPTIBAR_IO_FAIL("unknown escape '\\" << next << "' in reason line");
    }
  }
  return out;
}

std::size_t read_count(std::istream& is, const char* tag,
                       std::size_t entry_index) {
  std::string got;
  std::size_t value = 0;
  is >> got >> value;
  OPTIBAR_IO_REQUIRE(!is.fail() && got == tag,
                     "malformed plan-store entry " << entry_index
                                                   << ": expected '" << tag
                                                   << "' field");
  return value;
}

}  // namespace

void save_plan_store(std::ostream& os, std::size_t ranks,
                     std::vector<PlanStoreRecord> records) {
  OPTIBAR_REQUIRE(ranks > 0, "plan store needs a positive rank count");
  std::sort(records.begin(), records.end(),
            [](const PlanStoreRecord& a, const PlanStoreRecord& b) {
              return a.subset < b.subset;
            });
  os << kMagic << " v1\n";
  os << "ranks " << ranks << '\n';
  os << "entries " << records.size() << '\n';
  for (std::size_t k = 0; k < records.size(); ++k) {
    const PlanStoreRecord& record = records[k];
    OPTIBAR_REQUIRE(record.plan.schedule.ranks() == record.subset.size(),
                    "record " << k << ": plan is over "
                              << record.plan.schedule.ranks()
                              << " ranks but the subset has "
                              << record.subset.size());
    // A live repair does not survive the process; persist it as the
    // quarantine it came from so the restarted service re-runs it.
    const PlanState state = record.state == PlanState::kRetuning
                                ? PlanState::kQuarantined
                                : record.state;
    os << "entry " << k << '\n';
    os << "subset " << record.subset.size();
    for (std::size_t rank : record.subset) {
      os << ' ' << rank;
    }
    os << '\n';
    os << "state " << to_string(state) << '\n';
    os << "failures " << record.failures << '\n';
    os << "repairs " << record.repair_attempts << '\n';
    os << "probation " << record.probation_left << '\n';
    os << "predicted " << record.predicted_cost << '\n';
    os << "reason " << escape_reason(record.reason) << '\n';
    os << "plan\n";
    save_schedule(os, record.plan);
  }
  os << "end\n";
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing plan store");
}

std::vector<PlanStoreRecord> load_plan_store(std::istream& is,
                                             std::size_t expected_ranks) {
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_IO_REQUIRE(!is.fail() && magic == kMagic,
                     "not an optibar plan store (magic '" << magic << "')");
  OPTIBAR_IO_REQUIRE(version == "v1",
                     "unsupported plan-store version " << version);

  std::string tag;
  std::size_t ranks = 0;
  is >> tag >> ranks;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "ranks" && ranks > 0,
                     "malformed plan-store header (ranks)");
  OPTIBAR_IO_REQUIRE(ranks <= kMaxRanks, "plan-store header claims "
                                             << ranks << " ranks (cap "
                                             << kMaxRanks << ")");
  OPTIBAR_IO_REQUIRE(ranks == expected_ranks,
                     "plan store was saved for " << ranks
                                                 << " ranks; this profile has "
                                                 << expected_ranks);
  std::size_t entries = 0;
  is >> tag >> entries;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "entries",
                     "malformed plan-store header (entries)");
  OPTIBAR_IO_REQUIRE(entries <= kMaxEntries,
                     "plan-store header claims " << entries << " entries (cap "
                                                 << kMaxEntries << ")");

  std::vector<PlanStoreRecord> records;
  records.reserve(entries);
  std::set<std::vector<std::size_t>> seen_subsets;
  for (std::size_t k = 0; k < entries; ++k) {
    std::size_t index = 0;
    is >> tag >> index;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "entry" && index == k,
                       "truncated plan store: entry " << k << " missing");
    PlanStoreRecord record;

    const std::size_t subset_size = read_count(is, "subset", k);
    OPTIBAR_IO_REQUIRE(subset_size > 0 && subset_size <= ranks,
                       "entry " << k << ": subset size " << subset_size
                                << " out of range (1.." << ranks << ")");
    record.subset.resize(subset_size);
    std::set<std::size_t> seen_ranks;
    for (std::size_t i = 0; i < subset_size; ++i) {
      is >> record.subset[i];
      OPTIBAR_IO_REQUIRE(!is.fail(), "truncated plan store: entry "
                                         << k << " subset rank " << i
                                         << " missing");
      OPTIBAR_IO_REQUIRE(record.subset[i] < ranks,
                         "entry " << k << ": rank " << record.subset[i]
                                  << " out of range (" << ranks << ")");
      OPTIBAR_IO_REQUIRE(seen_ranks.insert(record.subset[i]).second,
                         "entry " << k << ": duplicate rank "
                                  << record.subset[i]);
    }
    OPTIBAR_IO_REQUIRE(seen_subsets.insert(record.subset).second,
                       "entry " << k << ": duplicate subset in plan store");

    std::string state_name;
    is >> tag >> state_name;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "state",
                       "malformed plan-store entry " << k
                                                     << ": expected 'state'");
    try {
      record.state = plan_state_from_string(state_name);
    } catch (const Error&) {
      OPTIBAR_IO_FAIL("entry " << k << ": unknown plan state '" << state_name
                               << "'");
    }
    OPTIBAR_IO_REQUIRE(record.state != PlanState::kRetuning,
                       "entry " << k
                                << ": a stored plan cannot be mid-retune");

    record.failures = read_count(is, "failures", k);
    record.repair_attempts = read_count(is, "repairs", k);
    record.probation_left = read_count(is, "probation", k);
    is >> tag >> record.predicted_cost;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "predicted",
                       "malformed plan-store entry "
                           << k << ": expected 'predicted'");
    OPTIBAR_IO_REQUIRE(
        std::isfinite(record.predicted_cost) && record.predicted_cost >= 0.0,
        "entry " << k << ": predicted cost must be finite and non-negative");

    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "reason",
                       "malformed plan-store entry " << k
                                                     << ": expected 'reason'");
    std::string reason_line;
    std::getline(is, reason_line);
    OPTIBAR_IO_REQUIRE(!is.fail(), "truncated plan store: entry "
                                       << k << " reason missing");
    if (!reason_line.empty() && reason_line.front() == ' ') {
      reason_line.erase(reason_line.begin());
    }
    OPTIBAR_IO_REQUIRE(!reason_line.empty(),
                       "malformed plan-store entry " << k
                                                     << ": empty reason line");
    record.reason = unescape_reason(reason_line);

    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "plan",
                       "truncated plan store: entry " << k
                                                      << " plan missing");
    record.plan = load_schedule(is);  // hardened loader; throws IoError
    OPTIBAR_IO_REQUIRE(record.plan.schedule.ranks() == subset_size,
                       "entry " << k << ": plan is over "
                                << record.plan.schedule.ranks()
                                << " ranks but the subset has "
                                << subset_size);
    records.push_back(std::move(record));
  }
  is >> tag;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "end",
                     "truncated plan store: trailing 'end' missing");
  return records;
}

void save_plan_store_file(const std::string& path, std::size_t ranks,
                          std::vector<PlanStoreRecord> records) {
  // Rename-on-write: the store at `path` is either the old complete
  // file or the new complete file, never a torn mix.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    OPTIBAR_IO_REQUIRE(os.is_open(), "cannot open " << tmp << " for writing");
    save_plan_store(os, ranks, std::move(records));
    os.flush();
    OPTIBAR_IO_REQUIRE(os.good(), "I/O error while writing " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  OPTIBAR_IO_REQUIRE(!ec, "cannot move " << tmp << " into place: "
                                         << ec.message());
}

std::vector<PlanStoreRecord> load_plan_store_file(const std::string& path,
                                                  std::size_t expected_ranks) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load_plan_store(is, expected_ranks);
}

}  // namespace optibar
