// Dynamic re-tuning under changing conditions (Section VIII).
//
// "As the presented work captures its topological model statically,
//  predictions do not consider run-time effects of contention and
//  congestion which could be caused by background load. With a
//  topological model ready, the generation and evaluation of adapted
//  patterns requires on the order of 0.1 seconds, making it feasible to
//  periodically re-evaluate ... This would only make it worthwhile to
//  adapt the algorithm when the overhead could be amortized over a
//  sufficient number of subsequent synchronizations. Developing an
//  efficient scheme to estimate the profitability of dynamically
//  altering methods makes an interesting topic for further study."
//
// This module implements that further study:
//   - DriftMonitor folds cheap incremental pairwise observations into an
//     EWMA copy of the profile and reports the drift vs the tuned
//     baseline;
//   - evaluate_retune() is the amortization rule: re-tune only when the
//     per-call gain times the expected remaining calls exceeds the
//     re-tuning overhead;
//   - AdaptiveBarrierController ties them together into a drop-in
//     controller that owns the current schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "barrier/compiled_schedule.hpp"
#include "barrier/schedule.hpp"
#include "core/tuner.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// Folds runtime observations of pairwise costs into an exponentially
/// weighted moving copy of a baseline profile.
class DriftMonitor {
 public:
  /// `alpha` is the EWMA weight of a new observation, in (0, 1].
  explicit DriftMonitor(TopologyProfile baseline, double alpha = 0.25);

  /// Fold one observed startup cost for the pair (i, j). Symmetric:
  /// updates both directions. All observe_* entry points reject
  /// non-finite (NaN/Inf) and negative observations with an Error —
  /// one poisoned sample would otherwise contaminate the EWMA window
  /// for good.
  void observe_overhead(std::size_t i, std::size_t j, double seconds);

  /// Fold one observed marginal latency for the pair (i, j).
  void observe_latency(std::size_t i, std::size_t j, double seconds);

  /// Fold one observed one-sided delivery latency for the pair (i, j).
  /// Requires the baseline profile to carry an R matrix.
  void observe_rma_latency(std::size_t i, std::size_t j, double seconds);

  /// The drifted profile (baseline entries where nothing was observed).
  const TopologyProfile& current() const { return current_; }
  const TopologyProfile& baseline() const { return baseline_; }

  /// Largest relative deviation of any observed entry from the baseline;
  /// 0 when nothing has drifted.
  double max_drift() const;

  std::size_t observation_count() const { return observations_; }

  /// Re-anchor the baseline to the current view (after a re-tune).
  void rebaseline();

 private:
  TopologyProfile baseline_;
  TopologyProfile current_;
  double alpha_;
  std::size_t observations_ = 0;
};

/// Amortization verdict for one potential re-tune.
struct RetuneDecision {
  bool retune = false;
  double gain_per_call = 0.0;     ///< seconds saved per barrier call
  double break_even_calls = 0.0;  ///< calls needed to pay the overhead
};

/// The profitability rule: re-tune iff
///   (current_cost - candidate_cost) * expected_calls > retune_overhead.
RetuneDecision evaluate_retune(double current_cost_seconds,
                               double candidate_cost_seconds,
                               double retune_overhead_seconds,
                               double expected_remaining_calls);

struct ControllerOptions {
  /// Relative drift that triggers a re-evaluation.
  double drift_threshold = 0.20;
  /// Cost of one re-tune, seconds. Zero means "measure it live" (wall
  /// clock around the tuner, matching the paper's ~0.1 s figure).
  double retune_overhead = 0.0;
  /// EWMA weight for the drift monitor.
  double alpha = 0.25;
  TuneOptions tuning;
};

/// Owns the active barrier schedule; callers report observations and
/// periodically ask it to re-evaluate.
class AdaptiveBarrierController {
 public:
  explicit AdaptiveBarrierController(const TopologyProfile& initial,
                                     ControllerOptions options = {});

  const Schedule& schedule() const;
  const std::vector<bool>& awaited_stages() const;
  double predicted_cost() const { return predicted_cost_; }
  std::size_t retune_count() const { return retunes_; }
  DriftMonitor& monitor() { return monitor_; }

  /// Re-evaluate against the drifted profile. Tunes a candidate only if
  /// drift exceeds the threshold; applies it only if amortizable over
  /// `expected_remaining_calls`. Returns whether the schedule changed.
  bool reevaluate(double expected_remaining_calls);

  /// The decision of the last reevaluate() that got past the drift gate.
  const RetuneDecision& last_decision() const { return last_decision_; }

 private:
  ControllerOptions options_;
  DriftMonitor monitor_;
  TuneResult active_;
  double predicted_cost_ = 0.0;
  std::size_t retunes_ = 0;
  RetuneDecision last_decision_;
  /// Reused cost-kernel state: periodic reevaluate() calls re-price the
  /// active schedule without allocating.
  CompiledSchedule compiled_;
  PredictWorkspace workspace_;
};

}  // namespace optibar
