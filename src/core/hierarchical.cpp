#include "core/hierarchical.hpp"

#include <sstream>
#include <utility>

#include "barrier/compiled_schedule.hpp"
#include "barrier/validate.hpp"
#include "core/cluster_tree.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {
namespace {

/// Densify-and-fall-back cap for schedule validation: the static
/// deadlock-freedom proof walks dense stage matrices — its knowledge
/// recurrence is cubic in P — so it only runs at debug scale, where the
/// parity and preset tests live. The blocked plan is a barrier by
/// construction (validated class arrivals + leader barrier composed per
/// §VII-B); above the cap the correctness evidence is those tests plus
/// netsim completion at 10k (bench_scale, the perf smoke test). Raising
/// this re-introduces super-quadratic tune cost below the cap.
constexpr std::size_t kValidateDenseCap = 512;

HierarchicalTuneResult dense_fallback(const TopologyProfile& profile,
                                      const EngineOptions& options,
                                      ClusterDecomposition decomposition,
                                      std::string reason, ThreadPool* pool) {
  HierarchicalTuneResult result;
  result.used_dense_fallback = true;
  result.fallback_reason = std::move(reason);
  result.decomposition = std::move(decomposition);
  result.dense.emplace(tune_barrier(profile, options, pool));
  result.predicted_cost = result.dense->predicted_cost();
  return result;
}

/// The core assembly: one composed arrival per cluster class, one over
/// the leaders, glued into a BlockedSchedule and priced on the tiled
/// profile. `tiled` must have >= 2 clusters.
HierarchicalTuneResult tune_blocked(const TiledProfile& tiled,
                                    ClusterDecomposition decomposition,
                                    const EngineOptions& options,
                                    ThreadPool* pool) {
  HierarchicalTuneResult result;
  result.decomposition = std::move(decomposition);
  result.tiled = tiled;

  const std::size_t k = tiled.class_count();
  std::vector<Schedule> class_arrivals;
  std::vector<std::size_t> rep_local(k);
  class_arrivals.reserve(k);
  result.class_choices.reserve(k);
  result.class_algorithms.reserve(k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    // Tiles of a measured machine carry sampling asymmetry like any
    // profile; the clustering metric needs symmetry, so normalise the
    // t x t tile (a no-op for generated/symmetrized inputs).
    const TopologyProfile tile = tiled.class_tile(kk).symmetrized();
    const ClusterNode tree = build_cluster_tree(tile, options.clustering, pool);
    // Local rank that speaks for every cluster of this class at the
    // inter-cluster stage: the tile tree's representative.
    rep_local[kk] = tree.representative();
    ArrivalComposition arrival = compose_arrival(
        tile, tree, options.composition, /*treat_root_as_global=*/false, pool);
    result.class_algorithms.push_back(arrival.root_algorithm);
    result.class_choices.push_back(std::move(arrival.choices));
    class_arrivals.push_back(std::move(arrival.arrival));
  }

  const std::size_t c = tiled.cluster_count();
  std::vector<std::size_t> leader_ranks(c);
  for (std::size_t ci = 0; ci < c; ++ci) {
    leader_ranks[ci] = tiled.clusters()[ci][rep_local[tiled.class_of()[ci]]];
  }
  const TopologyProfile leaders =
      tiled.restrict_to(leader_ranks).symmetrized();
  const ClusterNode leader_tree =
      build_cluster_tree(leaders, options.clustering, pool);
  ArrivalComposition leader_arrival =
      compose_arrival(leaders, leader_tree, options.composition,
                      /*treat_root_as_global=*/true, pool);
  result.leader_algorithm = leader_arrival.root_algorithm;
  result.leader_self_completing = leader_arrival.root_self_completing;
  result.leader_choices = std::move(leader_arrival.choices);

  result.blocked = BlockedSchedule(
      tiled.clusters(), tiled.class_of(), std::move(class_arrivals),
      std::move(leader_arrival.arrival), std::move(leader_ranks),
      result.leader_self_completing);

  // Small plans still get the static deadlock-freedom proof the dense
  // tuner applies; at 10k the densification it needs is off the table.
  if (result.blocked.ranks() <= kValidateDenseCap) {
    const ValidationResult validation = validate_schedule(StoredSchedule{
        result.blocked.to_dense(),
        result.blocked.awaited_stages()});
    OPTIBAR_ASSERT(validation.ok(), "hierarchically tuned schedule failed "
                                    "validation: "
                                        << validation.describe());
  }

  CompiledSchedule compiled;
  compile_blocked(result.blocked, tiled, compiled);
  PredictOptions predict_options;
  predict_options.awaited_stages = result.blocked.awaited_stages();
  PredictWorkspace workspace;
  result.predicted_cost = predicted_time(compiled, predict_options, workspace);
  return result;
}

/// Decomposition view of a profile that is already tiled (no detection
/// ran; the threshold is unknown).
ClusterDecomposition decomposition_of(const TiledProfile& tiled) {
  ClusterDecomposition decomp;
  decomp.assignment = tiled.assignment();
  decomp.clusters = tiled.clusters();
  decomp.class_of = tiled.class_of();
  decomp.num_classes = tiled.class_count();
  decomp.tolerance = tiled.tolerance();
  return decomp;
}

}  // namespace

std::string HierarchicalTuneResult::describe() const {
  std::ostringstream os;
  if (used_dense_fallback) {
    os << "dense fallback: " << fallback_reason << "\n";
    if (dense) {
      os << dense->barrier().describe();
    }
    return os.str();
  }
  os << decomposition.cluster_count() << " clusters in "
     << decomposition.num_classes << " classes";
  if (decomposition.threshold > 0.0) {
    os << " (cut at " << decomposition.threshold << " s)";
  }
  os << "\n";
  for (std::size_t kk = 0; kk < class_algorithms.size(); ++kk) {
    std::size_t instances = 0;
    for (std::size_t cls : decomposition.class_of) {
      instances += cls == kk ? 1 : 0;
    }
    os << "  class " << kk << ": " << instances << " x "
       << tiled.class_tile(kk).ranks() << " ranks, "
       << class_algorithms[kk] << "\n";
  }
  os << "  leaders: " << blocked.cluster_count() << " ranks, "
     << leader_algorithm << (leader_self_completing ? " (self-completing)" : "")
     << "\n";
  os << "  " << blocked.stage_count() << " stages, "
     << blocked.total_signals() << " signals, predicted " << predicted_cost
     << " s\n";
  return os.str();
}

HierarchicalTuneResult tune_hierarchical(const TopologyProfile& profile,
                                         const EngineOptions& options,
                                         const DetectOptions& detection) {
  std::optional<ThreadPool> local_pool;
  if (options.resolved_threads() > 1) {
    local_pool.emplace(options.resolved_threads());
  }
  return tune_hierarchical(profile, options, detection,
                           local_pool ? &*local_pool : nullptr);
}

HierarchicalTuneResult tune_hierarchical(const TopologyProfile& profile,
                                         const EngineOptions& options,
                                         const DetectOptions& detection,
                                         ThreadPool* pool) {
  options.validate();
  OPTIBAR_REQUIRE(profile.ranks() > 0, "empty profile");
  const TopologyProfile symmetric = profile.symmetrized();
  ClusterDecomposition decomp = detect_logical_clusters(symmetric, detection);
  if (decomp.single_cluster()) {
    return dense_fallback(profile, options, std::move(decomp),
                          "machine has a single logical cluster", pool);
  }
  TiledProfile tiled;
  try {
    tiled = TiledProfile::from_dense(symmetric, decomp);
  } catch (const Error& error) {
    return dense_fallback(profile, options, std::move(decomp),
                          std::string("profile is not block-structured: ") +
                              error.what(),
                          pool);
  }
  return tune_blocked(tiled, std::move(decomp), options, pool);
}

HierarchicalTuneResult tune_hierarchical(const TiledProfile& tiled,
                                         const EngineOptions& options) {
  std::optional<ThreadPool> local_pool;
  if (options.resolved_threads() > 1) {
    local_pool.emplace(options.resolved_threads());
  }
  return tune_hierarchical(tiled, options, local_pool ? &*local_pool : nullptr);
}

HierarchicalTuneResult tune_hierarchical(const TiledProfile& tiled,
                                         const EngineOptions& options,
                                         ThreadPool* pool) {
  options.validate();
  OPTIBAR_REQUIRE(tiled.ranks() > 0, "empty profile");
  if (tiled.cluster_count() < 2) {
    // A one-cluster tiled profile IS its tile; densify (guarded by the
    // dense cap inside to_dense) and run the flat pipeline.
    return dense_fallback(tiled.to_dense(), options, decomposition_of(tiled),
                          "tiled profile has a single cluster", pool);
  }
  return tune_blocked(tiled, decomposition_of(tiled), options, pool);
}

}  // namespace optibar
