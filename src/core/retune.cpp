#include "core/retune.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "barrier/cost_model.hpp"
#include "util/error.hpp"

namespace optibar {

namespace {

/// Rebuild a profile from replacement O/L matrices, carrying the G and
/// R matrices of `like` along — observations must never silently strip
/// the bandwidth or one-sided data from a v2/v3 profile.
TopologyProfile with_core_matrices(const TopologyProfile& like,
                                   Matrix<double> overhead,
                                   Matrix<double> latency) {
  TopologyProfile out =
      like.has_bandwidth()
          ? TopologyProfile(std::move(overhead), std::move(latency),
                            like.bandwidth())
          : TopologyProfile(std::move(overhead), std::move(latency));
  if (like.has_rma_latency()) {
    out.set_rma_latency(like.rma_latency());
  }
  return out;
}

/// Boundary guard shared by every observe_* entry point: a NaN or Inf
/// observation would poison the whole EWMA window (every later fold
/// keeps a (1-alpha) share of it), so it is rejected up front.
void require_observable(double seconds) {
  OPTIBAR_REQUIRE(std::isfinite(seconds),
                  "non-finite observation " << seconds);
  OPTIBAR_REQUIRE(seconds >= 0.0, "negative observation");
}

}  // namespace

DriftMonitor::DriftMonitor(TopologyProfile baseline, double alpha)
    : baseline_(baseline), current_(std::move(baseline)), alpha_(alpha) {
  OPTIBAR_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0,
                  "EWMA alpha must be in (0,1], got " << alpha_);
}

void DriftMonitor::observe_overhead(std::size_t i, std::size_t j,
                                    double seconds) {
  OPTIBAR_REQUIRE(i < current_.ranks() && j < current_.ranks(),
                  "rank out of range");
  require_observable(seconds);
  Matrix<double> o = current_.overhead();
  o(i, j) = (1.0 - alpha_) * o(i, j) + alpha_ * seconds;
  if (i != j) {
    o(j, i) = (1.0 - alpha_) * o(j, i) + alpha_ * seconds;
  }
  current_ = with_core_matrices(current_, std::move(o), current_.latency());
  ++observations_;
}

void DriftMonitor::observe_latency(std::size_t i, std::size_t j,
                                   double seconds) {
  OPTIBAR_REQUIRE(i < current_.ranks() && j < current_.ranks(),
                  "rank out of range");
  OPTIBAR_REQUIRE(i != j, "latency observation needs distinct ranks");
  require_observable(seconds);
  Matrix<double> l = current_.latency();
  l(i, j) = (1.0 - alpha_) * l(i, j) + alpha_ * seconds;
  l(j, i) = (1.0 - alpha_) * l(j, i) + alpha_ * seconds;
  current_ = with_core_matrices(current_, current_.overhead(), std::move(l));
  ++observations_;
}

void DriftMonitor::observe_rma_latency(std::size_t i, std::size_t j,
                                       double seconds) {
  OPTIBAR_REQUIRE(i < current_.ranks() && j < current_.ranks(),
                  "rank out of range");
  OPTIBAR_REQUIRE(i != j, "one-sided observation needs distinct ranks");
  OPTIBAR_REQUIRE(current_.has_rma_latency(),
                  "profile carries no one-sided latency matrix");
  require_observable(seconds);
  Matrix<double> r = current_.rma_latency();
  r(i, j) = (1.0 - alpha_) * r(i, j) + alpha_ * seconds;
  r(j, i) = (1.0 - alpha_) * r(j, i) + alpha_ * seconds;
  current_.set_rma_latency(std::move(r));
  ++observations_;
}

double DriftMonitor::max_drift() const {
  double worst = 0.0;
  auto scan = [&worst](const Matrix<double>& now, const Matrix<double>& base) {
    for (std::size_t i = 0; i < now.rows(); ++i) {
      for (std::size_t j = 0; j < now.cols(); ++j) {
        const double reference = std::abs(base(i, j));
        if (reference == 0.0) {
          continue;
        }
        worst = std::max(worst, std::abs(now(i, j) - base(i, j)) / reference);
      }
    }
  };
  scan(current_.overhead(), baseline_.overhead());
  scan(current_.latency(), baseline_.latency());
  if (current_.has_rma_latency() && baseline_.has_rma_latency()) {
    scan(current_.rma_latency(), baseline_.rma_latency());
  }
  return worst;
}

void DriftMonitor::rebaseline() { baseline_ = current_; }

RetuneDecision evaluate_retune(double current_cost_seconds,
                               double candidate_cost_seconds,
                               double retune_overhead_seconds,
                               double expected_remaining_calls) {
  OPTIBAR_REQUIRE(retune_overhead_seconds >= 0.0, "negative overhead");
  OPTIBAR_REQUIRE(expected_remaining_calls >= 0.0, "negative call estimate");
  RetuneDecision decision;
  decision.gain_per_call = current_cost_seconds - candidate_cost_seconds;
  if (decision.gain_per_call <= 0.0) {
    decision.break_even_calls = std::numeric_limits<double>::infinity();
    return decision;  // candidate is not better: never re-tune
  }
  decision.break_even_calls =
      retune_overhead_seconds / decision.gain_per_call;
  decision.retune = expected_remaining_calls > decision.break_even_calls;
  return decision;
}

AdaptiveBarrierController::AdaptiveBarrierController(
    const TopologyProfile& initial, ControllerOptions options)
    : options_(std::move(options)),
      monitor_(initial, options_.alpha),
      active_(tune_barrier(initial, options_.tuning)) {
  predicted_cost_ = active_.predicted_cost();
}

const Schedule& AdaptiveBarrierController::schedule() const {
  return active_.schedule();
}

const std::vector<bool>& AdaptiveBarrierController::awaited_stages() const {
  return active_.barrier().awaited_stages;
}

bool AdaptiveBarrierController::reevaluate(double expected_remaining_calls) {
  if (monitor_.max_drift() < options_.drift_threshold) {
    return false;
  }

  // Tune against the drifted view, timing the work so the measured
  // overhead enters the amortization rule when none was configured.
  const auto start = std::chrono::steady_clock::now();
  TuneResult candidate = tune_barrier(monitor_.current(), options_.tuning);
  const double measured_overhead =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double overhead = options_.retune_overhead > 0.0
                              ? options_.retune_overhead
                              : measured_overhead;

  // Both costs priced on the same (drifted, symmetrized) profile.
  PredictOptions active_options;
  active_options.awaited_stages = active_.barrier().awaited_stages;
  compiled_.compile(active_.schedule(), candidate.profile());
  const double current_cost =
      predicted_time(compiled_, active_options, workspace_);

  last_decision_ = evaluate_retune(current_cost, candidate.predicted_cost(),
                                   overhead, expected_remaining_calls);
  if (!last_decision_.retune) {
    return false;
  }
  active_ = std::move(candidate);
  predicted_cost_ = active_.predicted_cost();
  ++retunes_;
  monitor_.rebaseline();
  return true;
}

}  // namespace optibar
