// Exhaustive barrier search (the oracle the greedy method approximates).
//
// Section VII-B observes that, because an empty stage carries a small
// fixed penalty, the optimal algorithm has a bounded stage count, so one
// could "potentially search the entire space of admissible matrix
// sequences for the best solution", but dismisses doing so as "quite
// computationally demanding". We implement that search for tiny rank
// counts as a test oracle and ablation reference: with branch-and-bound
// on the Eq. 1 cost it is exact, and tests verify that the greedy
// composition is never better than the oracle and quantify the gap.
//
// Complexity is O(2^(P(P-1)))^stages; callers are required to keep
// P <= 4 and stages <= 3 unless they explicitly raise the caps.
#pragma once

#include <cstddef>

#include "barrier/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct SearchOptions {
  /// Maximum stages explored.
  std::size_t max_stages = 3;
  /// Safety caps; raise knowingly.
  std::size_t max_ranks = 4;
  /// Upper bound on explored stage-prefixes (0 = unlimited).
  std::size_t node_budget = 50'000'000;
};

struct SearchResult {
  Schedule best{1};
  double cost = 0.0;
  /// Stage-prefixes explored (diagnostics).
  std::size_t nodes_explored = 0;
};

/// Exhaustive minimum-predicted-cost barrier for the profile.
SearchResult exhaustive_search(const TopologyProfile& profile,
                               const SearchOptions& options = {});

}  // namespace optibar
