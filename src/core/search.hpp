// Exhaustive barrier search (the oracle the greedy method approximates).
//
// Section VII-B observes that, because an empty stage carries a small
// fixed penalty, the optimal algorithm has a bounded stage count, so one
// could "potentially search the entire space of admissible matrix
// sequences for the best solution", but dismisses doing so as "quite
// computationally demanding". We implement that search for tiny rank
// counts as a test oracle and ablation reference: with branch-and-bound
// on the Eq. 1 cost it is exact, and tests verify that the greedy
// composition is never better than the oracle and quantify the gap.
//
// Complexity is O(2^(P(P-1)))^stages; callers are required to keep
// P <= 4 and stages <= 3 unless they explicitly raise the caps.
#pragma once

#include <cstddef>

#include "barrier/schedule.hpp"
#include "core/engine_options.hpp"  // SearchOptions lives there now
#include "topology/profile.hpp"

namespace optibar {

struct SearchResult {
  Schedule best{1};
  double cost = 0.0;
  /// Stage-prefixes explored (diagnostics). Approximate when a node
  /// budget binds a parallel search.
  std::size_t nodes_explored = 0;
};

/// Exhaustive minimum-predicted-cost barrier for the profile. With
/// threads > 1 the first-stage subtrees are explored in parallel
/// against a shared atomic incumbent bound: the minimum cost found is
/// exact either way; among schedules of *exactly* equal cost the
/// parallel search may return a different (equally optimal) one.
SearchResult exhaustive_search(const TopologyProfile& profile,
                               const SearchOptions& options = {},
                               std::size_t threads = 1);

/// EngineOptions form: uses options.search and options.threads.
SearchResult exhaustive_search(const TopologyProfile& profile,
                               const EngineOptions& options);

}  // namespace optibar
