// Plan health lifecycle for the self-healing plan service.
//
// PR 4's quarantine was open-loop: a plan that stalled past the
// threshold was demoted to the dissemination fallback *permanently*,
// even though the resilience layer already produces the StallReport
// and measured-latency evidence needed to diagnose and repair it.
// The service closes the loop with a per-entry state machine:
//
//     healthy --failure--> suspect --threshold--> quarantined
//        ^                                            |
//        |                                      (repair job)
//        |                                            v
//     probation <--promotion (beats fallback)--- retuning
//        |                                            |
//        +--failure--> quarantined again       N failed repairs
//                                                     v
//                                                  degraded (terminal)
//
// Quarantined and retuning entries serve the safe fallback while the
// background worker repairs the tuned plan; probation serves the
// repaired plan but demotes again on the first failure. After
// ServiceOptions::max_repair_attempts failed repairs the entry is
// permanently degraded and the fallback is final.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace optibar {

/// Lifecycle state of one cached plan (see the diagram above).
enum class PlanState : std::uint8_t {
  kHealthy = 0,     ///< serving the tuned plan, no open evidence
  kSuspect = 1,     ///< tuned plan served, failures below the threshold
  kQuarantined = 2, ///< fallback served; repair pending (or disabled)
  kRetuning = 3,    ///< fallback served; repair worker active
  kProbation = 4,   ///< repaired plan served, awaiting success reports
  kDegraded = 5,    ///< terminal: repairs exhausted, fallback forever
};

/// Stable lower-case name ("healthy", "quarantined", ...) — also the
/// plan-store serialization token.
const char* to_string(PlanState state);

/// Inverse of to_string(); throws optibar::Error on an unknown name.
PlanState plan_state_from_string(const std::string& name);

/// True when the state serves the fallback instead of the tuned plan.
inline bool serves_fallback(PlanState state) {
  return state == PlanState::kQuarantined || state == PlanState::kRetuning ||
         state == PlanState::kDegraded;
}

/// Read-only snapshot of one entry's health record
/// (BarrierLibrary::plan_health).
struct PlanHealthView {
  PlanState state = PlanState::kHealthy;
  std::size_t failures = 0;         ///< stall reports recorded so far
  std::size_t repair_attempts = 0;  ///< background repairs started
  std::size_t probation_left = 0;   ///< successes still needed to heal
  std::uint64_t generation = 0;     ///< bumped on every (re)build/promotion
  double observed_drift = 0.0;      ///< DriftMonitor::max_drift, 0 if none
  std::string reason;               ///< last quarantine/degradation reason
};

}  // namespace optibar
