#include "core/cluster_tree.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

std::size_t ClusterNode::height() const {
  std::size_t h = 0;
  for (const ClusterNode& child : children) {
    h = std::max(h, child.height() + 1);
  }
  return h;
}

std::size_t ClusterNode::tree_size() const {
  std::size_t n = 1;
  for (const ClusterNode& child : children) {
    n += child.tree_size();
  }
  return n;
}

namespace {

ClusterNode build_node(const TopologyProfile& profile,
                       std::vector<std::size_t> ranks,
                       const ClusterTreeOptions& options, std::size_t depth,
                       ThreadPool* pool) {
  ClusterNode node;
  node.ranks = std::move(ranks);
  if (node.ranks.size() <= 1 || depth >= options.max_depth) {
    return node;
  }

  const std::vector<std::size_t>& members = node.ranks;
  const auto clusters = sss_cluster(
      members.size(),
      [&](std::size_t a, std::size_t b) {
        return profile.distance(members[a], members[b]);
      },
      options.sss);

  // No split, or a degenerate all-singleton split: leaf.
  if (clusters.size() <= 1 || clusters.size() == members.size()) {
    return node;
  }

  std::vector<std::vector<std::size_t>> child_rank_sets;
  child_rank_sets.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    std::vector<std::size_t> child_ranks;
    child_ranks.reserve(cluster.size());
    for (std::size_t local : cluster) {
      child_ranks.push_back(members[local]);
    }
    child_rank_sets.push_back(std::move(child_ranks));
  }

  node.children.resize(child_rank_sets.size());
  const bool parallel = pool != nullptr && pool->width() > 1 &&
                        child_rank_sets.size() > 1 && members.size() >= 8;
  if (parallel) {
    // Child subtrees are independent; build into index-owned slots so
    // the assembled tree is identical to the serial one.
    pool->parallel_for(child_rank_sets.size(), [&](std::size_t i) {
      node.children[i] = build_node(profile, std::move(child_rank_sets[i]),
                                    options, depth + 1, pool);
    });
  } else {
    for (std::size_t i = 0; i < child_rank_sets.size(); ++i) {
      node.children[i] = build_node(profile, std::move(child_rank_sets[i]),
                                    options, depth + 1, pool);
    }
  }
  return node;
}

void describe_node(const ClusterNode& node, std::size_t depth,
                   std::ostringstream& os) {
  os << std::string(2 * depth, ' ')
     << (node.is_leaf() ? "leaf" : "cluster") << " [";
  for (std::size_t i = 0; i < node.ranks.size(); ++i) {
    os << (i ? " " : "") << node.ranks[i];
  }
  os << "] rep=" << node.representative() << '\n';
  for (const ClusterNode& child : node.children) {
    describe_node(child, depth + 1, os);
  }
}

}  // namespace

ClusterNode build_cluster_tree(const TopologyProfile& profile,
                               const ClusterTreeOptions& options,
                               ThreadPool* pool) {
  OPTIBAR_REQUIRE(profile.ranks() > 0, "empty profile");
  OPTIBAR_REQUIRE(profile.is_symmetric(1e-6),
                  "cluster tree needs a symmetric profile; call "
                  "TopologyProfile::symmetrized() first");
  std::vector<std::size_t> all(profile.ranks());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return build_node(profile, std::move(all), options, 0, pool);
}

std::string describe_tree(const ClusterNode& root) {
  std::ostringstream os;
  describe_node(root, 0, os);
  return os.str();
}

}  // namespace optibar
