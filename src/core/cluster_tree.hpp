// Hierarchical cluster tree over a topology profile (Section VII-A).
//
// "The outcome of the clustering process is a representation of the
//  topology as a tree, with more closely connected clusters towards the
//  leaves. The topology of our test systems result in a two-level
//  hierarchy, but the tree construction works with any number of
//  levels."
//
// Construction applies SSS recursively on each cluster's restricted
// distance submatrix. Recursion stops when a cluster is a singleton,
// when SSS cannot split it (one cluster), or when a split degenerates to
// all-singletons — the latter means the remaining distances carry no
// exploitable hierarchy at this sparseness (on the paper's machines,
// everything below node level looks like this at alpha = 0.35).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sss.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;

struct ClusterNode {
  /// Global ranks of this cluster; the representative (local barrier
  /// root) first, then ascending.
  std::vector<std::size_t> ranks;
  /// Child clusters; empty for leaves.
  std::vector<ClusterNode> children;

  bool is_leaf() const { return children.empty(); }
  std::size_t representative() const { return ranks.front(); }

  /// Number of levels below (a leaf has height 0).
  std::size_t height() const;
  /// Total node count including this one.
  std::size_t tree_size() const;
};

struct ClusterTreeOptions {
  SssOptions sss;
  /// Hard recursion cap; the tree of a sane profile is shallow, this
  /// guards against adversarial metrics.
  std::size_t max_depth = 16;
};

/// Build the cluster tree of all ranks of the profile. The profile must
/// be symmetric (SSS needs a metric); symmetrize first if estimated
/// matrices carry sampling asymmetry. A pool (optional) parallelizes
/// the independent child-cluster recursions; the tree is identical at
/// any width.
ClusterNode build_cluster_tree(const TopologyProfile& profile,
                               const ClusterTreeOptions& options = {},
                               ThreadPool* pool = nullptr);

/// Multi-line rendering, one line per tree node with indentation.
std::string describe_tree(const ClusterNode& root);

}  // namespace optibar
