// EngineOptions: the one knob struct of the tuning engine.
//
// Earlier revisions threaded four nested option structs
// (ClusterTreeOptions, ComposeOptions, SearchOptions, TuneOptions)
// through every layer; callers had to know which stage owned which
// knob. EngineOptions consolidates them behind a single validated
// top-level struct that the tuner, the exhaustive-search oracle, the
// runtime BarrierLibrary and the CLI all accept. The stage structs
// remain as members so stage-level code keeps its narrow view.
//
// `threads` is the engine's execution width: the greedy composer
// evaluates per-stage candidates and independent subtrees in parallel,
// the exhaustive search explores first-stage subtrees in parallel
// against a shared incumbent bound, and BarrierLibrary::tune_all fans
// whole subsets out across the pool. Width 1 (the default) is the
// bit-for-bit serial engine; any width produces identical tuned
// schedules (reductions are performed in deterministic index order).
#pragma once

#include <cstddef>
#include <string>

#include "core/cluster_tree.hpp"
#include "core/composer.hpp"

namespace optibar {

/// Knobs of the exhaustive branch-and-bound oracle (see core/search.hpp).
struct SearchOptions {
  /// Maximum stages explored.
  std::size_t max_stages = 3;
  /// Safety caps; raise knowingly.
  std::size_t max_ranks = 4;
  /// Upper bound on explored stage-prefixes (0 = unlimited).
  std::size_t node_budget = 50'000'000;
};

struct EngineOptions {
  ClusterTreeOptions clustering;
  ComposeOptions composition;
  SearchOptions search;

  /// Name of the function emitted by TuneResult::generated_code().
  std::string function_name = "optibar_barrier";

  /// Execution width of the tuning engine, including the calling
  /// thread: 1 = serial, 0 = one per hardware thread.
  std::size_t threads = 1;

  /// Shard count of BarrierLibrary's concurrent plan cache; must be a
  /// power of two. More shards = less writer contention when many
  /// distinct subsets tune at once.
  std::size_t cache_shards = 16;

  /// Number of reported execution failures after which BarrierLibrary
  /// quarantines a tuned plan and serves a conservative dissemination
  /// fallback instead (see BarrierLibrary::report_execution_failure).
  /// Must be >= 1.
  std::size_t quarantine_threshold = 3;

  /// Throws optibar::Error when any knob is out of its valid range.
  /// Every engine entry point validates on the way in, so a bad knob
  /// fails loudly at the boundary instead of deep inside a stage.
  void validate() const;

  /// `threads` with 0 resolved to the hardware thread count (>= 1).
  std::size_t resolved_threads() const;
};

}  // namespace optibar
