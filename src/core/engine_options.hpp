// EngineOptions: the one knob struct of the tuning engine.
//
// Earlier revisions threaded four nested option structs
// (ClusterTreeOptions, ComposeOptions, SearchOptions, TuneOptions)
// through every layer; callers had to know which stage owned which
// knob. EngineOptions consolidates them behind a single validated
// top-level struct that the tuner, the exhaustive-search oracle, the
// runtime BarrierLibrary and the CLI all accept. The stage structs
// remain as members so stage-level code keeps its narrow view.
//
// `threads` is the engine's execution width: the greedy composer
// evaluates per-stage candidates and independent subtrees in parallel,
// the exhaustive search explores first-stage subtrees in parallel
// against a shared incumbent bound, and BarrierLibrary::tune_all fans
// whole subsets out across the pool. Width 1 (the default) is the
// bit-for-bit serial engine; any width produces identical tuned
// schedules (reductions are performed in deterministic index order).
#pragma once

#include <cstddef>
#include <string>

#include "core/cluster_tree.hpp"
#include "core/composer.hpp"

namespace optibar {

/// Knobs of the exhaustive branch-and-bound oracle (see core/search.hpp).
struct SearchOptions {
  /// Maximum stages explored.
  std::size_t max_stages = 3;
  /// Safety caps; raise knowingly.
  std::size_t max_ranks = 4;
  /// Upper bound on explored stage-prefixes (0 = unlimited).
  std::size_t node_budget = 50'000'000;
};

/// Knobs of the self-healing plan service (core/library.hpp): the
/// background repair loop that consumes StallReport / measured-latency
/// feedback, the probation rule, and the bounded cache. All repair
/// machinery is off by default (`auto_repair == false`): a library
/// without it behaves exactly like the PR 4 batch cache — quarantine
/// is terminal and nothing runs in the background.
struct ServiceOptions {
  /// Enable the background repair worker: quarantined plans are
  /// re-tuned from stall evidence and promoted back through probation.
  bool auto_repair = false;

  /// Capacity of the repair-job queue. A quarantine that finds the
  /// queue full stays quarantined (counted in ServiceStats); the next
  /// failure report retries the enqueue.
  std::size_t repair_queue_capacity = 64;

  /// Background repairs attempted per plan before the entry enters the
  /// permanent `degraded` terminal state. Must be >= 1.
  std::size_t max_repair_attempts = 3;

  /// Base backoff before repair attempt k re-runs after a failed
  /// promotion: base * 2^k seconds. 0 retries immediately (tests).
  double repair_backoff_seconds = 0.05;

  /// Successful executions a repaired plan must report before probation
  /// ends and the entry returns to `healthy`. Must be >= 1.
  std::size_t probation_successes = 2;

  /// Multiplier folded into the O/L (and R) estimates of every edge a
  /// StallReport implicates: the repair tunes against a profile where
  /// the blamed links look this many times slower. Must be >= 1.
  double evidence_inflation = 2.0;

  /// report_measured_latency drift (DriftMonitor::max_drift) at which a
  /// healthy plan is re-tuned in the background. In (0, +inf).
  double drift_retune_threshold = 0.20;

  /// EWMA weight of each measured-latency observation, in (0, 1].
  double drift_alpha = 0.25;

  /// Amortization horizon for drift-triggered retunes: the candidate
  /// replaces the active plan only when evaluate_retune() says the
  /// re-tuning cost pays for itself within this many barrier calls.
  double expected_calls = 1e6;

  /// Netsim repetitions of the promotion gate (repaired plan vs the
  /// dissemination fallback). Must be >= 1.
  std::size_t promote_sim_reps = 3;

  /// Upper bound on cached plan slots; 0 = unbounded. When bounded, the
  /// cheapest-to-retune entries (smallest subsets) are evicted first,
  /// and entries under repair are never evicted. NOTE: with a bound,
  /// entry references returned by subset_plan() are only guaranteed
  /// alive until the entry is evicted, not for the library's lifetime.
  std::size_t max_cache_entries = 0;

  void validate() const;
};

struct EngineOptions {
  ClusterTreeOptions clustering;
  ComposeOptions composition;
  SearchOptions search;
  ServiceOptions service;

  /// Name of the function emitted by TuneResult::generated_code().
  std::string function_name = "optibar_barrier";

  /// Execution width of the tuning engine, including the calling
  /// thread: 1 = serial, 0 = one per hardware thread.
  std::size_t threads = 1;

  /// Shard count of BarrierLibrary's concurrent plan cache; must be a
  /// power of two. More shards = less writer contention when many
  /// distinct subsets tune at once.
  std::size_t cache_shards = 16;

  /// Number of reported execution failures after which BarrierLibrary
  /// quarantines a tuned plan and serves a conservative dissemination
  /// fallback instead (see BarrierLibrary::report_execution_failure).
  /// Must be >= 1.
  std::size_t quarantine_threshold = 3;

  /// Throws optibar::Error when any knob is out of its valid range.
  /// Every engine entry point validates on the way in, so a bad knob
  /// fails loudly at the boundary instead of deep inside a stage.
  void validate() const;

  /// `threads` with 0 resolved to the hardware thread count (>= 1).
  std::size_t resolved_threads() const;
};

}  // namespace optibar
