// Barrier code generation (Section VII-C).
//
// "we measure the performance of the optimized barrier algorithms after
//  the use of a code generator, which takes a matrix sequence as input,
//  and emits a specific barrier implemented by a hard-coded sequence of
//  synchronous point-to-point sends."
//
// generate_cpp emits a self-contained C++ translation unit with one
// function template per barrier: a per-rank switch whose cases contain
// the hard-coded issend/irecv/wait_all sequence, with no-op stages
// eliminated per rank ("the generated test programs specialize the logic
// of the general model, eliminate no-op transmission steps, etc."). The
// emitted code is parameterised over a point-to-point policy type so it
// compiles against simmpi or any MPI-like layer.
//
// CompiledBarrier is the in-process twin: the same specialisation
// (flattened per-rank op lists, empty stages skipped) executed directly,
// without going through source text.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"
#include "simmpi/runtime.hpp"

namespace optibar {

struct GeneratedCode {
  std::string function_name;
  /// Complete C++ source of a header-style translation unit.
  std::string source;
};

/// Emit specialised C++ for the schedule. `function_name` must be a
/// valid C++ identifier. The schedule must be a valid barrier.
GeneratedCode generate_cpp(const Schedule& schedule,
                           const std::string& function_name);

/// Emit a specialised C function over real MPI — the artifact the
/// paper's generator produced: a hard-coded sequence of zero-length
/// synchronized point-to-point sends (`MPI_Issend` / `MPI_Irecv` /
/// `MPI_Waitall`), one switch case per rank, no-op stages eliminated.
/// The function signature is
///   void <name>(MPI_Comm comm, int episode);
/// `episode` offsets tags so back-to-back invocations cannot
/// cross-match. The communicator's size must equal the schedule's rank
/// count (checked with MPI_Comm_size at run time).
GeneratedCode generate_mpi_c(const Schedule& schedule,
                             const std::string& function_name);

/// Specialised in-process executor: per-rank flattened op lists with
/// per-rank empty stages removed (stage tags preserved so it
/// inter-operates with the general interpreter's tag space).
class CompiledBarrier {
 public:
  explicit CompiledBarrier(const Schedule& schedule);

  std::size_t ranks() const { return per_rank_.size(); }

  /// Total ops this rank executes (diagnostics; excludes skipped stages).
  std::size_t op_count(std::size_t rank) const;

  void execute(simmpi::RankContext& ctx, int episode = 0) const;

 private:
  struct StageOps {
    int stage_tag = 0;
    std::vector<std::size_t> send_to;
    std::vector<std::size_t> recv_from;
  };

  std::size_t stages_ = 0;
  std::vector<std::vector<StageOps>> per_rank_;
};

}  // namespace optibar
