#include "core/plan_health.hpp"

#include "util/error.hpp"

namespace optibar {

const char* to_string(PlanState state) {
  switch (state) {
    case PlanState::kHealthy:
      return "healthy";
    case PlanState::kSuspect:
      return "suspect";
    case PlanState::kQuarantined:
      return "quarantined";
    case PlanState::kRetuning:
      return "retuning";
    case PlanState::kProbation:
      return "probation";
    case PlanState::kDegraded:
      return "degraded";
  }
  return "healthy";
}

PlanState plan_state_from_string(const std::string& name) {
  for (PlanState state :
       {PlanState::kHealthy, PlanState::kSuspect, PlanState::kQuarantined,
        PlanState::kRetuning, PlanState::kProbation, PlanState::kDegraded}) {
    if (name == to_string(state)) {
      return state;
    }
  }
  OPTIBAR_FAIL("unknown plan state '" << name << "'");
}

}  // namespace optibar
