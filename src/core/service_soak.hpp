// Mixed-operation soak driver for the plan service.
//
// One shared implementation drives the 1M-op soak from three surfaces —
// the `optibar library --soak` CLI command, the BM_ServiceMixedSoak
// benchmark, and the (smaller) tsan-labelled service test — so the
// workload they exercise is identical: concurrent clients hammering one
// BarrierLibrary with a plan-request-heavy mix of lookups, measured
// latencies, success reports, and occasional injected stalls, while the
// background repair worker runs. Per-operation wall time is recorded and
// summarized as p50/p99.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/library.hpp"

namespace optibar {

/// Knobs of one soak run. The mix is expressed per 10000 operations and
/// must sum to at most 10000; the remainder falls through to plan
/// lookups. Defaults: 85% lookups, 14% latency reports, ~1% success
/// reports, 0.02% injected stalls — a long-running service's day, with
/// enough stalls to keep the repair loop busy without drowning the
/// request path.
struct SoakOptions {
  std::size_t operations = 100000;
  std::size_t clients = 4;     ///< concurrent client threads
  std::size_t subsets = 8;     ///< distinct subsets in play
  std::size_t max_subset = 8;  ///< largest subset size drawn
  std::uint64_t seed = 1;
  std::size_t latency_per_10k = 1400;  ///< report_measured_latency share
  std::size_t success_per_10k = 98;    ///< report_execution_success share
  std::size_t stall_per_10k = 2;       ///< report_execution_failure share
};

/// What happened, for the benchmark counters / CLI report.
struct SoakResult {
  std::size_t operations = 0;
  double elapsed_seconds = 0.0;
  double ops_per_second = 0.0;
  std::uint64_t p50_ns = 0;  ///< median per-operation wall time
  std::uint64_t p99_ns = 0;
  ServiceStats stats;            ///< library counters after the run
  std::size_t cache_size = 0;    ///< plans cached after the run
  std::size_t dropped_reports = 0;  ///< feedback calls the library refused

  std::string describe() const;
};

/// Run the mixed soak against `library`. Pre-warms the drawn subsets
/// (tune_all), then times the mixed phase, then drains the repair
/// queue. Deterministic operation sequence for a fixed seed; the
/// measured times are wall clock, so only the counters are reproducible.
SoakResult run_service_soak(BarrierLibrary& library, const SoakOptions& options);

}  // namespace optibar
