#include "core/engine_options.hpp"

#include <cctype>
#include <thread>

#include "util/error.hpp"

namespace optibar {

namespace {

bool is_identifier(const std::string& name) {
  if (name.empty() || (std::isdigit(static_cast<unsigned char>(name[0])))) {
    return false;
  }
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';  // allow qualified names like ns::barrier
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ServiceOptions::validate() const {
  OPTIBAR_REQUIRE(repair_queue_capacity >= 1,
                  "repair_queue_capacity must be >= 1");
  OPTIBAR_REQUIRE(max_repair_attempts >= 1, "max_repair_attempts must be >= 1");
  OPTIBAR_REQUIRE(repair_backoff_seconds >= 0.0,
                  "repair_backoff_seconds must be >= 0");
  OPTIBAR_REQUIRE(probation_successes >= 1, "probation_successes must be >= 1");
  OPTIBAR_REQUIRE(evidence_inflation >= 1.0,
                  "evidence_inflation must be >= 1, got " << evidence_inflation);
  OPTIBAR_REQUIRE(drift_retune_threshold > 0.0,
                  "drift_retune_threshold must be > 0");
  OPTIBAR_REQUIRE(drift_alpha > 0.0 && drift_alpha <= 1.0,
                  "drift_alpha must be in (0, 1], got " << drift_alpha);
  OPTIBAR_REQUIRE(expected_calls >= 0.0, "expected_calls must be >= 0");
  OPTIBAR_REQUIRE(promote_sim_reps >= 1, "promote_sim_reps must be >= 1");
}

void EngineOptions::validate() const {
  service.validate();
  OPTIBAR_REQUIRE(clustering.sss.sparseness > 0.0 &&
                      clustering.sss.sparseness <= 1.0,
                  "sparseness must be in (0, 1], got "
                      << clustering.sss.sparseness);
  OPTIBAR_REQUIRE(clustering.max_depth >= 1, "max_depth must be >= 1");
  OPTIBAR_REQUIRE(!composition.algorithms.empty(),
                  "no candidate algorithms configured");
  OPTIBAR_REQUIRE(search.max_stages >= 1, "search.max_stages must be >= 1");
  OPTIBAR_REQUIRE(search.max_ranks >= 1, "search.max_ranks must be >= 1");
  OPTIBAR_REQUIRE(is_identifier(function_name),
                  "function_name '" << function_name
                                    << "' is not a valid identifier");
  OPTIBAR_REQUIRE(threads <= 1024,
                  "threads = " << threads << " exceeds the sanity cap (1024)");
  OPTIBAR_REQUIRE(cache_shards >= 1 && cache_shards <= 4096 &&
                      (cache_shards & (cache_shards - 1)) == 0,
                  "cache_shards must be a power of two in [1, 4096], got "
                      << cache_shards);
  OPTIBAR_REQUIRE(quarantine_threshold >= 1,
                  "quarantine_threshold must be >= 1");
}

std::size_t EngineOptions::resolved_threads() const {
  if (threads != 0) {
    return threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace optibar
