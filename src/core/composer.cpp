#include "core/composer.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <sstream>
#include <utility>

#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/validate.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

namespace {

/// Greedy pick of the cheapest component algorithm for one local
/// barrier among `participants` (global ranks).
struct Pick {
  const ComponentAlgorithm* algorithm = nullptr;
  Schedule local_arrival{1};
  double scored_cost = 0.0;
};

Pick pick_algorithm(const TopologyProfile& profile,
                    const std::vector<std::size_t>& participants, bool is_root,
                    const std::vector<ComponentAlgorithm>& algorithms,
                    ThreadPool* pool) {
  OPTIBAR_REQUIRE(!algorithms.empty(), "no candidate algorithms");
  const TopologyProfile local_profile = profile.restrict_to(participants);
  auto evaluate = [&](const ComponentAlgorithm& algo) {
    Schedule arrival = algo.arrival(participants.size());
    // Compiled evaluation with per-thread reused storage: candidate
    // scoring is the composer's inner loop, and pool workers each keep
    // their own warm kernel state.
    thread_local CompiledSchedule compiled;
    thread_local PredictWorkspace workspace;
    compiled.compile(arrival, local_profile);
    const double cost = predicted_time(compiled, {}, workspace);
    // Arrival x 2 approximates the matching departure, except a
    // self-completing algorithm at the root needs no departure at all.
    const double multiplier = (is_root && algo.self_completing) ? 1.0 : 2.0;
    return std::make_pair(multiplier * cost, std::move(arrival));
  };

  std::vector<std::pair<double, Schedule>> scored;
  const bool parallel = pool != nullptr && pool->width() > 1 &&
                        algorithms.size() > 1 && participants.size() >= 8;
  if (parallel) {
    scored.assign(algorithms.size(),
                  {std::numeric_limits<double>::infinity(), Schedule(1)});
    pool->parallel_for(algorithms.size(), [&](std::size_t i) {
      scored[i] = evaluate(algorithms[i]);
    });
  } else {
    scored.reserve(algorithms.size());
    for (const ComponentAlgorithm& algo : algorithms) {
      scored.push_back(evaluate(algo));
    }
  }

  // Reduce in candidate order with a strict '<' — the first minimum
  // wins, exactly as the serial loop picked, at any pool width.
  Pick best;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    if (scored[i].first < best_score) {
      best_score = scored[i].first;
      best = Pick{&algorithms[i], std::move(scored[i].second), best_score};
    }
  }
  return best;
}

struct ArrivalBuild {
  Schedule arrival;          ///< global-rank arrival schedule
  std::size_t level_start;   ///< stage at which this node's own block begins
};

struct CandidateSets {
  const std::vector<ComponentAlgorithm>* sub_levels;
  const std::vector<ComponentAlgorithm>* root;
};

ArrivalBuild build_arrival(const TopologyProfile& profile,
                           const ClusterNode& node, bool is_root,
                           std::size_t depth, const CandidateSets& candidates,
                           std::vector<LevelChoice>& choices,
                           ThreadPool* pool) {
  const std::size_t p = profile.ranks();
  ArrivalBuild out{Schedule(p), 0};
  if (node.ranks.size() == 1) {
    return out;  // a lone rank has nothing to collect
  }

  // Children first, all starting at stage 0 (merge-early); the local
  // block over the representatives starts after the longest child.
  std::vector<std::size_t> participants;
  if (node.is_leaf()) {
    participants = node.ranks;
  } else {
    // Child subtrees are independent: build them in parallel into
    // index-owned slots, then merge serially in child order so the
    // choice list and the embedded schedule match the serial engine
    // exactly.
    struct ChildBuild {
      ArrivalBuild build{Schedule(1), 0};
      std::vector<LevelChoice> choices;
    };
    std::vector<ChildBuild> subs(node.children.size());
    const bool parallel = pool != nullptr && pool->width() > 1 &&
                          node.children.size() > 1 && node.ranks.size() >= 8;
    auto build_child = [&](std::size_t i) {
      subs[i].build =
          build_arrival(profile, node.children[i], /*is_root=*/false,
                        depth + 1, candidates, subs[i].choices, pool);
    };
    if (parallel) {
      pool->parallel_for(node.children.size(), build_child);
    } else {
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        build_child(i);
      }
    }

    std::size_t longest_child = 0;
    std::vector<std::size_t> identity(p);
    for (std::size_t i = 0; i < p; ++i) {
      identity[i] = i;
    }
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      participants.push_back(node.children[i].representative());
      longest_child =
          std::max(longest_child, subs[i].build.arrival.stage_count());
      embed_schedule(out.arrival, subs[i].build.arrival, identity, 0);
      choices.insert(choices.end(),
                     std::make_move_iterator(subs[i].choices.begin()),
                     std::make_move_iterator(subs[i].choices.end()));
    }
    out.level_start = longest_child;
  }

  const Pick pick = pick_algorithm(
      profile, participants, is_root,
      is_root ? *candidates.root : *candidates.sub_levels, pool);
  choices.push_back(LevelChoice{depth, participants, pick.algorithm->name,
                                pick.scored_cost});
  embed_schedule(out.arrival, pick.local_arrival, participants,
                 out.level_start);
  return out;
}

/// Sub-schedule of stages [0, count).
Schedule stage_prefix(const Schedule& schedule, std::size_t count) {
  Schedule out(schedule.ranks());
  for (std::size_t s = 0; s < count; ++s) {
    out.append_stage(schedule.stage(s));
  }
  return out;
}

}  // namespace

std::string ComposedBarrier::describe() const {
  std::ostringstream os;
  os << "hybrid barrier: " << schedule.stage_count() << " stages ("
     << arrival_stages << " arrival), root algorithm " << root_algorithm
     << (root_self_completing ? " (self-completing, no root departure)" : "")
     << '\n';
  for (const LevelChoice& choice : choices) {
    os << std::string(2 * choice.depth, ' ') << "depth " << choice.depth
       << ": " << choice.algorithm << " over {";
    for (std::size_t i = 0; i < choice.participants.size(); ++i) {
      os << (i ? " " : "") << choice.participants[i];
    }
    os << "} score " << choice.scored_cost << '\n';
  }
  return os.str();
}

ArrivalComposition compose_arrival(const TopologyProfile& profile,
                                   const ClusterNode& tree,
                                   const ComposeOptions& options,
                                   bool treat_root_as_global,
                                   ThreadPool* pool) {
  const std::size_t p = profile.ranks();
  OPTIBAR_REQUIRE(tree.ranks.size() == p,
                  "cluster tree covers " << tree.ranks.size() << " ranks, "
                                         << "profile has " << p);
  ArrivalComposition out;
  if (p == 1) {
    out.arrival = Schedule(1);
    out.root_algorithm = "trivial";
    return out;
  }
  const CandidateSets candidates{
      &options.algorithms, options.root_algorithms.empty()
                               ? &options.algorithms
                               : &options.root_algorithms};
  ArrivalBuild build =
      build_arrival(profile, tree, /*is_root=*/treat_root_as_global,
                    /*depth=*/0, candidates, out.choices, pool);
  OPTIBAR_ASSERT(!out.choices.empty(), "composition produced no choices");
  const LevelChoice& root_choice = out.choices.back();
  OPTIBAR_ASSERT(root_choice.depth == 0, "root choice not at depth 0");
  const std::vector<ComponentAlgorithm>& root_set =
      treat_root_as_global ? *candidates.root : *candidates.sub_levels;
  const auto root_algo =
      std::find_if(root_set.begin(), root_set.end(),
                   [&](const ComponentAlgorithm& a) {
                     return a.name == root_choice.algorithm;
                   });
  OPTIBAR_ASSERT(root_algo != root_set.end(), "root algorithm lost");
  out.root_algorithm = root_algo->name;
  out.root_self_completing = root_algo->self_completing;
  out.root_level_start = build.level_start;
  out.arrival = std::move(build.arrival);
  return out;
}

ComposedBarrier compose_barrier(const TopologyProfile& profile,
                                const ClusterNode& tree,
                                const ComposeOptions& options,
                                ThreadPool* pool) {
  const std::size_t p = profile.ranks();
  OPTIBAR_REQUIRE(tree.ranks.size() == p,
                  "cluster tree covers " << tree.ranks.size() << " ranks, "
                                         << "profile has " << p);

  ComposedBarrier out;
  if (p == 1) {
    out.schedule = Schedule(1);
    out.root_algorithm = "trivial";
    return out;
  }

  const CandidateSets candidates{
      &options.algorithms, options.root_algorithms.empty()
                               ? &options.algorithms
                               : &options.root_algorithms};
  std::vector<LevelChoice> choices;
  ArrivalBuild build = build_arrival(profile, tree, /*is_root=*/true,
                                     /*depth=*/0, candidates, choices, pool);

  // The root-level decision is recorded last by the post-order recursion.
  OPTIBAR_ASSERT(!choices.empty(), "composition produced no level choices");
  const LevelChoice& root_choice = choices.back();
  OPTIBAR_ASSERT(root_choice.depth == 0, "root choice not at depth 0");
  const std::vector<ComponentAlgorithm>& root_set = *candidates.root;
  const auto root_algo = std::find_if(
      root_set.begin(), root_set.end(),
      [&](const ComponentAlgorithm& a) { return a.name == root_choice.algorithm; });
  OPTIBAR_ASSERT(root_algo != root_set.end(), "root algorithm lost");

  out.root_algorithm = root_algo->name;
  out.root_self_completing = root_algo->self_completing;
  // Report choices root-first for readability.
  std::reverse(choices.begin(), choices.end());
  out.choices = std::move(choices);

  // Departure: reversed transposes of the arrival. When the root block
  // is self-completing it is omitted from the transposition.
  const Schedule& arrival = build.arrival;
  const Schedule departure_base =
      out.root_self_completing ? stage_prefix(arrival, build.level_start)
                               : arrival;
  const Schedule departure = departure_base.transposed_reversed();

  Schedule full = arrival.concatenated(departure);
  // Compact no-op stages; track which surviving stages are departures.
  std::vector<bool> awaited;
  Schedule compacted(p);
  for (std::size_t s = 0; s < full.stage_count(); ++s) {
    if (full.stage(s).all_zero()) {
      continue;
    }
    compacted.append_stage(full.stage(s));
    // A departure stage is awaited — priced with Eq. 2 and replayable
    // with eager blocking sends — only when its wait digraph is
    // acyclic. Transposing a self-completing sub-level block (e.g. a
    // node-level dissemination) yields cyclic departure stages; those
    // stay correct under post-all-then-wait-all but must not carry the
    // awaited contract, so they are demoted to Eq. 1 here. This keeps
    // "awaited implies acyclic" a composer invariant the validator can
    // enforce on every stored plan.
    awaited.push_back(s >= arrival.stage_count() &&
                      !stage_has_cycle(full.stage(s)));
  }
  out.arrival_stages = 0;
  for (std::size_t s = 0; s < awaited.size(); ++s) {
    if (!awaited[s]) {
      out.arrival_stages = s + 1;
    }
  }
  out.schedule = std::move(compacted);
  out.awaited_stages = std::move(awaited);

  OPTIBAR_ASSERT(out.schedule.is_barrier(),
                 "composed schedule fails the Eq. 3 barrier check");
  return out;
}

ComposedBarrier compose_barrier_searched(const TopologyProfile& profile,
                                         const ClusterNode& tree,
                                         const ComposeOptions& options,
                                         ThreadPool* pool) {
  OPTIBAR_REQUIRE(!options.algorithms.empty(), "no candidate algorithms");
  auto priced = [&](const ComposedBarrier& barrier) {
    thread_local CompiledSchedule compiled;
    thread_local PredictWorkspace workspace;
    thread_local PredictOptions predict_options;
    predict_options.awaited_stages = barrier.awaited_stages;
    compiled.compile(barrier.schedule, profile);
    return predicted_time(compiled, predict_options, workspace);
  };

  ComposedBarrier best = compose_barrier(profile, tree, options, pool);
  double best_cost = priced(best);

  const std::vector<ComponentAlgorithm>& root_set =
      options.root_algorithms.empty() ? options.algorithms
                                      : options.root_algorithms;
  // The |A|^2 uniform assignments are independent; evaluate them all
  // (in parallel when a pool is given), then reduce in the serial
  // loop's (sub, root) order with a strict '<' so ties resolve the
  // same at any width.
  std::vector<ComposeOptions> combos;
  combos.reserve(options.algorithms.size() * root_set.size());
  for (const ComponentAlgorithm& sub : options.algorithms) {
    for (const ComponentAlgorithm& root : root_set) {
      ComposeOptions fixed;
      fixed.algorithms = {sub};
      fixed.root_algorithms = {root};
      combos.push_back(std::move(fixed));
    }
  }
  std::vector<std::pair<double, ComposedBarrier>> evaluated(
      combos.size(),
      {std::numeric_limits<double>::infinity(), ComposedBarrier{}});
  auto evaluate = [&](std::size_t i) {
    // Candidates compose serially: the combos themselves are the
    // parallel grain here.
    ComposedBarrier candidate = compose_barrier(profile, tree, combos[i]);
    evaluated[i].first = priced(candidate);
    evaluated[i].second = std::move(candidate);
  };
  if (pool != nullptr && pool->width() > 1 && combos.size() > 1) {
    pool->parallel_for(combos.size(), evaluate);
  } else {
    for (std::size_t i = 0; i < combos.size(); ++i) {
      evaluate(i);
    }
  }
  for (auto& [cost, candidate] : evaluated) {
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace optibar
