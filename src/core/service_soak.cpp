#include "core/service_soak.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace optibar {

namespace {

/// splitmix64: tiny, seedable, and good enough to shape a workload.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Draw `count` distinct subsets of 2..max_subset ranks, deterministic
/// in `seed`. Order inside a subset matters (it defines local ids), so
/// distinctness is by the ordered vector.
std::vector<std::vector<std::size_t>> draw_subsets(std::size_t ranks,
                                                   std::size_t count,
                                                   std::size_t max_subset,
                                                   std::uint64_t seed) {
  const std::size_t cap = std::min(max_subset, ranks);
  OPTIBAR_REQUIRE(cap >= 2, "soak needs subsets of at least 2 ranks");
  std::set<std::vector<std::size_t>> seen;
  std::vector<std::vector<std::size_t>> subsets;
  std::uint64_t state = seed * 0x2545f4914f6cdd1dull + 0x9e3779b9ull;
  // Far more draws than subsets are possible; bail out after a bounded
  // number of rejections rather than looping forever on tiny profiles.
  for (std::size_t attempt = 0;
       subsets.size() < count && attempt < count * 64 + 256; ++attempt) {
    const std::size_t size = 2 + splitmix64(state) % (cap - 1);
    std::vector<std::size_t> subset;
    std::set<std::size_t> used;
    while (subset.size() < size) {
      const std::size_t rank = splitmix64(state) % ranks;
      if (used.insert(rank).second) {
        subset.push_back(rank);
      }
    }
    if (seen.insert(subset).second) {
      subsets.push_back(std::move(subset));
    }
  }
  OPTIBAR_REQUIRE(!subsets.empty(), "could not draw any soak subset");
  return subsets;
}

}  // namespace

std::string SoakResult::describe() const {
  std::ostringstream os;
  os << "soak: " << operations << " ops in " << elapsed_seconds << " s ("
     << static_cast<std::size_t>(ops_per_second) << " ops/s), p50 " << p50_ns
     << " ns, p99 " << p99_ns << " ns\n";
  os << "  plans cached " << cache_size << ", tunes " << stats.tunes
     << ", quarantines " << stats.quarantines << ", repairs started "
     << stats.repairs_started << " (promoted " << stats.repairs_promoted
     << ", failed " << stats.repairs_failed << ", warm-start hits "
     << stats.warm_start_hits << ")\n";
  os << "  reports: " << stats.latency_reports << " latency, "
     << stats.success_reports << " success, " << stats.stall_reports
     << " stall (" << dropped_reports << " dropped), evictions "
     << stats.evictions << "\n";
  return os.str();
}

SoakResult run_service_soak(BarrierLibrary& library,
                            const SoakOptions& options) {
  OPTIBAR_REQUIRE(options.operations > 0, "soak needs at least one operation");
  OPTIBAR_REQUIRE(options.clients > 0, "soak needs at least one client");
  OPTIBAR_REQUIRE(options.latency_per_10k + options.success_per_10k +
                          options.stall_per_10k <=
                      10000,
                  "soak mix exceeds 10000 per 10k operations");

  const std::vector<std::vector<std::size_t>> subsets = draw_subsets(
      library.ranks(), options.subsets, options.max_subset, options.seed);
  library.tune_all(subsets);  // pre-warm: the soak times the steady state

  // Baseline pairwise latencies per subset, so measured-latency reports
  // jitter around the truth (±5%) instead of tripping the drift gate on
  // every call.
  std::vector<TopologyProfile> local;
  local.reserve(subsets.size());
  for (const auto& subset : subsets) {
    local.push_back(library.profile().restrict_to(subset));
  }

  const std::size_t per_client = options.operations / options.clients;
  const std::size_t total_ops = per_client * options.clients;
  std::vector<std::vector<std::uint64_t>> client_ns(options.clients);
  std::atomic<std::size_t> dropped{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto client = [&](std::size_t id) {
    try {
      std::uint64_t state =
          options.seed * 0x9e3779b97f4a7c15ull + id * 0xda942042e4dd58b5ull;
      std::vector<std::uint64_t>& ns = client_ns[id];
      ns.reserve(per_client);
      for (std::size_t op = 0; op < per_client; ++op) {
        const std::size_t subset_index =
            splitmix64(state) % subsets.size();
        const std::vector<std::size_t>& subset = subsets[subset_index];
        const std::size_t mix = splitmix64(state) % 10000;
        const auto start = std::chrono::steady_clock::now();
        try {
          if (mix < options.stall_per_10k) {
            library.report_execution_failure(subset, "soak-injected stall");
          } else if (mix < options.stall_per_10k + options.success_per_10k) {
            library.report_execution_success(subset);
          } else if (mix < options.stall_per_10k + options.success_per_10k +
                               options.latency_per_10k) {
            const std::size_t n = subset.size();
            const std::size_t i = splitmix64(state) % n;
            std::size_t j = splitmix64(state) % n;
            if (j == i) {
              j = (j + 1) % n;
            }
            const double jitter =
                0.95 + 0.1 * (static_cast<double>(splitmix64(state) % 1000) /
                              1000.0);
            library.report_measured_latency(
                subset, i, j, local[subset_index].l(i, j) * jitter);
          } else {
            library.subset_plan(subset);
          }
        } catch (const Error&) {
          // A feedback call can legitimately be refused (e.g. the slot
          // was evicted between the draw and the report); count it, the
          // soak itself goes on.
          dropped.fetch_add(1, std::memory_order_relaxed);
        }
        const auto stop = std::chrono::steady_clock::now();
        ns.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  };

  const auto soak_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (std::size_t id = 0; id < options.clients; ++id) {
    threads.emplace_back(client, id);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    soak_start)
          .count();
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  library.wait_for_repairs();

  std::vector<std::uint64_t> all;
  all.reserve(total_ops);
  for (const auto& ns : client_ns) {
    all.insert(all.end(), ns.begin(), ns.end());
  }
  SoakResult result;
  result.operations = total_ops;
  result.elapsed_seconds = elapsed;
  result.ops_per_second =
      elapsed > 0.0 ? static_cast<double>(total_ops) / elapsed : 0.0;
  if (!all.empty()) {
    const auto percentile = [&](double q) {
      const std::size_t k = std::min(
          all.size() - 1,
          static_cast<std::size_t>(
              q * static_cast<double>(all.size() - 1)));
      std::nth_element(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(k),
                       all.end());
      return all[k];
    };
    result.p50_ns = percentile(0.50);
    result.p99_ns = percentile(0.99);
  }
  result.stats = library.stats();
  result.cache_size = library.cache_size();
  result.dropped_reports = dropped.load(std::memory_order_relaxed);
  return result;
}

}  // namespace optibar
