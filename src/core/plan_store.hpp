// Warm-restartable plan store (docs/FORMATS.md, "Plan store v1").
//
// A long-running plan service accumulates tuned schedules *and* hard-won
// health knowledge: which plans are quarantined, how many repairs they
// burned, what the operator was told. Losing that on restart means
// re-serving a plan the previous process already proved bad. The store
// persists both, as versioned text in the same dialect as the schedule
// format: a header, then one record per cached subset embedding the
// tuned schedule via schedule_io. Fallback entries are *not* stored —
// they are deterministic (a dissemination barrier over the subset) and
// are rebuilt on load.
//
// The parser follows the hardened-loader rules (docs/FORMATS.md): every
// read is failure-checked, counts are capped before allocation, and a
// truncated or malformed store throws IoError — never crashes, never
// returns a half-loaded library.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "barrier/schedule_io.hpp"
#include "core/plan_health.hpp"

namespace optibar {

/// One persisted cache entry: the tuned plan plus its health record.
/// `state` is the lifecycle state at save time, except that kRetuning is
/// saved as kQuarantined (the in-flight repair dies with the process;
/// the restarted service re-enqueues it).
struct PlanStoreRecord {
  std::vector<std::size_t> subset;  ///< global ranks, order = local ids
  PlanState state = PlanState::kHealthy;
  std::size_t failures = 0;
  std::size_t repair_attempts = 0;
  std::size_t probation_left = 0;
  double predicted_cost = 0.0;  ///< of the tuned plan, seconds
  std::string reason;           ///< last quarantine reason, may be empty
  StoredSchedule plan;          ///< the tuned schedule (never the fallback)
};

/// Serialize `records` for a `ranks`-rank profile. Records should be
/// sorted by subset for deterministic output; save_plan_store sorts a
/// copy itself so callers cannot get this wrong.
void save_plan_store(std::ostream& os, std::size_t ranks,
                     std::vector<PlanStoreRecord> records);

/// Parse a store written by save_plan_store. `expected_ranks` is the
/// rank count of the profile the store must match; a store saved
/// against a different machine is rejected (IoError), as is any
/// malformed, truncated, or out-of-range content.
std::vector<PlanStoreRecord> load_plan_store(std::istream& is,
                                             std::size_t expected_ranks);

/// File forms. save_plan_store_file writes to a temporary sibling and
/// renames it into place, so a crash mid-save never corrupts an
/// existing store.
void save_plan_store_file(const std::string& path, std::size_t ranks,
                          std::vector<PlanStoreRecord> records);
std::vector<PlanStoreRecord> load_plan_store_file(const std::string& path,
                                                  std::size_t expected_ranks);

}  // namespace optibar
