// Sparse Spatial Selection (SSS) clustering (Section VII-A).
//
// The paper discovers closely-coupled rank subsets with SSS clustering
// (Brisaboa et al.), chosen over k-means because it only requires a
// metric space, not Cartesian coordinates: "This method only requires
// that clustered points reside in a metric space... The use of this
// method is our reason for requiring symmetry of the topological
// profile."
//
// The algorithm: the first point is a center ("with rank 0 as a member
// of the first cluster"); each subsequent point becomes a new center iff
// its distance to every existing center exceeds alpha * diameter (the
// paper uses alpha = 0.35); otherwise it joins its nearest center's
// cluster. Deterministic given point order — no seeding, unlike k-means.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace optibar {

/// Symmetric distance oracle over point indices [0, n).
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

struct SssOptions {
  /// Sparseness parameter: new-center threshold as a fraction of the
  /// diameter (paper: "a sparseness parameter of 35% of diameter").
  double sparseness = 0.35;
};

/// Cluster point indices 0..n-1. Each returned cluster lists its member
/// indices in ascending order with the center first; clusters appear in
/// center-discovery order (so point 0's cluster is first).
std::vector<std::vector<std::size_t>> sss_cluster(
    std::size_t n, const DistanceFn& distance, const SssOptions& options = {});

}  // namespace optibar
