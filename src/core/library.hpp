// Runtime barrier library (Section VIII).
//
// "Another appealing direction would be to employ this method in a
//  library implementation which would benefit unmodified application
//  codes. ... Implementing a solution which stores the profile in a
//  manner which can be efficiently indexed at run-time would alleviate
//  this problem."
//
// BarrierLibrary is that solution: it owns a machine profile (typically
// loaded from the file the profiling step wrote) and serves tuned,
// compiled barriers on demand — for the full rank set or for any
// sub-communicator (rank subset) — caching each tuned result so repeated
// barrier construction is a hash lookup, not a re-run of the tuner.
//
// Designed for concurrent traffic: the plan cache is sharded, each
// shard behind a std::shared_mutex, so repeated subset_plan() hits are
// read-locked lookups and *distinct* subsets tune genuinely in
// parallel. A subset is tuned exactly once — concurrent requests for
// the same subset block on a per-entry slot, not on the whole cache.
// With EngineOptions::threads > 1 the library also owns a
// work-stealing pool: single tunes parallelize internally, and
// tune_all() fans whole subsets out across it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "barrier/schedule_io.hpp"
#include "core/codegen.hpp"
#include "core/tuner.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;

/// One cached tuning result for a rank subset. Rank indices inside the
/// compiled barrier are *local* (0..k-1) in the order of the subset the
/// caller passed; the caller owns the local<->global translation, as a
/// sub-communicator implementation would.
struct LibraryEntry {
  std::vector<std::size_t> global_ranks;
  StoredSchedule stored;
  CompiledBarrier compiled{Schedule(1)};
  double predicted_cost = 0.0;
  /// True when this entry is a quarantine fallback (a known-safe
  /// dissemination barrier) rather than the tuned plan — see
  /// report_execution_failure().
  bool degraded = false;
  std::string degradation_reason;
};

class BarrierLibrary {
 public:
  /// Takes the machine profile measured by the profiling step.
  explicit BarrierLibrary(TopologyProfile profile, EngineOptions options = {});
  ~BarrierLibrary();

  BarrierLibrary(BarrierLibrary&&) noexcept;
  BarrierLibrary& operator=(BarrierLibrary&&) = delete;

  /// Load the profile from disk (the Figure 1 decoupling).
  static BarrierLibrary from_profile_file(const std::string& path,
                                          EngineOptions options = {});

  std::size_t ranks() const { return profile_.ranks(); }
  const TopologyProfile& profile() const { return profile_; }
  const EngineOptions& options() const { return options_; }

  /// Tuned barrier over all ranks. First call tunes; later calls hit the
  /// cache.
  const LibraryEntry& full_barrier();

  /// Tuned barrier over a rank subset (a sub-communicator). The subset
  /// must be non-empty, in-range and duplicate-free; order defines the
  /// local rank numbering. Returned references stay valid for the
  /// library's lifetime.
  const LibraryEntry& subset_plan(const std::vector<std::size_t>& ranks);

  /// Historic name for subset_plan(); kept for existing callers.
  const LibraryEntry& barrier_for(const std::vector<std::size_t>& ranks) {
    return subset_plan(ranks);
  }

  /// Batch form: tune every subset, fanning the not-yet-cached ones out
  /// across the pool (serial without one). Validates all subsets before
  /// tuning any. Results are positional; duplicate subsets yield the
  /// same entry pointer.
  std::vector<const LibraryEntry*> tune_all(
      const std::vector<std::vector<std::size_t>>& subsets);

  /// Number of distinct tuned subsets currently cached.
  std::size_t cache_size() const;

  /// Degraded-mode feedback path: callers that executed a served plan
  /// and watched it stall (e.g. a StallReport from the resilient
  /// executor) report the failure here. After
  /// EngineOptions::quarantine_threshold reports for the same subset the
  /// library quarantines the tuned plan and from then on serves a
  /// conservative dissemination fallback for that subset — tuned plans
  /// are an optimization, not a correctness dependency. Returns true
  /// when the subset is (now) served degraded. The subset must have
  /// been successfully tuned before (a plan was served for it).
  bool report_execution_failure(const std::vector<std::size_t>& ranks,
                                const std::string& reason);

  /// Failure reports recorded so far for a subset (0 when never tuned).
  std::size_t failure_count(const std::vector<std::size_t>& ranks);

  /// True when the subset's tuned plan has been quarantined.
  bool is_quarantined(const std::vector<std::size_t>& ranks);

 private:
  struct Slot;
  struct Shard;

  void validate_subset(const std::vector<std::size_t>& ranks) const;
  /// Get-or-create the cache slot of a subset (no tuning).
  Slot& slot_for(const std::vector<std::size_t>& ranks);
  /// Look up a subset's slot without creating one; null when absent.
  Slot* find_slot(const std::vector<std::size_t>& ranks);
  /// Blocking build: tune into the slot if nobody has, wait otherwise.
  const LibraryEntry& built_entry(Slot& slot,
                                  const std::vector<std::size_t>& ranks,
                                  ThreadPool* pool);
  void build_entry_locked(Slot& slot, const std::vector<std::size_t>& ranks,
                          ThreadPool* pool);

  TopologyProfile profile_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when resolved width is 1
  std::size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace optibar
