// Runtime barrier library (Section VIII).
//
// "Another appealing direction would be to employ this method in a
//  library implementation which would benefit unmodified application
//  codes. ... Implementing a solution which stores the profile in a
//  manner which can be efficiently indexed at run-time would alleviate
//  this problem."
//
// BarrierLibrary is that solution: it owns a machine profile (typically
// loaded from the file the profiling step wrote) and serves tuned,
// compiled barriers on demand — for the full rank set or for any
// sub-communicator (rank subset) — caching each tuned result so repeated
// barrier construction is a hash lookup, not a re-run of the tuner.
// Thread-safe: rank threads may request barriers concurrently.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "barrier/schedule_io.hpp"
#include "core/codegen.hpp"
#include "core/tuner.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// One cached tuning result for a rank subset. Rank indices inside the
/// compiled barrier are *local* (0..k-1) in the order of the subset the
/// caller passed; the caller owns the local<->global translation, as a
/// sub-communicator implementation would.
struct LibraryEntry {
  std::vector<std::size_t> global_ranks;
  StoredSchedule stored;
  CompiledBarrier compiled{Schedule(1)};
  double predicted_cost = 0.0;
};

class BarrierLibrary {
 public:
  /// Takes the machine profile measured by the profiling step.
  explicit BarrierLibrary(TopologyProfile profile, TuneOptions options = {});

  /// Load the profile from disk (the Figure 1 decoupling).
  static BarrierLibrary from_profile_file(const std::string& path,
                                          TuneOptions options = {});

  std::size_t ranks() const { return profile_.ranks(); }
  const TopologyProfile& profile() const { return profile_; }

  /// Tuned barrier over all ranks. First call tunes; later calls hit the
  /// cache.
  const LibraryEntry& full_barrier();

  /// Tuned barrier over a rank subset (a sub-communicator). The subset
  /// must be non-empty, in-range and duplicate-free; order defines the
  /// local rank numbering.
  const LibraryEntry& barrier_for(const std::vector<std::size_t>& ranks);

  /// Number of distinct tuned subsets currently cached.
  std::size_t cache_size() const;

 private:
  TopologyProfile profile_;
  TuneOptions options_;
  mutable std::mutex mutex_;
  // Keyed by the subset in caller order (order defines local numbering,
  // so differently-ordered subsets are genuinely different barriers).
  std::map<std::vector<std::size_t>, std::unique_ptr<LibraryEntry>> cache_;
};

}  // namespace optibar
