// Self-healing runtime plan service (Section VIII).
//
// "Another appealing direction would be to employ this method in a
//  library implementation which would benefit unmodified application
//  codes. ... Implementing a solution which stores the profile in a
//  manner which can be efficiently indexed at run-time would alleviate
//  this problem."
//
// BarrierLibrary is that solution grown into a long-running service:
// it owns a machine profile, serves tuned compiled barriers on demand
// for the full rank set or any sub-communicator, and — unlike the
// earlier batch cache — keeps every served plan healthy over time.
//
// Concurrency: the plan cache is sharded, each shard behind a
// std::shared_mutex, so repeated subset_plan() hits are read-locked
// lookups and distinct subsets tune genuinely in parallel. Within a
// slot the served entry is published through one atomic pointer
// (release store / acquire load); entries are immutable once published
// and stay alive until the slot dies, so the hot read path takes no
// lock at all.
//
// Self-healing (see core/plan_health.hpp for the state machine): the
// resilience layer's StallReports and measured latencies feed
// report_execution_failure / report_measured_latency; past the
// quarantine threshold a plan is demoted to a dissemination fallback
// *while* a background worker repairs it — inflating the O/L (and R)
// estimates of the implicated edges, re-tuning with the prior schedule
// as a warm-start candidate (Estefanel & Mounié, "Fast Tuning of
// Intra-Cluster Collective Communications": reuse prior results to cut
// tuning cost), and promoting the repaired plan only after it beats
// the fallback under the netsim simulator. Repairs are capped and
// backed off; a plan whose repairs are exhausted is permanently
// degraded. The whole loop is opt-in via ServiceOptions::auto_repair.
//
// Warm restart: save_store()/load_store() persist plans *plus* their
// health records (docs/FORMATS.md, "Plan store v1"), so a restarted
// service resumes with quarantines and probations intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "barrier/schedule_io.hpp"
#include "core/codegen.hpp"
#include "core/plan_health.hpp"
#include "core/tuner.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;
struct PlanStoreRecord;

namespace simmpi {
struct StallReport;
}

/// One cached tuning result for a rank subset. Rank indices inside the
/// compiled barrier are *local* (0..k-1) in the order of the subset the
/// caller passed; the caller owns the local<->global translation, as a
/// sub-communicator implementation would. Entries are immutable once
/// published: a repair promotes a *new* entry (fresh generation) and
/// the old one stays valid for the slot's lifetime.
struct LibraryEntry {
  std::vector<std::size_t> global_ranks;
  StoredSchedule stored;
  CompiledBarrier compiled{Schedule(1)};
  double predicted_cost = 0.0;
  /// True when this entry is a quarantine fallback (a known-safe
  /// dissemination barrier) rather than the tuned plan — see
  /// report_execution_failure().
  bool degraded = false;
  std::string degradation_reason;
  /// Library-wide unique publication id; bumped for every entry built,
  /// so it keys external per-plan caches (the C API) unambiguously.
  std::uint64_t generation = 0;
};

/// Monotonic operation counters of the service, all since construction
/// (load_store does not replay history). Snapshot via stats().
struct ServiceStats {
  std::size_t plan_requests = 0;     ///< subset_plan / full_barrier calls
  std::size_t tunes = 0;             ///< cache misses that ran the tuner
  std::size_t stall_reports = 0;     ///< report_execution_failure calls
  std::size_t latency_reports = 0;   ///< accepted measured latencies
  std::size_t success_reports = 0;   ///< report_execution_success calls
  std::size_t quarantines = 0;       ///< healthy/suspect -> quarantined
  std::size_t repairs_started = 0;   ///< repair jobs the worker began
  std::size_t repairs_promoted = 0;  ///< repairs that beat the fallback
  std::size_t repairs_failed = 0;    ///< repairs that did not
  std::size_t repairs_rejected = 0;  ///< enqueues dropped: queue full
  std::size_t warm_start_hits = 0;   ///< prior schedule won the re-tune
  std::size_t drift_retunes = 0;     ///< drift-triggered promotions
  std::size_t permanent_degradations = 0;  ///< entries that hit kDegraded
  std::size_t evictions = 0;         ///< entries evicted by the cache bound
};

class BarrierLibrary {
 public:
  /// Takes the machine profile measured by the profiling step.
  explicit BarrierLibrary(TopologyProfile profile, EngineOptions options = {});
  ~BarrierLibrary();

  BarrierLibrary(BarrierLibrary&&) noexcept;
  BarrierLibrary& operator=(BarrierLibrary&&) = delete;

  /// Load the profile from disk (the Figure 1 decoupling).
  static BarrierLibrary from_profile_file(const std::string& path,
                                          EngineOptions options = {});

  std::size_t ranks() const { return profile_.ranks(); }
  const TopologyProfile& profile() const { return profile_; }
  const EngineOptions& options() const { return options_; }

  /// Tuned barrier over all ranks. First call tunes; later calls hit the
  /// cache.
  const LibraryEntry& full_barrier();

  /// Tuned barrier over a rank subset (a sub-communicator). The subset
  /// must be non-empty, in-range and duplicate-free; order defines the
  /// local rank numbering. Returned references stay valid for the
  /// library's lifetime (until eviction when
  /// ServiceOptions::max_cache_entries bounds the cache).
  const LibraryEntry& subset_plan(const std::vector<std::size_t>& ranks);

  /// Historic name for subset_plan(); kept for existing callers.
  const LibraryEntry& barrier_for(const std::vector<std::size_t>& ranks) {
    return subset_plan(ranks);
  }

  /// Batch form: tune every subset, fanning the not-yet-cached ones out
  /// across the pool (serial without one). Validates all subsets before
  /// tuning any. Results are positional; duplicate subsets yield the
  /// same entry pointer.
  std::vector<const LibraryEntry*> tune_all(
      const std::vector<std::vector<std::size_t>>& subsets);

  /// Number of distinct tuned subsets currently cached.
  std::size_t cache_size() const;

  /// Degraded-mode feedback path: callers that executed a served plan
  /// and watched it stall (e.g. a StallReport from the resilient
  /// executor) report the failure here. After
  /// EngineOptions::quarantine_threshold reports for the same subset the
  /// library quarantines the tuned plan and serves a conservative
  /// dissemination fallback for that subset — tuned plans are an
  /// optimization, not a correctness dependency. With
  /// ServiceOptions::auto_repair the quarantine also enqueues a
  /// background repair; a failure during probation re-quarantines and
  /// eventually degrades the plan permanently. Returns true when the
  /// subset is (now) served degraded. The subset must have been
  /// successfully tuned before (a plan was served for it).
  bool report_execution_failure(const std::vector<std::size_t>& ranks,
                                const std::string& reason);

  /// Structured form: extracts the implicated (src, dst) edges from the
  /// report's pending-edge set as repair evidence (local subset
  /// numbering, matching the report of a plan served for `ranks`) in
  /// addition to counting the failure.
  bool report_execution_failure(const std::vector<std::size_t>& ranks,
                                const simmpi::StallReport& report);

  /// Positive feedback: a served plan executed to completion. Advances
  /// probation toward `healthy` and clears suspect counts. No-op in
  /// quarantined/degraded states (the fallback working is expected).
  void report_execution_success(const std::vector<std::size_t>& ranks);

  /// Feed one measured pairwise latency (local subset indices, seconds)
  /// into the subset's drift monitor. Rejects non-finite or negative
  /// values, i == j, and out-of-range indices with an Error. With
  /// auto_repair, drift beyond ServiceOptions::drift_retune_threshold
  /// triggers a background re-tune gated by the amortization rule.
  void report_measured_latency(const std::vector<std::size_t>& ranks,
                               std::size_t src, std::size_t dst,
                               double seconds);

  /// Failure reports recorded so far for a subset (0 when never tuned).
  std::size_t failure_count(const std::vector<std::size_t>& ranks);

  /// True when the subset is currently served its fallback.
  bool is_quarantined(const std::vector<std::size_t>& ranks);

  /// Lifecycle state of a subset's plan. Throws when no plan was ever
  /// served for the subset.
  PlanState plan_state(const std::vector<std::size_t>& ranks);

  /// Full health record of a subset's plan (state, counters, drift).
  PlanHealthView plan_health(const std::vector<std::size_t>& ranks);

  /// Block until the repair queue is drained and no repair is running.
  /// Returns immediately when auto_repair is off.
  void wait_for_repairs();

  /// Snapshot of the service counters.
  ServiceStats stats() const;

  /// Persist every cached plan plus its health record to `path` in the
  /// plan-store v1 format (docs/FORMATS.md). The write goes to a
  /// temporary sibling first and is renamed into place, so a crash
  /// mid-save never corrupts an existing store. The serialization
  /// itself lives in core/plan_store.{hpp,cpp}.
  void save_store(const std::string& path);

  /// Warm restart: load a plan store written by save_store() into this
  /// (still empty) library. Health states are restored — quarantined
  /// entries rebuild their fallback and, with auto_repair, re-enqueue
  /// their repair. Malformed or truncated stores throw IoError.
  void load_store(const std::string& path);

 private:
  struct Slot;
  struct Shard;
  struct Service;
  struct RepairJob;

  void validate_subset(const std::vector<std::size_t>& ranks) const;
  /// Get-or-create the cache slot of a subset (no tuning).
  std::shared_ptr<Slot> slot_for(const std::vector<std::size_t>& ranks);
  /// Look up a subset's slot without creating one; null when absent.
  std::shared_ptr<Slot> find_slot(const std::vector<std::size_t>& ranks);
  /// As find_slot, but requires a slot that has served a plan.
  std::shared_ptr<Slot> served_slot(const std::vector<std::size_t>& ranks);
  /// Blocking build: tune into the slot if nobody has, wait otherwise.
  const LibraryEntry& built_entry(Slot& slot,
                                  const std::vector<std::size_t>& ranks,
                                  ThreadPool* pool);
  void build_entry_locked(Slot& slot, const std::vector<std::size_t>& ranks,
                          ThreadPool* pool);
  /// Shared failure-transition logic of both report overloads.
  bool record_failure(Slot& slot, const std::vector<std::size_t>& ranks,
                      const std::string& reason,
                      const std::vector<std::pair<std::size_t, std::size_t>>&
                          evidence);
  /// Demote to the fallback (building it if needed) under slot lock.
  void quarantine_locked(Slot& slot, const std::vector<std::size_t>& ranks,
                         const std::string& reason);
  /// Build and publish a fresh dissemination-fallback entry carrying
  /// `reason`; caller holds the slot lock.
  void publish_fallback_locked(Slot& slot,
                               const std::vector<std::size_t>& ranks,
                               const std::string& reason);
  /// Lazily create the slot's drift monitor (baseline: subset profile).
  void ensure_monitor_locked(Slot& slot,
                             const std::vector<std::size_t>& ranks);
  /// Queue a repair job if auto_repair allows; caller holds slot lock.
  void maybe_enqueue_repair_locked(const std::shared_ptr<Slot>& slot,
                                   const std::vector<std::size_t>& ranks,
                                   bool drift_only);
  /// Enforce ServiceOptions::max_cache_entries after an insert.
  void enforce_cache_bound(const std::vector<std::size_t>& keep);
  /// Insert one loaded store record as a cache slot (plan_store.cpp).
  void insert_record(const PlanStoreRecord& record);

  /// The background repair loop; static so the worker thread never
  /// touches a possibly-moved BarrierLibrary object — everything it
  /// needs lives in the heap-allocated Service.
  static void repair_worker(Service* service);
  static void run_repair(Service& service, RepairJob job);
  static void enqueue_locked(Service& service, RepairJob job);

  TopologyProfile profile_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when resolved width is 1
  std::size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
  /// Declared last: destroyed first, so the worker thread is joined
  /// while the pool and shards it may still reference are alive.
  std::unique_ptr<Service> service_;
};

}  // namespace optibar
