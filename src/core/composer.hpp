// Hierarchical barrier composition (Section VII-B).
//
// "The overall approach is to traverse the tree of clusters and evaluate
//  all three algorithms on the cluster level, greedily selecting the one
//  with the lowest predicted cost of its arrival phases. The next step
//  is to traverse the tree bottom-up, combining the local barriers on
//  the same level into an overall structure for complete arrival, before
//  inferring the departure phases by a reversed sequence of transpose
//  matrices."
//
// Details implemented exactly as described:
//   - greedy scores are arrival-phase predicted cost x 2, except a
//     self-completing algorithm (dissemination) evaluated at the *root*
//     level, which needs no departure and scores x 1;
//   - when local patterns of differing stage counts combine, shorter
//     sequences merge into the longer ones as early as possible (all
//     children start at stage 0; the parent-level pattern starts after
//     the longest child);
//   - the departure phase is the reversed sequence of transposed arrival
//     matrices, omitting the root level when the root algorithm is
//     self-completing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/schedule.hpp"
#include "core/cluster_tree.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;

struct ComposeOptions {
  /// Candidate component algorithms; defaults to the paper's three.
  std::vector<ComponentAlgorithm> algorithms = paper_algorithms();
  /// Candidates for the root level only; empty = use `algorithms`.
  /// Used by the global search below, occasionally useful directly
  /// (e.g. force dissemination across the top-level slow links).
  std::vector<ComponentAlgorithm> root_algorithms;
};

/// Record of one greedy decision, for reporting (Figure 10) and tests.
struct LevelChoice {
  std::size_t depth = 0;  ///< 0 = root level of the cluster tree
  /// Global ranks participating in this local barrier: a leaf cluster's
  /// members, or the representatives of an inner node's children.
  std::vector<std::size_t> participants;
  std::string algorithm;
  double scored_cost = 0.0;  ///< multiplier-adjusted predicted cost
};

struct ComposedBarrier {
  /// The complete hybrid barrier (arrival + departure), compacted.
  Schedule schedule{1};
  /// Per-stage Eq. 2 flags: true on departure stages (receivers are
  /// known to be waiting inside the barrier).
  std::vector<bool> awaited_stages;
  /// Stage count of the arrival part of `schedule`.
  std::size_t arrival_stages = 0;
  /// Greedy decisions, root level first.
  std::vector<LevelChoice> choices;
  std::string root_algorithm;
  bool root_self_completing = false;

  /// Human-readable choice summary, one line per level decision.
  std::string describe() const;
};

/// Arrival-only composition: the greedy per-level construction of
/// compose_barrier stopped before the departure transposition and the
/// compaction. This is the building block of the hierarchical tuner,
/// which composes one arrival per cluster class plus one over cluster
/// leaders and assembles the blocked departure itself.
struct ArrivalComposition {
  /// Uncompacted arrival schedule over the profile's ranks.
  Schedule arrival{1};
  /// Stage at which the top-level block begins (the merge-early start
  /// of the tree root's own local barrier).
  std::size_t root_level_start = 0;
  /// Greedy decisions in post-order (the root-level choice last).
  std::vector<LevelChoice> choices;
  std::string root_algorithm;
  bool root_self_completing = false;
};

/// Compose only the arrival phase over `tree`. With
/// `treat_root_as_global` the tree's top level scores with the root
/// candidate set and the self-completing x1 exemption (it is the
/// machine-wide last stage); without, it scores like any sub-level
/// (x2, sub-level candidates) — the right setting for a cluster-class
/// tile whose departure is always materialized.
ArrivalComposition compose_arrival(const TopologyProfile& profile,
                                   const ClusterNode& tree,
                                   const ComposeOptions& options = {},
                                   bool treat_root_as_global = true,
                                   ThreadPool* pool = nullptr);

/// Compose the hybrid barrier for the given profile and cluster tree.
/// The tree must cover ranks 0..profile.ranks()-1 exactly. A pool
/// (optional) parallelizes the per-stage candidate evaluation and the
/// independent child-subtree builds; candidates are still reduced in
/// deterministic order, so the result is bit-identical at any width.
ComposedBarrier compose_barrier(const TopologyProfile& profile,
                                const ClusterNode& tree,
                                const ComposeOptions& options = {},
                                ThreadPool* pool = nullptr);

/// Global alternative to the per-cluster greedy: evaluate every
/// (sub-level algorithm, root algorithm) uniform assignment by the
/// *full-schedule* predicted cost (Eq. 2 on departures) — |A|^2
/// compositions — plus the plain greedy result, and return the
/// cheapest. The greedy scores levels in isolation with the x2 arrival
/// approximation; this search prices interactions (stage alignment,
/// actual departure costs) exactly, at |A|^2 times the cost. Used by
/// bench_ablation_algorithms to bound what greediness gives away.
ComposedBarrier compose_barrier_searched(const TopologyProfile& profile,
                                         const ClusterNode& tree,
                                         const ComposeOptions& options = {},
                                         ThreadPool* pool = nullptr);

}  // namespace optibar
