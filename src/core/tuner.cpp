#include "core/tuner.hpp"

#include <optional>

#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/validate.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

TuneResult::TuneResult(TopologyProfile profile, ClusterNode tree,
                       ComposedBarrier barrier, double predicted_cost,
                       std::string function_name)
    : profile_(std::move(profile)),
      tree_(std::move(tree)),
      barrier_(std::move(barrier)),
      predicted_cost_(predicted_cost),
      function_name_(std::move(function_name)) {}

GeneratedCode TuneResult::generated_code() const {
  return generate_cpp(schedule(), function_name_);
}

TuneResult tune_barrier(const TopologyProfile& profile,
                        const EngineOptions& options) {
  std::optional<ThreadPool> local_pool;
  if (options.resolved_threads() > 1) {
    local_pool.emplace(options.resolved_threads());
  }
  return tune_barrier(profile, options,
                      local_pool ? &*local_pool : nullptr);
}

TuneResult tune_barrier(const TopologyProfile& profile,
                        const EngineOptions& options, ThreadPool* pool) {
  options.validate();
  OPTIBAR_REQUIRE(profile.ranks() > 0, "empty profile");
  // Estimated matrices carry sampling asymmetry; the clustering metric
  // requires symmetry (Section VII-A), so normalise first.
  TopologyProfile symmetric = profile.symmetrized();
  ClusterNode tree = build_cluster_tree(symmetric, options.clustering, pool);
  ComposedBarrier barrier =
      compose_barrier(symmetric, tree, options.composition, pool);
  // No tuned plan leaves the engine without the static deadlock-freedom
  // proof (barrier/validate.hpp) — the same gate the loaders apply.
  const ValidationResult validation = validate_schedule(
      StoredSchedule{barrier.schedule, barrier.awaited_stages});
  OPTIBAR_ASSERT(validation.ok(),
                 "tuned schedule failed validation: " << validation.describe());

  PredictOptions predict_options;
  predict_options.awaited_stages = barrier.awaited_stages;
  PredictWorkspace workspace;
  const double cost = predicted_time(
      CompiledSchedule(barrier.schedule, symmetric), predict_options,
      workspace);

  return TuneResult(std::move(symmetric), std::move(tree), std::move(barrier),
                    cost, options.function_name);
}

}  // namespace optibar
