#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

namespace {

/// DFS state: enumerates every off-diagonal incidence matrix per stage
/// with branch-and-bound on the running critical path. Parallel mode
/// splits the tree at the first stage: each first-stage mask's subtree
/// is explored by one pool task, all pruning against a shared atomic
/// incumbent bound, so a good early incumbent prunes every subtree.
class Searcher {
 public:
  Searcher(const TopologyProfile& profile, const SearchOptions& options)
      : profile_(profile), options_(options), p_(profile.ranks()) {
    // Bit k of a stage mask encodes edge k in this list.
    for (std::size_t i = 0; i < p_; ++i) {
      for (std::size_t j = 0; j < p_; ++j) {
        if (i != j) {
          edges_.emplace_back(i, j);
        }
      }
    }
    OPTIBAR_ASSERT(edges_.size() < 64, "edge mask overflows 64 bits");
  }

  SearchResult run(ThreadPool* pool) {
    seed_incumbents();
    bound_.store(result_.cost, std::memory_order_relaxed);
    if (pool == nullptr || pool->width() <= 1) {
      Schedule prefix(p_);
      IncrementalPredictor predictor(profile_);
      dfs(prefix, BoolMatrix::identity(p_), predictor);
    } else {
      parallel_root(*pool);
    }
    result_.nodes_explored = nodes_.load(std::memory_order_relaxed);
    return std::move(result_);
  }

 private:
  /// Start from the classic algorithms so pruning has a tight incumbent.
  void seed_incumbents() {
    for (const Schedule& candidate :
         {linear_barrier(p_), dissemination_barrier(p_), tree_barrier(p_)}) {
      if (candidate.stage_count() > options_.max_stages) {
        continue;
      }
      const double cost = predicted_time(candidate, profile_);
      if (result_.best.ranks() != p_ || result_.best.stage_count() == 0 ||
          cost < result_.cost) {
        result_.best = candidate;
        result_.cost = cost;
      }
    }
    if (result_.best.ranks() != p_) {
      // No classic algorithm fits in max_stages; fall back to linear as
      // a (possibly over-long) incumbent so `cost` is meaningful.
      result_.best = linear_barrier(p_);
      result_.cost = predicted_time(result_.best, profile_);
    }
  }

  StageMatrix stage_from_mask(std::uint64_t mask) const {
    StageMatrix m(p_, p_, 0);
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      if (mask & (std::uint64_t{1} << k)) {
        m(edges_[k].first, edges_[k].second) = 1;
      }
    }
    return m;
  }

  /// Record a complete barrier; the incumbent is shared, so re-check
  /// under the lock (another subtree may have improved it meanwhile).
  void record(const Schedule& prefix, double cost) {
    std::lock_guard<std::mutex> lock(best_mutex_);
    if (cost < result_.cost) {
      result_.best = prefix;
      result_.cost = cost;
      bound_.store(cost, std::memory_order_relaxed);
    }
  }

  bool budget_exhausted() const {
    return options_.node_budget != 0 &&
           nodes_.load(std::memory_order_relaxed) >= options_.node_budget;
  }

  /// DFS with incremental prefix evaluation: the predictor's checkpoint
  /// stack holds the ready-time vector of every prefix depth, so each
  /// candidate stage is scored by one push_stage (Eq. 1 costing, same
  /// recurrence as predict()) and backtracking is a pop — the whole
  /// schedule is never re-evaluated.
  void dfs(Schedule& prefix, const BoolMatrix& knowledge,
           IncrementalPredictor& predictor) {
    if (budget_exhausted()) {
      return;
    }
    nodes_.fetch_add(1, std::memory_order_relaxed);
    if (knowledge.all_nonzero()) {
      const double cost = predictor.max_ready();
      if (cost < bound_.load(std::memory_order_relaxed)) {
        record(prefix, cost);
      }
      return;  // extending a finished barrier only adds cost
    }
    if (prefix.stage_count() >= options_.max_stages) {
      return;
    }
    const std::uint64_t limit = std::uint64_t{1} << edges_.size();
    for (std::uint64_t mask = 1; mask < limit; ++mask) {
      StageMatrix stage = stage_from_mask(mask);
      predictor.push_stage(stage);
      if (predictor.max_ready() >=
          bound_.load(std::memory_order_relaxed)) {
        predictor.pop_stage();
        continue;  // bound: costs only grow with further stages
      }
      const BoolMatrix next_knowledge =
          bool_add(knowledge, bool_multiply(knowledge, stage));
      prefix.append_stage(std::move(stage));
      dfs(prefix, next_knowledge, predictor);
      prefix.pop_stage();
      predictor.pop_stage();
    }
  }

  /// Fan the first-stage masks out across the pool; each task runs the
  /// serial DFS on its subtree with its own predictor. Equivalent to
  /// dfs() from the root: the root prefix is counted once, and per-mask
  /// pruning matches the loop body above.
  void parallel_root(ThreadPool& pool) {
    nodes_.fetch_add(1, std::memory_order_relaxed);  // the empty prefix
    if (options_.max_stages == 0) {
      return;
    }
    const BoolMatrix identity = BoolMatrix::identity(p_);
    const std::uint64_t limit = std::uint64_t{1} << edges_.size();
    pool.parallel_for(
        static_cast<std::size_t>(limit - 1), [&](std::size_t index) {
          if (budget_exhausted()) {
            return;
          }
          const std::uint64_t mask = static_cast<std::uint64_t>(index) + 1;
          StageMatrix stage = stage_from_mask(mask);
          IncrementalPredictor predictor(profile_);
          predictor.push_stage(stage);
          if (predictor.max_ready() >=
              bound_.load(std::memory_order_relaxed)) {
            return;
          }
          const BoolMatrix knowledge =
              bool_add(identity, bool_multiply(identity, stage));
          Schedule prefix(p_);
          prefix.append_stage(std::move(stage));
          dfs(prefix, knowledge, predictor);
        });
  }

  const TopologyProfile& profile_;
  SearchOptions options_;
  std::size_t p_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  SearchResult result_;
  std::mutex best_mutex_;
  std::atomic<double> bound_{0.0};
  std::atomic<std::size_t> nodes_{0};
};

}  // namespace

SearchResult exhaustive_search(const TopologyProfile& profile,
                               const SearchOptions& options,
                               std::size_t threads) {
  OPTIBAR_REQUIRE(profile.ranks() >= 1, "empty profile");
  OPTIBAR_REQUIRE(profile.ranks() <= options.max_ranks,
                  "exhaustive search over " << profile.ranks()
                                            << " ranks exceeds the cap of "
                                            << options.max_ranks
                                            << "; raise max_ranks knowingly");
  OPTIBAR_REQUIRE(options.max_stages >= 1, "need at least one stage");
  if (profile.ranks() == 1) {
    SearchResult r;
    r.best = Schedule(1);
    r.cost = 0.0;
    return r;
  }
  std::optional<ThreadPool> pool;
  if (threads != 1) {
    pool.emplace(threads);
  }
  return Searcher(profile, options).run(pool ? &*pool : nullptr);
}

SearchResult exhaustive_search(const TopologyProfile& profile,
                               const EngineOptions& options) {
  options.validate();
  return exhaustive_search(profile, options.search,
                           options.resolved_threads());
}

}  // namespace optibar
