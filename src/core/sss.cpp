#include "core/sss.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace optibar {

std::vector<std::vector<std::size_t>> sss_cluster(std::size_t n,
                                                  const DistanceFn& distance,
                                                  const SssOptions& options) {
  OPTIBAR_REQUIRE(n > 0, "sss_cluster of zero points");
  OPTIBAR_REQUIRE(distance, "null distance function");
  OPTIBAR_REQUIRE(options.sparseness > 0.0 && options.sparseness < 1.0,
                  "sparseness must be in (0,1), got " << options.sparseness);

  // Diameter: the largest pairwise distance.
  double diameter = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      diameter = std::max(diameter, distance(i, j));
    }
  }
  const double threshold = options.sparseness * diameter;

  std::vector<std::size_t> centers{0};
  std::vector<std::vector<std::size_t>> clusters{{0}};
  for (std::size_t p = 1; p < n; ++p) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const double d = distance(p, centers[c]);
      if (d < best) {
        best = d;
        best_cluster = c;
      }
    }
    if (best > threshold) {
      centers.push_back(p);
      clusters.push_back({p});
    } else {
      clusters[best_cluster].push_back(p);
    }
  }
  // Members are appended in ascending index order after the center, so
  // the required ordering already holds.
  return clusters;
}

}  // namespace optibar
