// Hierarchical tuning: the sub-quadratic tune path for large clustered
// machines.
//
// The dense pipeline (core/tuner.hpp) touches every O/L entry several
// times — O(P²) clustering distance work and O(P²) stage matrices — so
// it tops out around a few thousand ranks. On a machine whose profile
// is block-structured (§IV-B: "similar submatrices corresponding to
// similar subsystems"), almost all of that work is redundant: every
// cluster of a class would receive the *same* local sub-barrier. The
// hierarchical tuner exploits that directly:
//
//   1. detect logical clusters from the O/L block structure
//      (profile/logical_clusters.hpp) and lift the profile into its
//      tiled form (profile/tiled_profile.hpp);
//   2. tune ONE representative sub-barrier per cluster class — the
//      usual SSS tree + greedy composition, but on a t x t tile;
//   3. tune the inter-cluster stage over the C cluster leaders (the
//      class trees' representatives), a C x C problem;
//   4. assemble the result as a BlockedSchedule — per-class local
//      arrivals replicated positionally across same-class clusters,
//      the leader arrival merged early, the departure transposed —
//      without ever materializing a dense P x P stage.
//
// Work is O(K·tune(t) + tune(C) + signals) instead of O(tune(P));
// memory is the tiled profile plus the blocked plan, both
// sub-quadratic. When the machine is NOT block-structured (a single
// logical cluster, or tiles that fail tolerance verification) the
// tuner falls back to the dense pipeline and returns its result
// bit-identically — flat machines lose nothing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "barrier/blocked_schedule.hpp"
#include "core/composer.hpp"
#include "core/engine_options.hpp"
#include "core/tuner.hpp"
#include "profile/logical_clusters.hpp"
#include "profile/tiled_profile.hpp"

namespace optibar {

class ThreadPool;

struct HierarchicalTuneResult {
  /// True when the machine was not block-structured and the dense
  /// pipeline ran instead; `dense` then holds the full dense result
  /// (bit-identical to tune_barrier on the same profile) and the
  /// blocked members below are empty.
  bool used_dense_fallback = false;
  std::string fallback_reason;
  std::optional<TuneResult> dense;

  ClusterDecomposition decomposition;
  TiledProfile tiled;
  BlockedSchedule blocked;

  /// Greedy decisions, for reporting: per-class choices are in the
  /// tile's LOCAL rank space (identical for every cluster of the
  /// class); leader choices are over global leader ranks.
  std::vector<std::vector<LevelChoice>> class_choices;
  std::vector<std::string> class_algorithms;  ///< top level of each tile
  std::vector<LevelChoice> leader_choices;
  std::string leader_algorithm;
  bool leader_self_completing = false;

  /// Eq. 1/2 predicted critical-path cost of the assembled barrier,
  /// computed on the compiled blocked plan (dense path: the dense
  /// tuner's own prediction).
  double predicted_cost = 0.0;

  /// Human-readable summary: decomposition shape plus one line per
  /// tuning decision.
  std::string describe() const;
};

/// Tune a dense profile hierarchically: detect clusters, lift to the
/// tiled form, tune per class + leaders. Falls back to the dense
/// pipeline (bit-identical to tune_barrier) when the machine has a
/// single logical cluster or its blocks fail tolerance verification.
HierarchicalTuneResult tune_hierarchical(const TopologyProfile& profile,
                                         const EngineOptions& options = {},
                                         const DetectOptions& detection = {});
HierarchicalTuneResult tune_hierarchical(const TopologyProfile& profile,
                                         const EngineOptions& options,
                                         const DetectOptions& detection,
                                         ThreadPool* pool);

/// Tune an already-tiled profile — the 10k-rank entry point, where no
/// dense P x P matrix exists at any stage. The profile should be
/// symmetric (generated profiles with zero asymmetry are). A tiled
/// profile with fewer than two clusters densifies and falls back
/// (guarded by the dense cap).
HierarchicalTuneResult tune_hierarchical(const TiledProfile& tiled,
                                         const EngineOptions& options = {});
HierarchicalTuneResult tune_hierarchical(const TiledProfile& tiled,
                                         const EngineOptions& options,
                                         ThreadPool* pool);

}  // namespace optibar
