#include "topology/profile.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace optibar {

namespace {
constexpr const char* kMagic = "optibar-profile";
}  // namespace

TopologyProfile::TopologyProfile(Matrix<double> overhead, Matrix<double> latency)
    : overhead_(std::move(overhead)), latency_(std::move(latency)) {
  OPTIBAR_REQUIRE(overhead_.square(), "O matrix must be square");
  OPTIBAR_REQUIRE(latency_.square(), "L matrix must be square");
  OPTIBAR_REQUIRE(overhead_.rows() == latency_.rows(),
                  "O and L must have the same rank count ("
                      << overhead_.rows() << " vs " << latency_.rows() << ")");
}

TopologyProfile::TopologyProfile(Matrix<double> overhead, Matrix<double> latency,
                                 Matrix<double> bandwidth)
    : TopologyProfile(std::move(overhead), std::move(latency)) {
  bandwidth_ = std::move(bandwidth);
  OPTIBAR_REQUIRE(bandwidth_.square(), "G matrix must be square");
  OPTIBAR_REQUIRE(bandwidth_.rows() == overhead_.rows(),
                  "G must have the same rank count as O ("
                      << bandwidth_.rows() << " vs " << overhead_.rows()
                      << ")");
}

void TopologyProfile::set_rma_latency(Matrix<double> rma_latency) {
  rma_latency_ = std::move(rma_latency);
  OPTIBAR_REQUIRE(rma_latency_.square(), "R matrix must be square");
  OPTIBAR_REQUIRE(rma_latency_.rows() == overhead_.rows(),
                  "R must have the same rank count as O ("
                      << rma_latency_.rows() << " vs " << overhead_.rows()
                      << ")");
}

bool TopologyProfile::is_symmetric(double relative_tolerance) const {
  const double scale =
      overhead_.empty() ? 0.0 : std::max(overhead_.max_element(), 0.0);
  const double tol = relative_tolerance * (scale > 0.0 ? scale : 1.0);
  for (std::size_t i = 0; i < ranks(); ++i) {
    for (std::size_t j = i + 1; j < ranks(); ++j) {
      if (std::abs(overhead_(i, j) - overhead_(j, i)) > tol ||
          std::abs(latency_(i, j) - latency_(j, i)) > tol) {
        return false;
      }
    }
  }
  return true;
}

TopologyProfile TopologyProfile::symmetrized() const {
  Matrix<double> o = overhead_;
  Matrix<double> l = latency_;
  Matrix<double> g = bandwidth_;
  Matrix<double> r = rma_latency_;
  for (std::size_t i = 0; i < ranks(); ++i) {
    for (std::size_t j = i + 1; j < ranks(); ++j) {
      const double mo = 0.5 * (o(i, j) + o(j, i));
      const double ml = 0.5 * (l(i, j) + l(j, i));
      o(i, j) = o(j, i) = mo;
      l(i, j) = l(j, i) = ml;
      if (!g.empty()) {
        const double mg = 0.5 * (g(i, j) + g(j, i));
        g(i, j) = g(j, i) = mg;
      }
      if (!r.empty()) {
        const double mr = 0.5 * (r(i, j) + r(j, i));
        r(i, j) = r(j, i) = mr;
      }
    }
  }
  TopologyProfile result =
      g.empty() ? TopologyProfile(std::move(o), std::move(l))
                : TopologyProfile(std::move(o), std::move(l), std::move(g));
  if (!r.empty()) {
    result.set_rma_latency(std::move(r));
  }
  return result;
}

double TopologyProfile::distance(std::size_t i, std::size_t j) const {
  if (i == j) {
    return 0.0;
  }
  return 0.5 * (overhead_(i, j) + overhead_(j, i));
}

double TopologyProfile::diameter() const {
  double d = 0.0;
  for (std::size_t i = 0; i < ranks(); ++i) {
    for (std::size_t j = i + 1; j < ranks(); ++j) {
      d = std::max(d, distance(i, j));
    }
  }
  return d;
}

TopologyProfile TopologyProfile::restrict_to(
    const std::vector<std::size_t>& subset) const {
  OPTIBAR_REQUIRE(!subset.empty(), "restrict_to empty rank set");
  TopologyProfile result =
      bandwidth_.empty()
          ? TopologyProfile(overhead_.submatrix(subset),
                            latency_.submatrix(subset))
          : TopologyProfile(overhead_.submatrix(subset),
                            latency_.submatrix(subset),
                            bandwidth_.submatrix(subset));
  if (!rma_latency_.empty()) {
    result.set_rma_latency(rma_latency_.submatrix(subset));
  }
  return result;
}

void TopologyProfile::save(std::ostream& os) const {
  // Lowest version that can carry the data: v1 for a pure O/L profile,
  // v2 when the bandwidth matrix is present, v3 when the one-sided R
  // matrix is present (G stays optional in v3), so files written by
  // older builds and read by older readers stay valid wherever the
  // data allows.
  const int version = !rma_latency_.empty() ? 3 : (!bandwidth_.empty() ? 2 : 1);
  os << kMagic << " v" << version << '\n';
  os << "P " << ranks() << '\n';
  os << std::setprecision(17) << std::scientific;
  auto dump = [&](const char* tag, const Matrix<double>& m) {
    os << tag << '\n';
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        os << m(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
      }
    }
  };
  dump("O", overhead_);
  dump("L", latency_);
  if (!bandwidth_.empty()) {
    dump("G", bandwidth_);
  }
  if (!rma_latency_.empty()) {
    dump("R", rma_latency_);
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing profile");
}

TopologyProfile TopologyProfile::load(std::istream& is) {
  // On-disk data is untrusted: every read checks fail() (a truncated
  // file must not pass as eof-with-defaults), the rank count is capped
  // before sizing any allocation, and each element must be a finite
  // number (NaN/inf would silently poison every downstream cost).
  constexpr std::size_t kMaxRanks = 8192;
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_IO_REQUIRE(!is.fail() && magic == kMagic,
                     "not an optibar profile (magic '" << magic << "')");
  OPTIBAR_IO_REQUIRE(version != "v4",
                     "profile is a v4 tiled profile; load it with "
                     "TiledProfile::load");
  OPTIBAR_IO_REQUIRE(version == "v1" || version == "v2" || version == "v3",
                     "unsupported profile version " << version);
  std::string tag;
  std::size_t p = 0;
  is >> tag >> p;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "P" && p > 0,
                     "malformed profile header");
  OPTIBAR_IO_REQUIRE(p <= kMaxRanks, "profile rank count "
                                         << p << " exceeds the format cap ("
                                         << kMaxRanks << ")");
  auto read_body = [&](const std::string& name) {
    Matrix<double> m(p, p);
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t c = 0; c < p; ++c) {
        is >> m(r, c);
        OPTIBAR_IO_REQUIRE(!is.fail(), "truncated or malformed "
                                           << name << " matrix at (" << r
                                           << ", " << c << ")");
        OPTIBAR_IO_REQUIRE(std::isfinite(m(r, c)),
                           name << " matrix entry (" << r << ", " << c
                                << ") is not finite");
      }
    }
    return m;
  };
  auto read_matrix = [&](const char* expected_tag) {
    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == expected_tag,
                       "expected matrix tag " << expected_tag << ", got "
                                              << tag);
    return read_body(expected_tag);
  };
  Matrix<double> o = read_matrix("O");
  Matrix<double> l = read_matrix("L");
  if (version == "v1") {
    return TopologyProfile(std::move(o), std::move(l));
  }
  if (version == "v2") {
    Matrix<double> g = read_matrix("G");
    return TopologyProfile(std::move(o), std::move(l), std::move(g));
  }
  // v3: an optional G, then the mandatory R (a v3 without R would have
  // been written as v1/v2 — see save()).
  is >> tag;
  OPTIBAR_IO_REQUIRE(!is.fail() && (tag == "G" || tag == "R"),
                     "expected matrix tag G or R, got " << tag);
  Matrix<double> g;
  if (tag == "G") {
    g = read_body("G");
    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "R",
                       "expected matrix tag R, got " << tag);
  }
  Matrix<double> r = read_body("R");
  TopologyProfile profile =
      g.empty() ? TopologyProfile(std::move(o), std::move(l))
                : TopologyProfile(std::move(o), std::move(l), std::move(g));
  profile.set_rma_latency(std::move(r));
  return profile;
}

void TopologyProfile::save_file(const std::string& path) const {
  std::ofstream os(path);
  OPTIBAR_REQUIRE(os.is_open(), "cannot open " << path << " for writing");
  save(os);
}

TopologyProfile TopologyProfile::load_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load(is);
}

}  // namespace optibar
