#include "topology/mapping.hpp"

#include <set>

#include "util/error.hpp"

namespace optibar {

Mapping::Mapping(const MachineSpec& machine,
                 std::vector<std::size_t> rank_to_core, std::string policy_name)
    : rank_to_core_(std::move(rank_to_core)),
      policy_name_(std::move(policy_name)) {
  OPTIBAR_REQUIRE(!rank_to_core_.empty(), "mapping must place at least one rank");
  std::set<std::size_t> seen;
  for (std::size_t core : rank_to_core_) {
    OPTIBAR_REQUIRE(core < machine.total_cores(),
                    "mapped core " << core << " out of range ("
                                   << machine.total_cores() << " cores)");
    OPTIBAR_REQUIRE(seen.insert(core).second,
                    "core " << core << " mapped to more than one rank");
  }
}

std::size_t Mapping::core_of(std::size_t rank) const {
  OPTIBAR_REQUIRE(rank < rank_to_core_.size(),
                  "rank " << rank << " out of range for mapping of "
                          << rank_to_core_.size());
  return rank_to_core_[rank];
}

std::size_t Mapping::nodes_used(const MachineSpec& machine) const {
  std::set<std::size_t> nodes;
  for (std::size_t core : rank_to_core_) {
    nodes.insert(machine.location(core).node);
  }
  return nodes.size();
}

namespace {

std::size_t nodes_to_allocate(const MachineSpec& machine, std::size_t ranks) {
  const std::size_t per_node = machine.cores_per_node();
  const std::size_t needed = (ranks + per_node - 1) / per_node;
  OPTIBAR_REQUIRE(needed <= machine.nodes(),
                  ranks << " ranks exceed machine capacity of "
                        << machine.total_cores() << " cores");
  return needed;
}

}  // namespace

Mapping block_mapping(const MachineSpec& machine, std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "block_mapping of zero ranks");
  nodes_to_allocate(machine, ranks);  // capacity check
  std::vector<std::size_t> table(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    table[r] = r;  // core numbering is already node-major
  }
  return Mapping(machine, std::move(table), "block");
}

Mapping round_robin_mapping(const MachineSpec& machine, std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "round_robin_mapping of zero ranks");
  const std::size_t nodes = nodes_to_allocate(machine, ranks);
  const std::size_t per_node = machine.cores_per_node();
  std::vector<std::size_t> table(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::size_t node = r % nodes;
    const std::size_t slot = r / nodes;
    OPTIBAR_REQUIRE(slot < per_node,
                    "round-robin overflow: rank " << r << " needs slot "
                                                  << slot << " on node "
                                                  << node);
    table[r] = node * per_node + slot;
  }
  return Mapping(machine, std::move(table), "round-robin");
}

Mapping custom_mapping(const MachineSpec& machine,
                       std::vector<std::size_t> rank_to_core) {
  return Mapping(machine, std::move(rank_to_core), "custom");
}

}  // namespace optibar
