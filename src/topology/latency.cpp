#include "topology/latency.hpp"

#include "util/error.hpp"

namespace optibar {

const char* to_string(LinkLevel level) {
  switch (level) {
    case LinkLevel::kSelf:
      return "self";
    case LinkLevel::kSharedCache:
      return "shared-cache";
    case LinkLevel::kSameChip:
      return "same-chip";
    case LinkLevel::kCrossSocket:
      return "cross-socket";
    case LinkLevel::kInterNode:
      return "inter-node";
  }
  OPTIBAR_FAIL("unknown LinkLevel");
}

const LinkCost& LatencyTiers::at(LinkLevel level) const {
  switch (level) {
    case LinkLevel::kSharedCache:
      return shared_cache;
    case LinkLevel::kSameChip:
      return same_chip;
    case LinkLevel::kCrossSocket:
      return cross_socket;
    case LinkLevel::kInterNode:
      return inter_node;
    case LinkLevel::kSelf:
      break;
  }
  OPTIBAR_FAIL("LatencyTiers::at called with kSelf; use self_overhead");
}

}  // namespace optibar
