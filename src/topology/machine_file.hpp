// Machine description files.
//
// Lets a machine be described in a small text format instead of C++ —
// the piece a site admin actually edits. Supports the uniform clusters
// of the paper and irregular installations (mixed node generations),
// which MachineSpec cannot express:
//
//   # comment
//   machine "lab cluster"
//   tier self   o 1.5e-6
//   tier cache  o 2.0e-6 l 1.2e-7
//   tier chip   o 2.5e-6 l 1.5e-7
//   tier socket o 4.0e-6 l 6.0e-7
//   tier node   o 2.5e-5 l 1.4e-5
//   shape nodes 8 sockets 2 cores 4 cache 2      # uniform...
//   # ...or, instead of `shape`, one line per node:
//   # node sockets 2 cores 4 cache 2
//   # node sockets 2 cores 6 cache 6
//
// `o` is the startup overhead O and `l` the marginal latency L of the
// tier, in seconds. All five tiers are required; exactly one of `shape`
// or at least one `node` line must be present.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "topology/custom_machine.hpp"
#include "topology/machine.hpp"

namespace optibar {

struct MachineFile {
  std::string name = "unnamed machine";
  LatencyTiers tiers;
  /// True when the file used `shape` (a homogeneous grid).
  bool uniform = false;
  // Valid when uniform:
  std::size_t nodes = 0;
  std::size_t sockets = 0;
  std::size_t cores = 0;
  std::size_t cache = 1;
  /// Always populated (one entry per node).
  std::vector<NodeShape> node_shapes;

  /// Homogeneous MachineSpec; throws unless `uniform`.
  MachineSpec to_spec() const;
  /// Irregular machine covering both cases.
  CustomMachine to_custom() const;
};

MachineFile parse_machine_file(std::istream& is);
MachineFile load_machine_file(const std::string& path);

}  // namespace optibar
