// Hierarchical machine description.
//
// Substitute for the paper's physical testbeds: an 8-node cluster of dual
// quad-core Xeon E5405 nodes and a 10-node cluster of dual hex-core
// Opteron 2431 nodes, both on gigabit ethernet (Section VI). A
// MachineSpec captures exactly what the paper's method consumes — the
// hierarchy (cluster / node / socket / cache slice / core) and the link
// cost tier between any two cores. The presets quad_cluster() and
// hex_cluster() are calibrated so that the generated O/L matrices have
// the magnitudes and ratios reported in the paper (e.g. the ~4x on-chip
// vs off-chip L ratio of Figure 9 and ~50 microsecond GbE startup).
#pragma once

#include <cstddef>
#include <string>

#include "topology/latency.hpp"

namespace optibar {

/// Position of one core in the machine hierarchy.
struct CoreLocation {
  std::size_t node = 0;
  std::size_t socket = 0;
  std::size_t core = 0;  ///< index within the socket

  bool operator==(const CoreLocation&) const = default;
};

/// A homogeneous cluster of SMP nodes: `nodes` x `sockets_per_node` x
/// `cores_per_socket` cores, with one latency tier table. Cores within a
/// socket are grouped into cache slices of `cores_per_cache` cores
/// sharing a last-level cache (2 on the Xeon E5405, whose 2x6MB L2 is
/// shared by core pairs).
class MachineSpec {
 public:
  MachineSpec(std::string name, std::size_t nodes, std::size_t sockets_per_node,
              std::size_t cores_per_socket, std::size_t cores_per_cache,
              LatencyTiers tiers);

  const std::string& name() const { return name_; }
  std::size_t nodes() const { return nodes_; }
  std::size_t sockets_per_node() const { return sockets_per_node_; }
  std::size_t cores_per_socket() const { return cores_per_socket_; }
  std::size_t cores_per_cache() const { return cores_per_cache_; }
  std::size_t cores_per_node() const {
    return sockets_per_node_ * cores_per_socket_;
  }
  std::size_t total_cores() const { return nodes_ * cores_per_node(); }
  const LatencyTiers& tiers() const { return tiers_; }

  /// Decompose a global core id into its hierarchy coordinates. Cores
  /// are numbered node-major, then socket-major.
  CoreLocation location(std::size_t core_id) const;

  /// Inverse of location().
  std::size_t core_id(const CoreLocation& loc) const;

  /// Topological relationship between two cores.
  LinkLevel link_level(std::size_t core_a, std::size_t core_b) const;

  /// Link cost tier between two cores; for core_a == core_b the overhead
  /// is self_overhead and the latency 0.
  LinkCost link_cost(std::size_t core_a, std::size_t core_b) const;

  /// Restrict the machine to its first `nodes` nodes (e.g. the 3-node
  /// sub-cluster of Figure 10). Keeps tiers and per-node shape.
  MachineSpec first_nodes(std::size_t node_count) const;

 private:
  std::string name_;
  std::size_t nodes_;
  std::size_t sockets_per_node_;
  std::size_t cores_per_socket_;
  std::size_t cores_per_cache_;
  LatencyTiers tiers_;
};

/// Paper testbed 1: 8 nodes x dual quad-core (Intel Xeon E5405-like),
/// gigabit ethernet, pairwise-shared L2.
MachineSpec quad_cluster(std::size_t nodes = 8);

/// Paper testbed 2: 10 nodes x dual hex-core (AMD Opteron 2431-like),
/// gigabit ethernet, per-socket shared L3.
MachineSpec hex_cluster(std::size_t nodes = 10);

/// The 10k-rank scaling target: 256 nodes x dual 20-core sockets
/// (10240 cores, three cost levels per node plus the network). The
/// intra-node tiers stay close together while the node boundary jumps
/// by >6x in O, so logical-cluster detection cuts exactly at nodes —
/// the shape the hierarchical tuner is built for. Dense O/L/G/R at
/// this scale would be ~3.4 GB; use generate_tiled_profile.
MachineSpec tenk_cluster(std::size_t nodes = 256);

/// A deliberately lopsided machine used by tests and the custom-topology
/// example: mixed node sizes are not representable by MachineSpec, so
/// this returns a *uniform* machine with unusually skewed tier costs
/// (slow cross-socket relative to inter-node) to exercise adaptation.
MachineSpec skewed_cluster(std::size_t nodes = 4);

}  // namespace optibar
