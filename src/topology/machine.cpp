#include "topology/machine.hpp"

#include "util/error.hpp"

namespace optibar {

MachineSpec::MachineSpec(std::string name, std::size_t nodes,
                         std::size_t sockets_per_node,
                         std::size_t cores_per_socket,
                         std::size_t cores_per_cache, LatencyTiers tiers)
    : name_(std::move(name)),
      nodes_(nodes),
      sockets_per_node_(sockets_per_node),
      cores_per_socket_(cores_per_socket),
      cores_per_cache_(cores_per_cache),
      tiers_(tiers) {
  OPTIBAR_REQUIRE(nodes_ > 0, "machine needs at least one node");
  OPTIBAR_REQUIRE(sockets_per_node_ > 0, "machine needs at least one socket");
  OPTIBAR_REQUIRE(cores_per_socket_ > 0, "machine needs at least one core");
  OPTIBAR_REQUIRE(cores_per_cache_ > 0 && cores_per_socket_ % cores_per_cache_ == 0,
                  "cores_per_cache must divide cores_per_socket ("
                      << cores_per_cache_ << " vs " << cores_per_socket_ << ")");
}

CoreLocation MachineSpec::location(std::size_t core_id) const {
  OPTIBAR_REQUIRE(core_id < total_cores(),
                  "core id " << core_id << " out of range for "
                             << total_cores() << " cores");
  CoreLocation loc;
  loc.node = core_id / cores_per_node();
  const std::size_t within = core_id % cores_per_node();
  loc.socket = within / cores_per_socket_;
  loc.core = within % cores_per_socket_;
  return loc;
}

std::size_t MachineSpec::core_id(const CoreLocation& loc) const {
  OPTIBAR_REQUIRE(loc.node < nodes_ && loc.socket < sockets_per_node_ &&
                      loc.core < cores_per_socket_,
                  "core location out of range");
  return loc.node * cores_per_node() + loc.socket * cores_per_socket_ + loc.core;
}

LinkLevel MachineSpec::link_level(std::size_t core_a, std::size_t core_b) const {
  if (core_a == core_b) {
    return LinkLevel::kSelf;
  }
  const CoreLocation a = location(core_a);
  const CoreLocation b = location(core_b);
  if (a.node != b.node) {
    return LinkLevel::kInterNode;
  }
  if (a.socket != b.socket) {
    return LinkLevel::kCrossSocket;
  }
  if (a.core / cores_per_cache_ == b.core / cores_per_cache_) {
    return LinkLevel::kSharedCache;
  }
  return LinkLevel::kSameChip;
}

LinkCost MachineSpec::link_cost(std::size_t core_a, std::size_t core_b) const {
  const LinkLevel level = link_level(core_a, core_b);
  if (level == LinkLevel::kSelf) {
    return LinkCost{tiers_.self_overhead, 0.0};
  }
  return tiers_.at(level);
}

MachineSpec MachineSpec::first_nodes(std::size_t node_count) const {
  OPTIBAR_REQUIRE(node_count > 0 && node_count <= nodes_,
                  "first_nodes(" << node_count << ") on a " << nodes_
                                 << "-node machine");
  return MachineSpec(name_ + "[" + std::to_string(node_count) + " nodes]",
                     node_count, sockets_per_node_, cores_per_socket_,
                     cores_per_cache_, tiers_);
}

MachineSpec quad_cluster(std::size_t nodes) {
  // Calibration targets (see DESIGN.md): GbE startup ~50us dominates;
  // node-local L tiers reproduce the ~4x on-chip/off-chip ratio visible
  // in Figure 9 (~1.5e-7 s on-chip vs ~6e-7 s cross-socket).
  LatencyTiers tiers;
  tiers.self_overhead = 1.5e-6;
  // Per-byte terms: cache-resident copies stream at tens of GB/s, the
  // shared memory bus at ~8 GB/s, and GbE at its ~125 MB/s wire rate.
  // R terms: within the node a one-sided flag write costs a cache-line
  // transfer plus polling detection (~2us) — more than the two-sided
  // shared-memory path — while across nodes the put lands in ~6us,
  // bypassing the receiver's ~14us TCP completion processing entirely.
  // That asymmetry is what makes hybrid transport assignment pick puts
  // on inter-node edges only.
  tiers.shared_cache = {2.0e-6, 1.2e-7, 5.0e-11, 1.8e-6};
  tiers.same_chip = {2.5e-6, 1.5e-7, 8.0e-11, 2.0e-6};
  tiers.cross_socket = {4.0e-6, 6.0e-7, 1.25e-10, 3.0e-6};
  // GbE through a kernel TCP stack: ~25us one-way startup and ~14us of
  // per-message processing, so fan-in/fan-out batches serialize — the
  // effect that makes the linear barrier degrade with P in Figure 5.
  tiers.inter_node = {2.5e-5, 1.4e-5, 8.0e-9, 6.0e-6};
  return MachineSpec("quad-cluster (dual quad-core, GbE)", nodes,
                     /*sockets_per_node=*/2, /*cores_per_socket=*/4,
                     /*cores_per_cache=*/2, tiers);
}

MachineSpec hex_cluster(std::size_t nodes) {
  // Opteron 2431: six cores behind a shared L3, so the whole socket is
  // one cache domain; slightly slower NIC path than the quad cluster.
  LatencyTiers tiers;
  tiers.self_overhead = 1.6e-6;
  tiers.shared_cache = {2.2e-6, 1.4e-7, 6.0e-11, 2.0e-6};
  // One L3 per socket: same as cache tier.
  tiers.same_chip = {2.2e-6, 1.4e-7, 6.0e-11, 2.0e-6};
  tiers.cross_socket = {4.5e-6, 5.5e-7, 1.4e-10, 3.2e-6};
  // R < L across nodes (the put bypasses the receiver's TCP stack),
  // R > L inside them — see quad_cluster.
  tiers.inter_node = {2.8e-5, 1.5e-5, 8.0e-9, 6.5e-6};
  return MachineSpec("hex-cluster (dual hex-core, GbE)", nodes,
                     /*sockets_per_node=*/2, /*cores_per_socket=*/6,
                     /*cores_per_cache=*/6, tiers);
}

MachineSpec tenk_cluster(std::size_t nodes) {
  // Fat nodes on a GbE-class fabric. Within the node the tiers sit
  // within ~1.6x of each other (cache 2.0us -> chip 2.4us -> socket
  // 3.2us O), then the network jumps to 20us — a 6.25x gap, so the
  // detector's cut lands at the node boundary and every node is one
  // logical cluster of 40 ranks.
  LatencyTiers tiers;
  tiers.self_overhead = 1.5e-6;
  tiers.shared_cache = {2.0e-6, 1.2e-7, 5.0e-11, 1.8e-6};
  tiers.same_chip = {2.4e-6, 1.5e-7, 8.0e-11, 2.0e-6};
  tiers.cross_socket = {3.2e-6, 4.0e-7, 1.2e-10, 2.8e-6};
  // Lighter per-message processing than the paper's TCP stack (kernel
  // bypass), but startup still dominates intra-node costs by 6x+.
  tiers.inter_node = {2.0e-5, 8.0e-6, 8.0e-9, 5.0e-6};
  return MachineSpec("tenk-cluster (dual 20-core fat nodes)", nodes,
                     /*sockets_per_node=*/2, /*cores_per_socket=*/20,
                     /*cores_per_cache=*/10, tiers);
}

MachineSpec skewed_cluster(std::size_t nodes) {
  // An artificial tier table with an unusually expensive cross-socket
  // link (e.g. a saturated inter-die fabric). Exercises that adaptation
  // follows the profile rather than assumptions about which tier is slow.
  LatencyTiers tiers;
  tiers.self_overhead = 1.0e-6;
  tiers.shared_cache = {1.5e-6, 1.0e-7, 5.0e-11, 1.6e-6};
  tiers.same_chip = {2.0e-6, 2.0e-7, 8.0e-11, 1.8e-6};
  // Slower than the network, in per-byte cost too; the one-sided path
  // dodges part of the saturated fabric but stays expensive.
  tiers.cross_socket = {8.0e-5, 2.0e-5, 1.2e-8, 1.0e-5};
  tiers.inter_node = {4.0e-5, 9.0e-6, 8.0e-9, 7.0e-6};
  return MachineSpec("skewed-cluster (pathological cross-socket)", nodes,
                     /*sockets_per_node=*/2, /*cores_per_socket=*/4,
                     /*cores_per_cache=*/4, tiers);
}

}  // namespace optibar
