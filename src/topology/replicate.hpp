// Profile construction by submatrix replication (Section IV-B).
//
// The paper notes that the |P|^2 pairwise tests "can absorb a significant
// amount of run time for large |P|", and that a-priori knowledge of the
// interconnect lets one measure a single representative node pair and
// replicate: "a great deal of duplicate effort could be rationalized by
// constructing P x P matrices from replicating component submatrices".
// The paper describes but deliberately does not use this; we implement it
// (with a verification helper) so the saving is available and testable.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/profile.hpp"

namespace optibar {

/// Partition of ranks into locality groups (typically one per node), in
/// rank order within each group.
using RankGroups = std::vector<std::vector<std::size_t>>;

/// Build a full P x P profile from measurements of a representative
/// intra-group submatrix and a representative inter-group pair:
///   - within every group, the O/L submatrix of `groups[0]` is replicated
///     positionally (groups must all have the same size);
///   - between any two distinct groups, the representative value is the
///     positional submatrix between groups[0] and groups[1].
/// All matrices the measured profile carries are replicated: O and L
/// always, G and R whenever present. Requires at least two groups of
/// equal size.
TopologyProfile replicate_profile(const TopologyProfile& measured,
                                  const RankGroups& groups);

/// Largest relative element-wise deviation between two same-size
/// profiles; the paper's observation "results did show similar
/// submatrices corresponding to similar subsystems" is checked by this
/// being small between a measured and a replicated profile.
double max_relative_deviation(const TopologyProfile& a,
                              const TopologyProfile& b);

}  // namespace optibar
