#include "topology/replicate.hpp"

#include <cmath>

#include "util/error.hpp"

namespace optibar {

TopologyProfile replicate_profile(const TopologyProfile& measured,
                                  const RankGroups& groups) {
  OPTIBAR_REQUIRE(groups.size() >= 2, "replication needs at least two groups");
  const std::size_t group_size = groups.front().size();
  OPTIBAR_REQUIRE(group_size > 0, "empty group");
  std::size_t total = 0;
  for (const auto& g : groups) {
    OPTIBAR_REQUIRE(g.size() == group_size,
                    "replication requires equal-size groups (" << g.size()
                                                               << " vs "
                                                               << group_size
                                                               << ")");
    for (std::size_t rank : g) {
      OPTIBAR_REQUIRE(rank < measured.ranks(), "group rank out of range");
    }
    total += g.size();
  }
  OPTIBAR_REQUIRE(total == measured.ranks(),
                  "groups must partition all " << measured.ranks() << " ranks");

  const auto& o_src = measured.overhead();
  const auto& l_src = measured.latency();
  Matrix<double> o(total, total);
  Matrix<double> l(total, total);
  Matrix<double> g;
  Matrix<double> r;
  if (measured.has_bandwidth()) {
    g = Matrix<double>(total, total);
  }
  if (measured.has_rma_latency()) {
    r = Matrix<double>(total, total);
  }

  // Representative submatrices: intra from group 0, inter from the
  // (group 0 -> group 1) block, both read positionally. G and R ride
  // along whenever the measured profile carries them — dropping either
  // would silently reprice collectives (G -> 0) and one-sided edges
  // (R -> L fallback) on the replicated machine.
  const auto& rep = groups[0];
  const auto& rep2 = groups[1];
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::size_t gj = 0; gj < groups.size(); ++gj) {
      for (std::size_t a = 0; a < group_size; ++a) {
        for (std::size_t b = 0; b < group_size; ++b) {
          const std::size_t dst_r = groups[gi][a];
          const std::size_t dst_c = groups[gj][b];
          const std::size_t src_r = rep[a];
          const std::size_t src_c = gi == gj ? rep[b] : rep2[b];
          o(dst_r, dst_c) = o_src(src_r, src_c);
          l(dst_r, dst_c) = l_src(src_r, src_c);
          if (!g.empty()) {
            g(dst_r, dst_c) = measured.bandwidth()(src_r, src_c);
          }
          if (!r.empty()) {
            r(dst_r, dst_c) = measured.rma_latency()(src_r, src_c);
          }
        }
      }
    }
  }
  TopologyProfile result =
      g.empty() ? TopologyProfile(std::move(o), std::move(l))
                : TopologyProfile(std::move(o), std::move(l), std::move(g));
  if (!r.empty()) {
    result.set_rma_latency(std::move(r));
  }
  return result;
}

double max_relative_deviation(const TopologyProfile& a,
                              const TopologyProfile& b) {
  OPTIBAR_REQUIRE(a.ranks() == b.ranks(),
                  "profiles differ in rank count: " << a.ranks() << " vs "
                                                    << b.ranks());
  double worst = 0.0;
  auto scan = [&](const Matrix<double>& ma, const Matrix<double>& mb) {
    for (std::size_t i = 0; i < ma.rows(); ++i) {
      for (std::size_t j = 0; j < ma.cols(); ++j) {
        const double denom = std::max(std::abs(ma(i, j)), std::abs(mb(i, j)));
        if (denom == 0.0) {
          continue;
        }
        worst = std::max(worst, std::abs(ma(i, j) - mb(i, j)) / denom);
      }
    }
  };
  scan(a.overhead(), b.overhead());
  scan(a.latency(), b.latency());
  if (a.has_bandwidth() && b.has_bandwidth()) {
    scan(a.bandwidth(), b.bandwidth());
  }
  if (a.has_rma_latency() && b.has_rma_latency()) {
    scan(a.rma_latency(), b.rma_latency());
  }
  return worst;
}

}  // namespace optibar
