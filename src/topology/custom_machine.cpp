#include "topology/custom_machine.hpp"

#include "util/error.hpp"

namespace optibar {

CustomMachine::CustomMachine(std::string name, std::vector<NodeShape> nodes,
                             LatencyTiers tiers)
    : name_(std::move(name)), nodes_(std::move(nodes)), tiers_(tiers) {
  OPTIBAR_REQUIRE(!nodes_.empty(), "machine needs at least one node");
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeShape& node = nodes_[n];
    OPTIBAR_REQUIRE(!node.sockets.empty(),
                    "node " << n << " needs at least one socket");
    for (std::size_t s = 0; s < node.sockets.size(); ++s) {
      const SocketShape& socket = node.sockets[s];
      OPTIBAR_REQUIRE(socket.cores > 0,
                      "node " << n << " socket " << s << " has zero cores");
      OPTIBAR_REQUIRE(socket.cores_per_cache > 0 &&
                          socket.cores % socket.cores_per_cache == 0,
                      "node " << n << " socket " << s
                              << ": cores_per_cache must divide cores");
      for (std::size_t c = 0; c < socket.cores; ++c) {
        locations_.push_back(Location{n, s, c});
      }
      total_cores_ += socket.cores;
    }
  }
}

CustomMachine::Location CustomMachine::location(std::size_t core_id) const {
  OPTIBAR_REQUIRE(core_id < total_cores_,
                  "core " << core_id << " out of range (" << total_cores_
                          << ")");
  return locations_[core_id];
}

LinkLevel CustomMachine::link_level(std::size_t core_a,
                                    std::size_t core_b) const {
  if (core_a == core_b) {
    return LinkLevel::kSelf;
  }
  const Location a = location(core_a);
  const Location b = location(core_b);
  if (a.node != b.node) {
    return LinkLevel::kInterNode;
  }
  if (a.socket != b.socket) {
    return LinkLevel::kCrossSocket;
  }
  const std::size_t per_cache =
      nodes_[a.node].sockets[a.socket].cores_per_cache;
  if (a.core / per_cache == b.core / per_cache) {
    return LinkLevel::kSharedCache;
  }
  return LinkLevel::kSameChip;
}

LinkCost CustomMachine::link_cost(std::size_t core_a,
                                  std::size_t core_b) const {
  const LinkLevel level = link_level(core_a, core_b);
  if (level == LinkLevel::kSelf) {
    return LinkCost{tiers_.self_overhead, 0.0};
  }
  return tiers_.at(level);
}

TopologyProfile generate_profile(const CustomMachine& machine,
                                 std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "need at least one rank");
  OPTIBAR_REQUIRE(ranks <= machine.total_cores(),
                  ranks << " ranks exceed " << machine.total_cores()
                        << " cores");
  Matrix<double> o(ranks, ranks);
  Matrix<double> l(ranks, ranks);
  Matrix<double> r(ranks, ranks);
  bool any_put = false;
  for (std::size_t i = 0; i < ranks; ++i) {
    for (std::size_t j = 0; j < ranks; ++j) {
      const LinkCost cost = machine.link_cost(i, j);
      o(i, j) = cost.overhead;
      l(i, j) = cost.latency;
      r(i, j) = i == j ? 0.0 : cost.put_latency;
      any_put = any_put || cost.put_latency > 0.0;
    }
  }
  TopologyProfile profile(std::move(o), std::move(l));
  // Tiers without R data keep the profile R-free (the L fallback), like
  // topology/generate.cpp.
  if (any_put) {
    profile.set_rma_latency(std::move(r));
  }
  return profile;
}

}  // namespace optibar
