#include "topology/generate.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {

namespace {

/// Deterministic symmetric per-pair jitter factor in
/// [1 - amplitude, 1 + amplitude]; depends only on (seed, min(i,j),
/// max(i,j)) so both directions and repeated runs agree.
double pair_jitter(std::uint64_t seed, std::size_t i, std::size_t j,
                   double amplitude) {
  if (amplitude == 0.0) {
    return 1.0;
  }
  const std::size_t lo = i < j ? i : j;
  const std::size_t hi = i < j ? j : i;
  Rng rng(seed ^ (0x51ED270B2F6E69ULL * (lo + 1)) ^
          (0xA24BAED4963EE407ULL * (hi + 1)));
  return 1.0 + amplitude * (2.0 * rng.next_double() - 1.0);
}

/// Directed jitter factor: depends on the ordered pair, so (i, j) and
/// (j, i) draw independently.
double directed_jitter(std::uint64_t seed, std::size_t i, std::size_t j,
                       double amplitude) {
  if (amplitude == 0.0) {
    return 1.0;
  }
  Rng rng(seed ^ (0x7C0FFEE1234567ULL * (i + 1)) ^
          (0x1D872B41C3F5A9ULL * (j + 1)));
  return 1.0 + amplitude * (2.0 * rng.next_double() - 1.0);
}

}  // namespace

TopologyProfile generate_profile(const MachineSpec& machine,
                                 const Mapping& mapping,
                                 const GenerateOptions& options) {
  OPTIBAR_REQUIRE(options.heterogeneity >= 0.0 && options.heterogeneity < 1.0,
                  "heterogeneity must be in [0,1), got "
                      << options.heterogeneity);
  OPTIBAR_REQUIRE(options.asymmetry >= 0.0 && options.asymmetry < 1.0,
                  "asymmetry must be in [0,1), got " << options.asymmetry);
  const std::size_t p = mapping.size();
  Matrix<double> o(p, p);
  Matrix<double> l(p, p);
  Matrix<double> g(p, p);
  Matrix<double> r(p, p);
  bool any_put = false;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      const LinkCost cost =
          machine.link_cost(mapping.core_of(i), mapping.core_of(j));
      const double jitter =
          i == j ? 1.0
                 : pair_jitter(options.seed, i, j, options.heterogeneity) *
                       directed_jitter(options.seed, i, j, options.asymmetry);
      o(i, j) = cost.overhead * jitter;
      l(i, j) = cost.latency * jitter;
      g(i, j) = i == j ? 0.0 : cost.per_byte * jitter;
      r(i, j) = i == j ? 0.0 : cost.put_latency * jitter;
      any_put = any_put || cost.put_latency > 0.0;
    }
  }
  TopologyProfile profile(std::move(o), std::move(l), std::move(g));
  // A machine whose tiers carry no R data (all zero put_latency) keeps
  // the profile R-free: the cost model then prices puts at the
  // conservative L fallback instead of at an impossible zero.
  if (any_put) {
    profile.set_rma_latency(std::move(r));
  }
  return profile;
}

TopologyProfile generate_profile(const MachineSpec& machine, std::size_t ranks,
                                 const GenerateOptions& options) {
  return generate_profile(machine, block_mapping(machine, ranks), options);
}

}  // namespace optibar
