// Ground-truth profile generation from a machine description.
//
// This is the substitute for running the Section IV-A benchmarks on a
// physical cluster: given a MachineSpec, a rank Mapping and optionally a
// deterministic heterogeneity jitter, produce the exact O and L matrices
// the machine "really" has. The discrete-event simulator consumes these
// as its ground truth; the profile *estimator* (src/profile) then
// re-derives them through the paper's measurement procedure, so tests
// can quantify estimation error against a known answer — something the
// paper could not do on real hardware.
#pragma once

#include <cstdint>

#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct GenerateOptions {
  /// Relative, per-pair multiplicative jitter amplitude; 0 disables.
  /// Jitter is symmetric (jitter(i,j) == jitter(j,i)) so the generated
  /// profile remains a metric, and deterministic in `seed`.
  double heterogeneity = 0.0;

  std::uint64_t seed = 42;

  /// Relative, *directed* multiplicative jitter amplitude; 0 disables.
  /// Section IV-A assumes symmetric links "to simplify the adaptive
  /// implementation ... but note that extending the cost matrices to
  /// cover asymmetric links is trivial" — this knob exercises that
  /// extension (e.g. duplex imbalance, asymmetric routes). The cost
  /// model and simulator consume directed entries as-is; only the
  /// clustering metric requires symmetrization (handled by the tuner).
  double asymmetry = 0.0;
};

/// Ground-truth profile for `ranks` ranks placed by `mapping` on
/// `machine`.
TopologyProfile generate_profile(const MachineSpec& machine,
                                 const Mapping& mapping,
                                 const GenerateOptions& options = {});

/// Convenience: block mapping over the given rank count.
TopologyProfile generate_profile(const MachineSpec& machine, std::size_t ranks,
                                 const GenerateOptions& options = {});

}  // namespace optibar
