// Irregular machine descriptions.
//
// MachineSpec covers the paper's homogeneous clusters; real installations
// mix node generations and core counts. CustomMachine describes an
// explicit list of nodes, each with its own sockets and per-socket core
// counts (and cache-sharing degree), under one latency tier table. It
// provides the same two queries profile generation needs — the total
// core count and the link tier between two cores — so the rest of the
// pipeline (O/L generation, clustering, composition) is untouched: the
// method only ever sees matrices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topology/latency.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct SocketShape {
  std::size_t cores = 0;
  /// Cores sharing a last-level cache slice; must divide `cores`.
  std::size_t cores_per_cache = 1;
};

struct NodeShape {
  std::vector<SocketShape> sockets;
};

class CustomMachine {
 public:
  CustomMachine(std::string name, std::vector<NodeShape> nodes,
                LatencyTiers tiers);

  const std::string& name() const { return name_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t total_cores() const { return total_cores_; }
  const LatencyTiers& tiers() const { return tiers_; }
  const std::vector<NodeShape>& nodes() const { return nodes_; }

  /// Hierarchy coordinates of a global core id (numbered node-major,
  /// then socket-major).
  struct Location {
    std::size_t node = 0;
    std::size_t socket = 0;
    std::size_t core = 0;
  };
  Location location(std::size_t core_id) const;

  LinkLevel link_level(std::size_t core_a, std::size_t core_b) const;
  LinkCost link_cost(std::size_t core_a, std::size_t core_b) const;

 private:
  std::string name_;
  std::vector<NodeShape> nodes_;
  LatencyTiers tiers_;
  std::size_t total_cores_ = 0;
  /// Flattened per-core coordinates for O(1) lookup.
  std::vector<Location> locations_;
};

/// Ground-truth profile of an irregular machine with rank r on core r
/// (ranks must not exceed total_cores; fewer ranks use the first cores).
TopologyProfile generate_profile(const CustomMachine& machine,
                                 std::size_t ranks);

}  // namespace optibar
