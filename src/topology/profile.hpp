// The topological profile: the paper's O and L matrices.
//
// For a P-process setup the model of Section IV is two P x P matrices:
//   O(i,j), i != j : startup cost of sending one message from i to j
//   O(i,i)         : cost of initiating a transmission with zero messages
//   L(i,j)         : marginal latency of adding one message from i to j
//                    to a non-empty batch
// Profiles are stored on disk to decouple the (expensive, machine-
// occupying) profiling step from the (cheap, offline) tuning step —
// Figure 1's central arrow. The text format is versioned and
// round-trippable to full double precision.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace optibar {

class TopologyProfile {
 public:
  TopologyProfile() = default;

  /// Takes ownership of square, equally-sized O and L matrices.
  TopologyProfile(Matrix<double> overhead, Matrix<double> latency);

  std::size_t ranks() const { return overhead_.rows(); }

  const Matrix<double>& overhead() const { return overhead_; }
  const Matrix<double>& latency() const { return latency_; }

  double o(std::size_t i, std::size_t j) const { return overhead_(i, j); }
  double l(std::size_t i, std::size_t j) const { return latency_(i, j); }

  /// Symmetric-link check (Section IV-A assumes O_ij == O_ji); tolerance
  /// is relative to the matrix magnitude.
  bool is_symmetric(double relative_tolerance = 1e-9) const;

  /// Replace O and L by their symmetric parts (arithmetic mean of the
  /// two directions). Used before clustering, which needs a metric.
  TopologyProfile symmetrized() const;

  /// Metric used for rank clustering (Section VII-A): the symmetrized
  /// one-message cost O(i,j); zero iff i == j for a valid profile.
  double distance(std::size_t i, std::size_t j) const;

  /// Largest pairwise distance — the "diameter" whose fraction
  /// parameterises SSS clustering.
  double diameter() const;

  /// Restrict the profile to a subset of ranks (submatrix extraction),
  /// preserving order of `ranks`.
  TopologyProfile restrict_to(const std::vector<std::size_t>& ranks) const;

  void save(std::ostream& os) const;
  static TopologyProfile load(std::istream& is);

  void save_file(const std::string& path) const;
  static TopologyProfile load_file(const std::string& path);

  bool operator==(const TopologyProfile& other) const = default;

 private:
  Matrix<double> overhead_;
  Matrix<double> latency_;
};

}  // namespace optibar
