// The topological profile: the paper's O and L matrices.
//
// For a P-process setup the model of Section IV is two P x P matrices:
//   O(i,j), i != j : startup cost of sending one message from i to j
//   O(i,i)         : cost of initiating a transmission with zero messages
//   L(i,j)         : marginal latency of adding one message from i to j
//                    to a non-empty batch
// The collective layer extends the model with an optional third matrix
//   G(i,j)         : marginal latency per payload byte from i to j
// so a message carrying b bytes costs L(i,j) + b * G(i,j) at the
// margin. A profile without G (the paper's pure signalling model, and
// every v1 profile file) prices payload at zero: g() returns 0 and all
// collective predictions degrade gracefully to the Eq. 1/2 terms.
// The one-sided transport backend adds a fourth optional matrix
//   R(i,j)         : remote-write delivery latency of a put from i to j
// (the NIC-flag path of Yu et al., PAPERS.md): a one-sided signal
// becomes visible at the receiver R(i,j) after injection and charges no
// receiver CPU overhead. A profile without R falls back to L — r()
// returns l(i,j) — so every pre-RMA profile prices one-sided edges
// conservatively instead of failing.
// Profiles are stored on disk to decouple the (expensive, machine-
// occupying) profiling step from the (cheap, offline) tuning step —
// Figure 1's central arrow. The text format is versioned (v1: O and L;
// v2 adds G; v3 adds R, with G still optional) and round-trippable to
// full double precision.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace optibar {

class TopologyProfile {
 public:
  TopologyProfile() = default;

  /// Takes ownership of square, equally-sized O and L matrices.
  TopologyProfile(Matrix<double> overhead, Matrix<double> latency);

  /// As above with a per-byte bandwidth matrix G (same shape).
  TopologyProfile(Matrix<double> overhead, Matrix<double> latency,
                  Matrix<double> bandwidth);

  std::size_t ranks() const { return overhead_.rows(); }

  const Matrix<double>& overhead() const { return overhead_; }
  const Matrix<double>& latency() const { return latency_; }

  /// Per-byte matrix; empty when the profile carries no bandwidth data.
  const Matrix<double>& bandwidth() const { return bandwidth_; }
  bool has_bandwidth() const { return !bandwidth_.empty(); }

  /// One-sided delivery matrix; empty when the profile has no R data.
  const Matrix<double>& rma_latency() const { return rma_latency_; }
  bool has_rma_latency() const { return !rma_latency_.empty(); }

  /// Attach a one-sided delivery matrix (same shape as O/L).
  void set_rma_latency(Matrix<double> rma_latency);

  double o(std::size_t i, std::size_t j) const { return overhead_(i, j); }
  double l(std::size_t i, std::size_t j) const { return latency_(i, j); }

  /// Seconds per payload byte i -> j; 0 for a profile without G.
  double g(std::size_t i, std::size_t j) const {
    return bandwidth_.empty() ? 0.0 : bandwidth_(i, j);
  }

  /// One-sided delivery latency i -> j; a profile without R prices a
  /// put like a two-sided message (the conservative L fallback).
  double r(std::size_t i, std::size_t j) const {
    return rma_latency_.empty() ? latency_(i, j) : rma_latency_(i, j);
  }

  /// Symmetric-link check (Section IV-A assumes O_ij == O_ji); tolerance
  /// is relative to the matrix magnitude.
  bool is_symmetric(double relative_tolerance = 1e-9) const;

  /// Replace O and L by their symmetric parts (arithmetic mean of the
  /// two directions). Used before clustering, which needs a metric.
  TopologyProfile symmetrized() const;

  /// Metric used for rank clustering (Section VII-A): the symmetrized
  /// one-message cost O(i,j); zero iff i == j for a valid profile.
  double distance(std::size_t i, std::size_t j) const;

  /// Largest pairwise distance — the "diameter" whose fraction
  /// parameterises SSS clustering.
  double diameter() const;

  /// Restrict the profile to a subset of ranks (submatrix extraction),
  /// preserving order of `ranks`.
  TopologyProfile restrict_to(const std::vector<std::size_t>& ranks) const;

  void save(std::ostream& os) const;
  static TopologyProfile load(std::istream& is);

  void save_file(const std::string& path) const;
  static TopologyProfile load_file(const std::string& path);

  bool operator==(const TopologyProfile& other) const = default;

 private:
  Matrix<double> overhead_;
  Matrix<double> latency_;
  Matrix<double> bandwidth_;    ///< empty when the profile has no G data
  Matrix<double> rma_latency_;  ///< empty when the profile has no R data
};

}  // namespace optibar
