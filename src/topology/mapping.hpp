// Rank-to-core mappings (affinity control).
//
// The paper pins each MPI rank to one core with sched_setaffinity and a
// one-to-one rank/core initializer (Section III); all of its topology
// profiles are taken *under a fixed mapping*, and the validity of a
// prediction depends on running under the same mapping. We model the
// mapping explicitly as a permutation-like table rank -> core id.
//
// Two policies matter for reproducing the paper:
//   - block: consecutive ranks fill a node before moving on,
//   - round_robin: ranks are dealt across the allocated nodes one by one
//     (the scheduler behaviour on the quad-core cluster that produces the
//     odd/even oscillation of the dissemination barrier in Figure 5).
// Both allocate ceil(P / cores_per_node) nodes, matching the paper's
// "2-node (9 through 16 process) case" reading.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topology/machine.hpp"

namespace optibar {

/// Immutable rank -> core assignment for P ranks on a machine.
class Mapping {
 public:
  /// Build from an explicit table; cores must be in range and distinct.
  Mapping(const MachineSpec& machine, std::vector<std::size_t> rank_to_core,
          std::string policy_name);

  std::size_t size() const { return rank_to_core_.size(); }
  std::size_t core_of(std::size_t rank) const;
  const std::vector<std::size_t>& table() const { return rank_to_core_; }
  const std::string& policy() const { return policy_name_; }

  /// Number of distinct nodes this mapping touches.
  std::size_t nodes_used(const MachineSpec& machine) const;

 private:
  std::vector<std::size_t> rank_to_core_;
  std::string policy_name_;
};

/// Consecutive ranks fill each node in turn.
Mapping block_mapping(const MachineSpec& machine, std::size_t ranks);

/// Ranks dealt round-robin over the ceil(P / cores_per_node) allocated
/// nodes; within a node, slots fill in order (socket 0 first).
Mapping round_robin_mapping(const MachineSpec& machine, std::size_t ranks);

/// User-supplied table (validated).
Mapping custom_mapping(const MachineSpec& machine,
                       std::vector<std::size_t> rank_to_core);

}  // namespace optibar
