// Latency tiers of a hierarchical interconnect.
//
// The paper's topological model reduces every pair of processes to two
// scalars (Section IV): O_ij, the startup overhead of targeting j from i,
// and L_ij, the marginal latency of adding one more message to a batch.
// On the clustered-SMP machines of the paper those scalars fall into a
// small number of tiers determined by where the two cores sit in the
// hierarchy. This header names those tiers; topology/generate.hpp turns a
// (MachineSpec, Mapping, LatencyTiers) triple into ground-truth O and L
// matrices, which stand in for the paper's physical testbeds.
#pragma once

namespace optibar {

/// Relationship between the cores hosting two ranks, ordered from
/// closest to farthest.
enum class LinkLevel {
  kSelf,         ///< i == j (the O_ii software-overhead diagonal)
  kSharedCache,  ///< cores sharing a last-level cache slice (core pair)
  kSameChip,     ///< same socket, distinct cache slices
  kCrossSocket,  ///< same node, different sockets
  kInterNode,    ///< different nodes (cluster interconnect)
};

/// Human-readable name ("self", "shared-cache", ...).
const char* to_string(LinkLevel level);

/// The (O, L, G, R) tuple of one tier. O and L are in seconds; G is in
/// seconds per byte. The paper's barrier model needs only O and L
/// (signals carry no payload); G extends the same tier table to
/// data-carrying collectives, where moving `b` bytes across a link adds
/// b * G to the message's marginal cost. Zero G (the default) recovers
/// the pure signalling model. R is the one-sided remote-write delivery
/// latency of the tier: across nodes an RDMA-style put bypasses the
/// receiver's protocol stack entirely and beats L + receiver
/// processing, while within a node the flag write plus polling
/// detection costs more than the shared-memory two-sided path — which
/// is exactly the structure that makes hybrid transport assignment
/// non-trivial. Zero R throughout a machine means "no one-sided data":
/// the generated profile then carries no R matrix and the cost model
/// falls back to pricing puts at L.
struct LinkCost {
  double overhead = 0.0;     ///< O: startup cost of the first message
  double latency = 0.0;      ///< L: marginal cost per additional message
  double per_byte = 0.0;     ///< G: marginal cost per payload byte
  double put_latency = 0.0;  ///< R: one-sided remote-write delivery
};

/// Full tier table of a machine. Defaults are zero; use the calibrated
/// presets in machine.hpp.
struct LatencyTiers {
  double self_overhead = 0.0;  ///< O_ii: cost of initiating zero messages
  LinkCost shared_cache;
  LinkCost same_chip;
  LinkCost cross_socket;
  LinkCost inter_node;

  /// Tier lookup for off-diagonal levels.
  const LinkCost& at(LinkLevel level) const;
};

}  // namespace optibar
