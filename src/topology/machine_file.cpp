#include "topology/machine_file.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

namespace {

/// Key-value scanner for one line's remaining tokens: `k1 v1 k2 v2 ...`.
class TokenStream {
 public:
  explicit TokenStream(std::istringstream& in, std::size_t line)
      : in_(in), line_(line) {}

  bool next(std::string& out) { return static_cast<bool>(in_ >> out); }

  std::string expect(const char* what) {
    std::string token;
    OPTIBAR_REQUIRE(next(token),
                    "line " << line_ << ": expected " << what);
    return token;
  }

  double expect_double(const char* what) {
    const std::string token = expect(what);
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      OPTIBAR_REQUIRE(used == token.size(), "trailing characters");
      return value;
    } catch (const Error&) {
      throw;
    } catch (...) {
      OPTIBAR_FAIL("line " << line_ << ": '" << token << "' is not a number ("
                           << what << ")");
    }
  }

  std::size_t expect_size(const char* what) {
    const double value = expect_double(what);
    OPTIBAR_REQUIRE(value >= 0 && value == static_cast<std::size_t>(value),
                    "line " << line_ << ": " << what
                            << " must be a non-negative integer");
    return static_cast<std::size_t>(value);
  }

  void expect_end() {
    std::string extra;
    OPTIBAR_REQUIRE(!next(extra),
                    "line " << line_ << ": unexpected token '" << extra << "'");
  }

  std::size_t line() const { return line_; }

 private:
  std::istringstream& in_;
  std::size_t line_;
};

/// Parse `cores N cache M sockets K` style key/value pairs into a map.
std::map<std::string, std::size_t> parse_pairs(TokenStream& tokens) {
  std::map<std::string, std::size_t> out;
  std::string key;
  while (tokens.next(key)) {
    OPTIBAR_REQUIRE(!out.count(key),
                    "line " << tokens.line() << ": duplicate key '" << key
                            << "'");
    out[key] = tokens.expect_size(key.c_str());
  }
  return out;
}

std::size_t take(std::map<std::string, std::size_t>& pairs,
                 const std::string& key, std::size_t line) {
  const auto it = pairs.find(key);
  OPTIBAR_REQUIRE(it != pairs.end(),
                  "line " << line << ": missing '" << key << "'");
  const std::size_t value = it->second;
  pairs.erase(it);
  return value;
}

std::size_t take_or(std::map<std::string, std::size_t>& pairs,
                    const std::string& key, std::size_t fallback) {
  const auto it = pairs.find(key);
  if (it == pairs.end()) {
    return fallback;
  }
  const std::size_t value = it->second;
  pairs.erase(it);
  return value;
}

void require_empty(const std::map<std::string, std::size_t>& pairs,
                   std::size_t line) {
  OPTIBAR_REQUIRE(pairs.empty(), "line " << line << ": unknown key '"
                                         << pairs.begin()->first << "'");
}

}  // namespace

MachineFile parse_machine_file(std::istream& is) {
  MachineFile file;
  bool seen_shape = false;
  bool tier_seen[5] = {false, false, false, false, false};

  std::string raw_line;
  std::size_t line_number = 0;
  while (std::getline(is, raw_line)) {
    ++line_number;
    // Strip comments.
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string::npos) {
      raw_line.erase(hash);
    }
    std::istringstream in(raw_line);
    std::string keyword;
    if (!(in >> keyword)) {
      continue;  // blank / comment-only line
    }
    TokenStream tokens(in, line_number);

    if (keyword == "machine") {
      // Rest of the line (unquoted or quoted) is the name.
      std::string rest;
      std::getline(in, rest);
      const std::size_t first = rest.find_first_not_of(" \t\"");
      const std::size_t last = rest.find_last_not_of(" \t\"");
      OPTIBAR_REQUIRE(first != std::string::npos,
                      "line " << line_number << ": machine needs a name");
      file.name = rest.substr(first, last - first + 1);
      continue;
    }

    if (keyword == "tier") {
      const std::string which = tokens.expect("tier name");
      double o = 0.0;
      double l = 0.0;
      bool have_o = false;
      std::string key;
      while (tokens.next(key)) {
        if (key == "o") {
          o = tokens.expect_double("o");
          have_o = true;
        } else if (key == "l") {
          l = tokens.expect_double("l");
        } else {
          OPTIBAR_FAIL("line " << line_number << ": unknown tier key '" << key
                               << "' (o, l)");
        }
      }
      OPTIBAR_REQUIRE(have_o, "line " << line_number << ": tier needs 'o'");
      OPTIBAR_REQUIRE(o >= 0.0 && l >= 0.0,
                      "line " << line_number << ": costs must be >= 0");
      if (which == "self") {
        file.tiers.self_overhead = o;
        tier_seen[0] = true;
      } else if (which == "cache") {
        file.tiers.shared_cache = {o, l};
        tier_seen[1] = true;
      } else if (which == "chip") {
        file.tiers.same_chip = {o, l};
        tier_seen[2] = true;
      } else if (which == "socket") {
        file.tiers.cross_socket = {o, l};
        tier_seen[3] = true;
      } else if (which == "node") {
        file.tiers.inter_node = {o, l};
        tier_seen[4] = true;
      } else {
        OPTIBAR_FAIL("line " << line_number << ": unknown tier '" << which
                             << "' (self, cache, chip, socket, node)");
      }
      continue;
    }

    if (keyword == "shape") {
      OPTIBAR_REQUIRE(!seen_shape, "line " << line_number
                                           << ": duplicate 'shape'");
      OPTIBAR_REQUIRE(file.node_shapes.empty(),
                      "line " << line_number
                              << ": 'shape' cannot mix with 'node' lines");
      auto pairs = parse_pairs(tokens);
      file.nodes = take(pairs, "nodes", line_number);
      file.sockets = take(pairs, "sockets", line_number);
      file.cores = take(pairs, "cores", line_number);
      file.cache = take_or(pairs, "cache", file.cores);
      require_empty(pairs, line_number);
      seen_shape = true;
      continue;
    }

    if (keyword == "node") {
      OPTIBAR_REQUIRE(!seen_shape,
                      "line " << line_number
                              << ": 'node' lines cannot mix with 'shape'");
      auto pairs = parse_pairs(tokens);
      const std::size_t sockets = take(pairs, "sockets", line_number);
      const std::size_t cores = take(pairs, "cores", line_number);
      const std::size_t cache = take_or(pairs, "cache", cores);
      require_empty(pairs, line_number);
      OPTIBAR_REQUIRE(sockets > 0 && cores > 0,
                      "line " << line_number
                              << ": sockets and cores must be positive");
      NodeShape node;
      node.sockets.assign(sockets, SocketShape{cores, cache});
      file.node_shapes.push_back(std::move(node));
      continue;
    }

    OPTIBAR_FAIL("line " << line_number << ": unknown keyword '" << keyword
                         << "' (machine, tier, shape, node)");
  }

  for (bool seen : tier_seen) {
    OPTIBAR_REQUIRE(
        seen, "machine file must define all five tiers "
              "(self, cache, chip, socket, node)");
  }
  OPTIBAR_REQUIRE(seen_shape || !file.node_shapes.empty(),
                  "machine file needs a 'shape' or at least one 'node' line");

  file.uniform = seen_shape;
  if (seen_shape) {
    NodeShape node;
    node.sockets.assign(file.sockets, SocketShape{file.cores, file.cache});
    file.node_shapes.assign(file.nodes, node);
  }
  // Validate through construction.
  (void)file.to_custom();
  if (file.uniform) {
    (void)file.to_spec();
  }
  return file;
}

MachineSpec MachineFile::to_spec() const {
  OPTIBAR_REQUIRE(uniform,
                  "machine file describes an irregular machine; uniform "
                  "MachineSpec unavailable (use to_custom)");
  return MachineSpec(name, nodes, sockets, cores, cache, tiers);
}

CustomMachine MachineFile::to_custom() const {
  return CustomMachine(name, node_shapes, tiers);
}

MachineFile load_machine_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return parse_machine_file(is);
}

}  // namespace optibar
