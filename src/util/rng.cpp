#include "util/rng.hpp"

#include <cmath>

namespace optibar {

double Rng::sqrt_neg2_log(double s) { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace optibar
