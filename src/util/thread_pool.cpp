#include "util/thread_pool.hpp"

#include <algorithm>

namespace optibar {

namespace {

/// Index of the worker owning the current thread, or npos on external
/// threads (used for push locality and steal start offsets).
constexpr std::size_t kExternal = static_cast<std::size_t>(-1);
thread_local std::size_t tls_worker_index = kExternal;

}  // namespace

ThreadPool::ThreadPool(std::size_t width) {
  if (width == 0) {
    width = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t workers = width - 1;
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  Task task;
  while (true) {
    if (try_pop(task)) {
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    // Drain remaining tasks even after stop so no group waits forever.
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::push(Task task) {
  // Owners push to their own deque front (LIFO locality); external
  // threads spread round-robin.
  const std::size_t owner = tls_worker_index;
  const std::size_t target =
      owner != kExternal && owner < queues_.size()
          ? owner
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    if (owner == target) {
      queues_[target]->tasks.push_front(std::move(task));
    } else {
      queues_[target]->tasks.push_back(std::move(task));
    }
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(Task& out) {
  const std::size_t n = queues_.size();
  if (n == 0 || queued_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  const std::size_t self = tls_worker_index;
  // Own queue first (front = most recently pushed), then steal from the
  // back of the others, starting after our own slot to spread thieves.
  if (self != kExternal && self < n) {
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->tasks.empty()) {
      out = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  const std::size_t start = self != kExternal && self < n ? self + 1 : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (start + k) % n;
    std::lock_guard<std::mutex> lock(queues_[i]->mutex);
    if (!queues_[i]->tasks.empty()) {
      out = std::move(queues_[i]->tasks.back());
      queues_[i]->tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ThreadPool::execute(Task& task) {
  try {
    task.fn();
  } catch (...) {
    task.group->record_error(std::current_exception());
  }
  task.group->finish_one();
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Errors are observable via an explicit wait(); a destructor that
    // was reached by stack unwinding must not throw again.
  }
}

void ThreadPool::TaskGroup::run(std::function<void()> task) {
  if (pool_.queues_.empty()) {
    // Width-1 pool: inline execution, deferred error surfacing.
    try {
      task();
    } catch (...) {
      record_error(std::current_exception());
    }
    return;
  }
  pending_.fetch_add(1, std::memory_order_release);
  pool_.push(Task{std::move(task), this});
}

void ThreadPool::TaskGroup::wait() {
  Task task;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (pool_.try_pop(task)) {
      // Help: the stolen task may belong to any group; executing it
      // makes global progress and keeps the recursion deadlock-free.
      pool_.execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             pool_.queued_.load(std::memory_order_acquire) > 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::TaskGroup::record_error(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) {
    error_ = error;
  }
}

void ThreadPool::TaskGroup::finish_one() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (queues_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  auto runner = [&next, n, &body] {
    std::size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
      try {
        body(i);
      } catch (...) {
        next.store(n, std::memory_order_relaxed);  // stop issuing work
        throw;
      }
    }
  };
  TaskGroup group(*this);
  const std::size_t helpers = std::min(queues_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    group.run(runner);
  }
  std::exception_ptr caller_error;
  try {
    runner();
  } catch (...) {
    caller_error = std::current_exception();
  }
  group.wait();  // may rethrow a worker error first
  if (caller_error) {
    std::rethrow_exception(caller_error);
  }
}

}  // namespace optibar
