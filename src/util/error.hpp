// Error handling primitives for the optibar library.
//
// All library-level precondition violations throw optibar::Error, which
// carries a formatted message. OPTIBAR_REQUIRE is the standard guard used
// at public API boundaries; internal invariants use OPTIBAR_ASSERT which
// compiles to the same check (we never silently disable invariant checks:
// barrier correctness bugs are far more expensive than a branch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace optibar {

/// Exception type thrown on any precondition or invariant violation
/// inside the optibar library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Exception type for disk-format and file-system failures: unreadable
/// files, truncated or malformed serialized data, out-of-range counts
/// in headers. Derives from Error so existing catch sites keep working;
/// the CLI maps it to a distinct exit code (3) so scripts can tell "your
/// input file is bad" from "you invoked the tool wrong".
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {

inline std::string format_error(std::string_view file, int line,
                                std::string_view cond,
                                const std::string& message) {
  std::ostringstream os;
  os << "optibar error at " << file << ":" << line;
  if (!cond.empty()) {
    os << " [" << cond << "]";
  }
  if (!message.empty()) {
    os << ": " << message;
  }
  return os.str();
}

[[noreturn]] inline void raise(std::string_view file, int line,
                               std::string_view cond,
                               const std::string& message) {
  throw Error(format_error(file, line, cond, message));
}

[[noreturn]] inline void raise_io(std::string_view file, int line,
                                  std::string_view cond,
                                  const std::string& message) {
  throw IoError(format_error(file, line, cond, message));
}

}  // namespace detail

}  // namespace optibar

/// Check a caller-facing precondition; throws optibar::Error on failure.
/// The message argument is streamed, so `OPTIBAR_REQUIRE(n > 0, "n=" << n)`
/// works.
#define OPTIBAR_REQUIRE(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream optibar_require_os_;                            \
      optibar_require_os_ << msg; /* NOLINT */                           \
      ::optibar::detail::raise(__FILE__, __LINE__, #cond,                \
                               optibar_require_os_.str());               \
    }                                                                    \
  } while (false)

/// Check an internal invariant. Same behaviour as OPTIBAR_REQUIRE; kept
/// as a separate macro so call sites document intent.
#define OPTIBAR_ASSERT(cond, msg) OPTIBAR_REQUIRE(cond, msg)

/// Signal an unconditionally-reached error path.
#define OPTIBAR_FAIL(msg)                                                \
  do {                                                                   \
    std::ostringstream optibar_fail_os_;                                 \
    optibar_fail_os_ << msg; /* NOLINT */                                \
    ::optibar::detail::raise(__FILE__, __LINE__, "",                     \
                             optibar_fail_os_.str());                    \
  } while (false)

/// Check a condition on file contents or file-system state; throws
/// optibar::IoError on failure. Use in loaders/parsers so callers can
/// distinguish bad input files from programming errors.
#define OPTIBAR_IO_REQUIRE(cond, msg)                                    \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream optibar_io_os_;                                 \
      optibar_io_os_ << msg; /* NOLINT */                                \
      ::optibar::detail::raise_io(__FILE__, __LINE__, #cond,             \
                                  optibar_io_os_.str());                 \
    }                                                                    \
  } while (false)

/// Signal an unconditionally-reached IO/parse error path.
#define OPTIBAR_IO_FAIL(msg)                                             \
  do {                                                                   \
    std::ostringstream optibar_io_fail_os_;                              \
    optibar_io_fail_os_ << msg; /* NOLINT */                             \
    ::optibar::detail::raise_io(__FILE__, __LINE__, "",                  \
                                optibar_io_fail_os_.str());              \
  } while (false)
