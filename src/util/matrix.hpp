// Dense row-major matrix used throughout optibar.
//
// Two instantiations carry the whole paper:
//   Matrix<double>  — the O and L cost matrices of the topological model
//   BoolMatrix      — the boolean incidence matrices S_0..S_k of the
//                     algorithmic model (stored as uint8_t; arithmetic is
//                     over the boolean semiring where + is OR and * is AND)
//
// The class is intentionally a plain value type: cheap to copy at the
// sizes involved (P <= a few hundred), regular, and hashable by content.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace optibar {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer lists; all rows must have equal
  /// length. `Matrix<int> m{{1,2},{3,4}};`
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      OPTIBAR_REQUIRE(row.size() == cols_,
                      "ragged initializer: expected " << cols_
                                                      << " columns, got "
                                                      << row.size());
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      m(i, i) = T{1};
    }
    return m;
  }

  static Matrix filled(std::size_t rows, std::size_t cols, T value) {
    return Matrix(rows, cols, value);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    OPTIBAR_ASSERT(r < rows_ && c < cols_,
                   "index (" << r << "," << c << ") out of bounds for "
                             << rows_ << "x" << cols_);
    return data_[r * cols_ + c];
  }

  const T& operator()(std::size_t r, std::size_t c) const {
    OPTIBAR_ASSERT(r < rows_ && c < cols_,
                   "index (" << r << "," << c << ") out of bounds for "
                             << rows_ << "x" << cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops (simulator inner loops).
  T& at_unchecked(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& at_unchecked(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const { return data_; }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        t(c, r) = (*this)(r, c);
      }
    }
    return t;
  }

  /// Extract the submatrix of the given rows x cols index sets.
  Matrix submatrix(const std::vector<std::size_t>& row_idx,
                   const std::vector<std::size_t>& col_idx) const {
    Matrix s(row_idx.size(), col_idx.size());
    for (std::size_t r = 0; r < row_idx.size(); ++r) {
      OPTIBAR_REQUIRE(row_idx[r] < rows_, "row index out of range");
      for (std::size_t c = 0; c < col_idx.size(); ++c) {
        OPTIBAR_REQUIRE(col_idx[c] < cols_, "col index out of range");
        s(r, c) = (*this)(row_idx[r], col_idx[c]);
      }
    }
    return s;
  }

  /// Principal submatrix over one index set (rows == cols), the common
  /// case when restricting a P x P cost matrix to a rank cluster.
  Matrix submatrix(const std::vector<std::size_t>& idx) const {
    return submatrix(idx, idx);
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }
  bool operator!=(const Matrix& other) const { return !(*this == other); }

  /// Count of non-zero entries.
  std::size_t count_nonzero() const {
    std::size_t n = 0;
    for (const T& v : data_) {
      if (v != T{}) {
        ++n;
      }
    }
    return n;
  }

  bool all_nonzero() const { return count_nonzero() == data_.size(); }
  bool all_zero() const { return count_nonzero() == 0; }

  T max_element() const {
    OPTIBAR_REQUIRE(!data_.empty(), "max_element of empty matrix");
    T m = data_.front();
    for (const T& v : data_) {
      if (v > m) {
        m = v;
      }
    }
    return m;
  }

  T min_element() const {
    OPTIBAR_REQUIRE(!data_.empty(), "min_element of empty matrix");
    T m = data_.front();
    for (const T& v : data_) {
      if (v < m) {
        m = v;
      }
    }
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Boolean incidence matrix over the (OR, AND) semiring.
using BoolMatrix = Matrix<std::uint8_t>;

/// Boolean matrix product over the (OR, AND) semiring:
/// (A*B)(i,j) = OR_k ( A(i,k) AND B(k,j) ).
inline BoolMatrix bool_multiply(const BoolMatrix& a, const BoolMatrix& b) {
  OPTIBAR_REQUIRE(a.cols() == b.rows(),
                  "dimension mismatch in bool_multiply: " << a.rows() << "x"
                                                          << a.cols() << " * "
                                                          << b.rows() << "x"
                                                          << b.cols());
  BoolMatrix c(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      if (!a.at_unchecked(i, k)) {
        continue;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) {
        if (b.at_unchecked(k, j)) {
          c.at_unchecked(i, j) = 1;
        }
      }
    }
  }
  return c;
}

/// Boolean matrix sum (element-wise OR).
inline BoolMatrix bool_add(const BoolMatrix& a, const BoolMatrix& b) {
  OPTIBAR_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "dimension mismatch in bool_add");
  BoolMatrix c(a.rows(), a.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      c.at_unchecked(i, j) =
          static_cast<std::uint8_t>(a.at_unchecked(i, j) || b.at_unchecked(i, j));
    }
  }
  return c;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c != 0) {
        os << ' ';
      }
      // uint8_t would print as a character; promote to a number.
      if constexpr (sizeof(T) == 1) {
        os << static_cast<int>(m(r, c));
      } else {
        os << m(r, c);
      }
    }
    os << '\n';
  }
  return os;
}

}  // namespace optibar
