#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace optibar {

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
  OPTIBAR_REQUIRE(x.size() == y.size(),
                  "least_squares: x and y differ in length (" << x.size()
                                                              << " vs "
                                                              << y.size()
                                                              << ")");
  OPTIBAR_REQUIRE(x.size() >= 2, "least_squares: need at least 2 points");

  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  OPTIBAR_REQUIRE(sxx > 0.0, "least_squares: all x values are identical");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // r^2 = explained variance / total variance; define as 1 for a
  // degenerate all-equal-y sample (the line fits perfectly).
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double mean(std::span<const double> values) {
  OPTIBAR_REQUIRE(!values.empty(), "mean of empty sample");
  double s = 0.0;
  for (double v : values) {
    s += v;
  }
  return s / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) {
    s += (v - m) * (v - m);
  }
  return s / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double percentile(std::span<const double> values, double p) {
  OPTIBAR_REQUIRE(!values.empty(), "percentile of empty sample");
  OPTIBAR_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  OPTIBAR_REQUIRE(!values.empty(), "summarize of empty sample");
  Summary s;
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.p50 = percentile(values, 50.0);
  s.p95 = percentile(values, 95.0);
  s.max = *std::max_element(values.begin(), values.end());
  return s;
}

}  // namespace optibar
