// ASCII heat map rendering of a cost matrix.
//
// Reproduces Figure 9 of the paper ("L Matrix Heat Map, 2x4 cores") in a
// terminal: each cell is shaded by one of a ramp of glyphs proportional
// to its value, so the two dark on-chip 4x4 blocks of a dual quad-core
// node are directly visible in bench output.
#pragma once

#include <string>

#include "util/matrix.hpp"

namespace optibar {

struct HeatmapOptions {
  /// Glyph ramp from lowest to highest value.
  std::string ramp = " .:-=+*#%@";
  /// Print row/column indices around the map.
  bool axes = true;
  /// Width of each cell in characters (>= 1); 2 reads better.
  int cell_width = 2;
};

/// Render the matrix as an ASCII heat map. Values are normalised to the
/// matrix min/max; a constant matrix renders with the lowest glyph.
std::string render_heatmap(const Matrix<double>& m,
                           const HeatmapOptions& options = {});

}  // namespace optibar
