// Prediction-fidelity metrics.
//
// Section VI argues the coupled model "clearly captures the interaction
// between the algorithm and topology ... immediately visible from the
// shape of the graphs, and their relative displacements, to an error of
// approximately 200us". This header quantifies that argument: absolute
// and relative error statistics, plus Spearman rank correlation between
// a predicted and a measured series — the formal version of "the shapes
// match and the ordering is right".
#pragma once

#include <cstddef>
#include <span>

namespace optibar {

/// Spearman rank correlation (Pearson correlation of average ranks;
/// handles ties). Returns a value in [-1, 1]; requires >= 2 points and
/// at least one distinct value per series.
double spearman_correlation(std::span<const double> a,
                            std::span<const double> b);

struct FidelityStats {
  std::size_t points = 0;
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  /// Mean of |predicted - measured| / measured.
  double mean_rel_error = 0.0;
  /// Spearman correlation between the two series.
  double rank_correlation = 0.0;
};

/// Compare a predicted against a measured series (same length, measured
/// entries must be positive).
FidelityStats fidelity(std::span<const double> predicted,
                       std::span<const double> measured);

}  // namespace optibar
