// Plain-text table and CSV emission for the bench harnesses.
//
// Every figure-reproduction bench prints (a) a human-readable aligned
// table and (b) machine-readable CSV, so EXPERIMENTS.md numbers can be
// traced to a bench run verbatim.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace optibar {

/// Column-aligned table accumulated row by row, printed on demand.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 6);
  static std::string num(std::size_t v);

  std::size_t row_count() const { return rows_.size(); }

  /// Print with padded, space-separated columns.
  void print(std::ostream& os) const;

  /// Print as RFC-4180-ish CSV (no quoting needed for our content, but
  /// cells containing commas are quoted anyway).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optibar
