#include "util/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace optibar {

namespace {

/// Average ranks (1-based) with ties sharing the mean of their span.
std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double shared = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = shared;
    }
    i = j + 1;
  }
  return ranks;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const auto n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  OPTIBAR_REQUIRE(saa > 0.0 && sbb > 0.0,
                  "correlation undefined for a constant series");
  return sab / std::sqrt(saa * sbb);
}

}  // namespace

double spearman_correlation(std::span<const double> a,
                            std::span<const double> b) {
  OPTIBAR_REQUIRE(a.size() == b.size(), "series lengths differ");
  OPTIBAR_REQUIRE(a.size() >= 2, "need at least two points");
  return pearson(average_ranks(a), average_ranks(b));
}

FidelityStats fidelity(std::span<const double> predicted,
                       std::span<const double> measured) {
  OPTIBAR_REQUIRE(predicted.size() == measured.size(),
                  "series lengths differ");
  OPTIBAR_REQUIRE(predicted.size() >= 2, "need at least two points");
  FidelityStats stats;
  stats.points = predicted.size();
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    OPTIBAR_REQUIRE(measured[i] > 0.0, "measured values must be positive");
    const double abs_error = std::abs(predicted[i] - measured[i]);
    stats.mean_abs_error += abs_error;
    stats.max_abs_error = std::max(stats.max_abs_error, abs_error);
    stats.mean_rel_error += abs_error / measured[i];
  }
  stats.mean_abs_error /= static_cast<double>(stats.points);
  stats.mean_rel_error /= static_cast<double>(stats.points);
  stats.rank_correlation = spearman_correlation(predicted, measured);
  return stats;
}

}  // namespace optibar
