// Work-stealing thread pool for the parallel tuning engine.
//
// The paper dismisses searching the admissible matrix-sequence space as
// "quite computationally demanding" (Section VII-B); this pool is how we
// buy that compute back. Design:
//
//   - one lock-protected deque per worker; owners pop LIFO from the
//     front (locality for the recursive composer), thieves steal FIFO
//     from the back;
//   - fork-join via TaskGroup: wait() *helps* — it executes queued
//     tasks while its own are outstanding, so nested parallelism
//     (parallel children spawning parallel candidate scoring) cannot
//     deadlock and never idles the caller;
//   - a pool of width 1 spawns no threads and runs every task inline on
//     the submitting thread, making the serial path byte-for-byte the
//     code the parallel path runs per task. Tuning results are
//     therefore bit-identical at any width (callers reduce results in
//     deterministic index order).
//
// Tasks must be CPU-bound and must not block on anything other than
// their own TaskGroup; the pool makes no fairness guarantees.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace optibar {

class ThreadPool {
 public:
  /// `width` is the total execution width *including* the calling
  /// thread: width w spawns w-1 workers. 0 means one per hardware
  /// thread.
  explicit ThreadPool(std::size_t width = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width including the calling thread (>= 1).
  std::size_t width() const { return queues_.size() + 1; }

  /// A fork-join scope. All tasks run() through a group finish before
  /// wait() returns; the first task exception is rethrown there.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    /// Blocks (helping) until all tasks finished; errors are dropped —
    /// call wait() explicitly to observe them.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Schedule a task. On a width-1 pool the task runs inline; its
    /// exception (if any) still surfaces at wait().
    void run(std::function<void()> task);

    /// Help execute pool tasks until every task of this group is done,
    /// then rethrow the group's first exception, if any.
    void wait();

   private:
    friend class ThreadPool;
    void record_error(std::exception_ptr error);
    void finish_one();

    ThreadPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::exception_ptr error_;
  };

  /// Run body(0..n-1) across the pool; the caller participates. Order
  /// of execution is unspecified; bodies write to index-owned slots.
  /// Rethrows the first body exception after all bodies stopped.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  void push(Task task);
  bool try_pop(Task& out);
  void execute(Task& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace optibar
