#include "util/heatmap.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

std::string render_heatmap(const Matrix<double>& m,
                           const HeatmapOptions& options) {
  OPTIBAR_REQUIRE(!m.empty(), "render_heatmap of empty matrix");
  OPTIBAR_REQUIRE(!options.ramp.empty(), "empty glyph ramp");
  OPTIBAR_REQUIRE(options.cell_width >= 1, "cell_width must be >= 1");

  const double lo = m.min_element();
  const double hi = m.max_element();
  const double span = hi - lo;
  const auto levels = options.ramp.size();

  auto glyph = [&](double v) {
    std::size_t level = 0;
    if (span > 0.0) {
      const double t = (v - lo) / span;
      level = std::min(levels - 1,
                       static_cast<std::size_t>(t * static_cast<double>(levels)));
    }
    return options.ramp[level];
  };

  std::ostringstream os;
  if (options.axes) {
    os << "    ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c % 10) << std::string(static_cast<std::size_t>(options.cell_width - 1), ' ');
    }
    os << '\n';
  }
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (options.axes) {
      os << (r < 10 ? " " : "") << r << "  ";
    }
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << std::string(static_cast<std::size_t>(options.cell_width), glyph(m(r, c)));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace optibar
