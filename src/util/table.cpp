#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPTIBAR_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  OPTIBAR_REQUIRE(cells.size() == headers_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find(',') != std::string::npos) {
      os << '"' << cell << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      emit_cell(row[c]);
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace optibar
