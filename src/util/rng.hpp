// Deterministic random number generation.
//
// Everything stochastic in optibar (measurement noise, clustering
// tie-breaks, synthetic workloads) draws from this generator so that
// benches and tests are reproducible bit-for-bit across runs. The
// implementation is xoshiro256**, seeded through SplitMix64 as its
// authors recommend; we avoid std::mt19937 because its distributions are
// not specified identically across standard libraries.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace optibar {

/// xoshiro256** PRNG with SplitMix64 seeding. Regular value type; copy
/// to fork a stream deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the single seed word into full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    // 53 high-quality bits -> [0,1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    OPTIBAR_REQUIRE(lo <= hi, "uniform: lo > hi");
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be positive. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t n) {
    OPTIBAR_REQUIRE(n > 0, "next_below(0)");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  /// Standard normal via Marsaglia polar method.
  double next_normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrt_neg2_log(s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mu, double sigma) { return mu + sigma * next_normal(); }

  /// Fork a statistically independent child stream, e.g. one per rank.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (stream_id * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static double sqrt_neg2_log(double s);

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace optibar
