// Small statistics toolkit.
//
// The paper's topology model is estimated from repeated measurements:
//   - O_ij is the *intercept* of a least-squares line fit over message
//     sizes (the Hockney-model startup cost, Section IV-A),
//   - L_ij is the *gradient* of a least-squares line fit over message
//     counts,
//   - O_ii and each sample point are arithmetic means of 25 repetitions.
// This header provides exactly those primitives plus the usual summary
// statistics used by the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace optibar {

/// Result of an ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
};

/// Ordinary least-squares fit by the method of, well, least squares.
/// Requires at least two distinct x values.
LinearFit least_squares(std::span<const double> x, std::span<const double> y);

double mean(std::span<const double> values);
double variance(std::span<const double> values);  // population variance
double stddev(std::span<const double> values);
double median(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> values, double p);

/// Summary of a sample, as printed by the bench harnesses.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

}  // namespace optibar
