#include "collective/simulate.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace optibar {

namespace {

/// Per-stage dense surcharge matrices: bytes(src -> dst) * G(src, dst).
std::vector<Matrix<double>> payload_costs(const CollectiveSchedule& schedule,
                                          const TopologyProfile& profile) {
  const std::size_t p = schedule.ranks();
  std::vector<Matrix<double>> costs;
  costs.reserve(schedule.stage_count());
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    Matrix<double> m(p, p, 0.0);
    for (const CollectiveEdge& e : schedule.stage(s)) {
      m(e.src, e.dst) = static_cast<double>(schedule.edge_bytes(e)) *
                        profile.g(e.src, e.dst);
    }
    costs.push_back(std::move(m));
  }
  return costs;
}

}  // namespace

SimResult simulate_collective(const CollectiveSchedule& schedule,
                              const TopologyProfile& profile,
                              const SimOptions& options) {
  OPTIBAR_REQUIRE(!options.extra_message_cost,
                  "simulate_collective owns the extra_message_cost hook; "
                  "leave it unset");
  auto costs = std::make_shared<std::vector<Matrix<double>>>(
      payload_costs(schedule, profile));
  SimOptions sim = options;
  sim.extra_message_cost = [costs](std::size_t stage, std::size_t src,
                                   std::size_t dst) {
    return (*costs)[stage](src, dst);
  };
  return simulate(schedule.signal_schedule(), profile, sim);
}

double simulate_collective_mean_time(const CollectiveSchedule& schedule,
                                     const TopologyProfile& profile,
                                     const SimOptions& options,
                                     std::size_t repetitions) {
  OPTIBAR_REQUIRE(repetitions > 0, "repetitions must be positive");
  double total = 0.0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    SimOptions rep_options = options;
    rep_options.seed = options.seed + 0x9E3779B9ULL * (rep + 1);
    total +=
        simulate_collective(schedule, profile, rep_options).completion_time();
  }
  return total / static_cast<double>(repetitions);
}

}  // namespace optibar
