#include "collective/predict.hpp"

#include <vector>

#include "util/error.hpp"

namespace optibar {

void compile_collective(const CollectiveSchedule& schedule,
                        const TopologyProfile& profile,
                        CompiledSchedule& compiled) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(profile.ranks() == p,
                  "profile has " << profile.ranks() << " ranks, schedule has "
                                 << p);
  std::vector<std::vector<CompiledEdge>> stage_edges(schedule.stage_count());
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const CollectiveStage& stage = schedule.stage(s);
    stage_edges[s].reserve(stage.size());
    for (const CollectiveEdge& e : stage) {
      const double bytes = static_cast<double>(schedule.edge_bytes(e));
      stage_edges[s].push_back(CompiledEdge{
          e.src, e.dst, profile.l(e.src, e.dst) + bytes * profile.g(e.src, e.dst),
          profile.o(e.src, e.dst)});
    }
  }
  std::vector<double> self_overhead(p);
  for (std::size_t i = 0; i < p; ++i) {
    self_overhead[i] = profile.o(i, i);
  }
  compiled.compile_edges(p, stage_edges, self_overhead);
}

Prediction predict_collective(const CollectiveSchedule& schedule,
                              const TopologyProfile& profile,
                              const PredictOptions& options) {
  CompiledSchedule compiled;
  compile_collective(schedule, profile, compiled);
  PredictWorkspace workspace;
  Prediction out;
  predict_into(compiled, options, workspace, out);
  return out;
}

double predicted_collective_time(const CollectiveSchedule& schedule,
                                 const TopologyProfile& profile,
                                 const PredictOptions& options) {
  return predict_collective(schedule, profile, options).critical_path;
}

}  // namespace optibar
