// Topology-tuned collectives on the barrier engine.
//
// The same recipe as core/tuner.hpp, applied to data-carrying
// collectives: symmetrize the profile, build the cluster tree
// (Section VII-A), generate candidate schedules, score each with the
// compiled payload-aware predictor, and keep the cheapest. The
// candidate set is the union of
//   - every classic generator for the op (binomial, linear, recursive
//     doubling, ring, reduce+bcast) at full P, and
//   - hierarchical compositions over the cluster tree: per-cluster
//     binomial phases stitched through cluster representatives, the
//     collective analogue of the composer's rep-phase construction —
//     cross-cluster traffic touches only one rank per cluster, which is
//     what wins on clustered-SMP profiles.
// Because the classics are always in the pool, the tuned result is by
// construction never predicted worse than the best classic — the
// acceptance bar of the tuner tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "collective/schedule.hpp"
#include "core/engine_options.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct CollectiveTuneOptions {
  CollectiveOp op = CollectiveOp::kAllreduce;
  /// Total payload size; must be a multiple of elem_bytes. 0 tunes the
  /// pure signalling pattern (a barrier-shaped collective).
  std::size_t payload_bytes = 0;
  /// Root rank for rooted ops; ignored for allreduce.
  std::size_t root = 0;
  /// Element width; the payload is payload_bytes / elem_bytes elements.
  std::size_t elem_bytes = 8;
};

/// One scored candidate (kept for diagnostics and candidate tables).
struct CollectiveCandidate {
  std::string name;
  double predicted_cost = 0.0;
};

class CollectiveTuneResult {
 public:
  CollectiveTuneResult(TopologyProfile profile, CollectiveSchedule schedule,
                       std::string name, double predicted_cost,
                       std::vector<CollectiveCandidate> candidates);

  /// The symmetrized profile the schedule was scored against.
  const TopologyProfile& profile() const { return profile_; }
  const CollectiveSchedule& schedule() const { return schedule_; }
  /// Name of the winning candidate.
  const std::string& name() const { return name_; }
  double predicted_cost() const { return predicted_cost_; }
  /// All scored candidates, in generation order.
  const std::vector<CollectiveCandidate>& candidates() const {
    return candidates_;
  }

  /// Multi-line report: one line per candidate with the winner marked.
  std::string describe() const;

 private:
  TopologyProfile profile_;
  CollectiveSchedule schedule_;
  std::string name_;
  double predicted_cost_ = 0.0;
  std::vector<CollectiveCandidate> candidates_;
};

/// Tune one collective for `profile`. Clustering and threading follow
/// `engine` (the same knobs as tune_barrier); op, payload and root come
/// from `options`.
CollectiveTuneResult tune_collective(const TopologyProfile& profile,
                                     const CollectiveTuneOptions& options,
                                     const EngineOptions& engine = {});

}  // namespace optibar
