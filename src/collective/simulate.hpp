// Discrete-event simulation of collective schedules.
//
// A collective runs through the same netsim engine as a barrier: the
// boolean signal projection drives the event loop, and the payload is
// priced by the engine's extra-cost hook — every edge carrying b bytes
// is surcharged b * G(src, dst) seconds wherever the engine charges
// the message (injection, shared egress, receiver processing). The
// returned SimResult feeds the existing trace exporters unchanged, so
// an allreduce wavefront renders in Perfetto exactly like a barrier.
#pragma once

#include <cstddef>

#include "collective/schedule.hpp"
#include "netsim/engine.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// Execute `schedule` once on the event engine. `options.extra_message_cost`
/// must be unset (the payload surcharge owns that hook).
SimResult simulate_collective(const CollectiveSchedule& schedule,
                              const TopologyProfile& profile,
                              const SimOptions& options = {});

/// Mean completion time over `repetitions` derived-seed runs — the
/// collective analogue of simulate_mean_time.
double simulate_collective_mean_time(const CollectiveSchedule& schedule,
                                     const TopologyProfile& profile,
                                     const SimOptions& options,
                                     std::size_t repetitions);

}  // namespace optibar
