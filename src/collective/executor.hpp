// End-to-end collective execution on the simmpi runtime.
//
// The collective counterpart of simmpi::ScheduleExecutor: per rank and
// stage it precomputes the send and receive lists of a
// CollectiveSchedule. The stage semantics match the serial interpreter
// exactly — outgoing sub-ranges are copied out of the rank's buffer
// *before* any incoming data of the stage is applied (the snapshot
// rule), and incoming edges are applied in ascending source order — so
// a valid schedule's execution is bit-exact against execute_serial()
// and the oracle, which is what makes data correctness (not just
// timing) testable on the threaded runtime.
//
// Like the barrier executor, execution is handle-based
// (MPI_Iallreduce-style): post() issues stage 0 and returns, test()
// polls and advances, wait() finishes in bounded progress slices, and
// the blocking execute() is literally wait(post()) — so the nonblocking
// lifecycle inherits the snapshot/apply ordering (and therefore the
// bit-exactness guarantee) by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "collective/schedule.hpp"
#include "simmpi/executor_options.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"

namespace optibar {

class CollectiveExecutor {
 public:
  /// One in-flight collective episode of one rank. Move-only; the
  /// handle owns the current stage's requests and inbox. The buffer
  /// passed to post() is transformed in place and must stay alive (at a
  /// stable address) until the episode is done.
  class EpisodeHandle {
   public:
    EpisodeHandle() = default;
    EpisodeHandle(EpisodeHandle&&) = default;
    EpisodeHandle& operator=(EpisodeHandle&&) = default;
    EpisodeHandle(const EpisodeHandle&) = delete;
    EpisodeHandle& operator=(const EpisodeHandle&) = delete;

    bool done() const { return done_; }

   private:
    friend class CollectiveExecutor;
    simmpi::RankContext* ctx_ = nullptr;
    ReduceOp op_ = ReduceOp::kSum;
    Payload* buffer_ = nullptr;
    int episode_ = 0;
    std::size_t stage_ = 0;
    std::vector<simmpi::Request> requests_;
    /// Landing zone of the current stage's receives. Lives in the
    /// handle (stable element addresses across handle moves — vector
    /// storage does not relocate on move) and is applied to the buffer
    /// only when the whole stage completed.
    std::vector<Payload> inbox_;
    bool done_ = false;
  };

  /// One in-flight bounded-wait collective episode; see the barrier
  /// executor's ResilientEpisodeHandle for the elapsed-progress-time
  /// deadline semantics. The inbox is shared with the communicator
  /// (keepalive) so a late sender can still deliver into storage that
  /// outlives a given-up receive.
  class ResilientEpisodeHandle {
   public:
    ResilientEpisodeHandle() = default;
    ResilientEpisodeHandle(ResilientEpisodeHandle&&) = default;
    ResilientEpisodeHandle& operator=(ResilientEpisodeHandle&&) = default;
    ResilientEpisodeHandle(const ResilientEpisodeHandle&) = delete;
    ResilientEpisodeHandle& operator=(const ResilientEpisodeHandle&) = delete;

    bool done() const { return done_ || failed_; }
    bool succeeded() const { return done_; }
    bool stalled() const { return failed_; }

   private:
    friend class CollectiveExecutor;
    struct SendState {
      std::size_t dst;
      std::vector<simmpi::Request> attempts;
      bool done = false;
    };
    struct RecvState {
      std::size_t src;
      simmpi::Request request;
      bool done = false;
    };

    simmpi::RankContext* ctx_ = nullptr;
    simmpi::StallReport* report_ = nullptr;
    simmpi::ResilienceOptions options_;
    ReduceOp op_ = ReduceOp::kSum;
    Payload* buffer_ = nullptr;
    int episode_ = 0;
    std::size_t crash_at_ = 0;
    std::size_t stage_ = 0;
    std::vector<SendState> sends_;
    std::vector<RecvState> recvs_;
    std::shared_ptr<std::vector<Payload>> inbox_;
    std::size_t attempt_ = 0;
    simmpi::Clock::duration budget_{};
    simmpi::Clock::duration consumed_{};
    bool done_ = false;
    bool failed_ = false;
  };

  /// Precompute per-rank op lists. The schedule must pass
  /// is_valid_collective(): executing an invalid dataflow would
  /// silently produce wrong buffers. options.validate() runs here.
  /// Pool semantics match the barrier executor: an owned RankPool with
  /// ExecutionMode::kPersistentPool, or the caller's shared_pool.
  explicit CollectiveExecutor(const CollectiveSchedule& schedule,
                              const simmpi::ExecutorOptions& options = {});

  /// Deprecated: use CollectiveExecutor(schedule,
  /// simmpi::ExecutorOptions{.mode = mode}). Thin forward kept for
  /// source compatibility.
  [[deprecated("pass ExecutorOptions instead of a bare ExecutionMode")]]
  CollectiveExecutor(const CollectiveSchedule& schedule,
                     simmpi::ExecutionMode mode);

  std::size_t ranks() const { return ops_.size(); }
  std::size_t stage_count() const { return stages_; }
  const simmpi::ExecutorOptions& options() const { return options_; }

  /// Post one collective episode: snapshot and send stage 0's outgoing
  /// sub-ranges of `buffer` (elem_count words, transformed in place as
  /// stages complete), arm stage 0's receives, return without waiting.
  EpisodeHandle post(simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
                     int episode = 0) const;

  /// Nonblocking probe: advance through every stage whose requests all
  /// completed, applying incoming edges in ascending source order as
  /// each stage closes; returns whether the episode is done.
  bool test(EpisodeHandle& handle) const;

  /// Drive the episode to completion in bounded progress slices.
  void wait(EpisodeHandle& handle) const;

  /// Execute one collective episode for `rank`, transforming `buffer`
  /// in place: exactly wait(post(ctx, op, buffer, episode)).
  void execute(simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
               int episode = 0) const;

  /// Run the collective once across all ranks of a fresh communicator
  /// and return the final per-rank buffers. `inputs` must hold ranks()
  /// buffers of elem_count words each.
  std::vector<Payload> run_once(
      const std::vector<Payload>& inputs, ReduceOp op,
      simmpi::LatencyModel latency = simmpi::uniform_latency(),
      simmpi::ByteLatencyModel byte_latency = nullptr) const;

  /// Post one bounded-wait episode (see simmpi/resilience.hpp):
  /// per-stage deadlines, bounded resends, crash faults honoured.
  /// Incoming data is applied only when the whole stage completed, so a
  /// stalled rank's buffer stays at its last consistent stage snapshot;
  /// resends re-copy from the unchanged buffer and carry identical
  /// words. `report` must be pre-reset and outlive the handle.
  ResilientEpisodeHandle post_resilient(
      simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
      const simmpi::ResilienceOptions& options, simmpi::StallReport& report,
      int episode = 0) const;

  /// Nonblocking probe of a resilient episode (zero-width progress
  /// slice; only time spent inside is charged to the deadline).
  bool test(ResilientEpisodeHandle& handle) const;

  /// Drive a resilient episode to a terminal state; true when every
  /// stage completed.
  bool wait(ResilientEpisodeHandle& handle) const;

  /// Blocking bounded-wait episode: exactly
  /// wait(post_resilient(...)).
  bool execute_resilient(simmpi::RankContext& ctx, ReduceOp op,
                         Payload& buffer,
                         const simmpi::ResilienceOptions& options,
                         simmpi::StallReport& report, int episode = 0) const;

  /// A resilient run across all ranks: final buffers (stalled ranks
  /// keep their last consistent state) plus the finalized StallReport.
  struct ResilientResult {
    std::vector<Payload> buffers;
    simmpi::StallReport report;
  };
  ResilientResult run_once_resilient(
      const std::vector<Payload>& inputs, ReduceOp op,
      const simmpi::ResilienceOptions& options,
      const FaultPlan& faults = {},
      simmpi::LatencyModel latency = simmpi::uniform_latency(),
      simmpi::ByteLatencyModel byte_latency = nullptr) const;

 private:
  struct SendOp {
    std::size_t dst = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
  };
  struct RecvOp {
    std::size_t src = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
    bool combine = false;
  };
  struct StageOps {
    std::vector<SendOp> sends;
    std::vector<RecvOp> recvs;  ///< ascending src — the application order
  };

  // Spawn threads or dispatch a pool generation, per the construction
  // options.
  void run_episode(simmpi::Communicator& comm,
                   const simmpi::RankFunction& fn) const;

  void check_context(const simmpi::RankContext& ctx,
                     const Payload& buffer) const;

  // Copy `send`'s sub-range out of the buffer (the snapshot rule).
  Payload send_words(const Payload& buffer, const SendOp& send) const;

  // Apply the stage's received words to the buffer, ascending src.
  void apply_stage(const StageOps& ops, const std::vector<Payload>& inbox,
                   ReduceOp op, Payload& buffer) const;

  // Snapshot + post stage `stage`'s operations into the handle (or mark
  // it done past the last stage).
  void begin_stage(EpisodeHandle& handle, std::size_t stage) const;
  void begin_stage_resilient(ResilientEpisodeHandle& handle,
                             std::size_t stage) const;
  void progress_resilient(ResilientEpisodeHandle& handle,
                          simmpi::Clock::duration slice) const;

  std::size_t stages_ = 0;
  std::size_t elem_count_ = 0;
  std::vector<std::vector<StageOps>> ops_;  ///< ops_[rank][stage]
  simmpi::ExecutorOptions options_;
  std::unique_ptr<simmpi::RankPool> pool_;  ///< owned kPersistentPool only
};

}  // namespace optibar
