// End-to-end collective execution on the simmpi runtime.
//
// The collective counterpart of simmpi::ScheduleExecutor: per rank and
// stage it precomputes the send and receive lists of a
// CollectiveSchedule, and execute() walks the stages posting
// payload-carrying issend/irecv pairs. The stage semantics match the
// serial interpreter exactly — outgoing sub-ranges are copied out of
// the rank's buffer *before* any incoming data of the stage is applied
// (the snapshot rule), and incoming edges are applied in ascending
// source order — so a valid schedule's execution is bit-exact against
// execute_serial() and the oracle, which is what makes data
// correctness (not just timing) testable on the threaded runtime.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "collective/schedule.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"

namespace optibar {

class CollectiveExecutor {
 public:
  /// Precompute per-rank op lists. The schedule must pass
  /// is_valid_collective(): executing an invalid dataflow would
  /// silently produce wrong buffers. With
  /// simmpi::ExecutionMode::kPersistentPool the executor owns a
  /// RankPool and run_once/run_once_resilient reuse its parked workers
  /// across episodes instead of spawning threads per call (episodes
  /// then serialize on the pool; results are identical either way).
  explicit CollectiveExecutor(
      const CollectiveSchedule& schedule,
      simmpi::ExecutionMode mode = simmpi::ExecutionMode::kSpawnPerEpisode);

  std::size_t ranks() const { return ops_.size(); }
  std::size_t stage_count() const { return stages_; }

  /// Execute one collective episode for `rank`, transforming `buffer`
  /// (elem_count words) in place. `episode` keeps repeated invocations
  /// apart in the tag space.
  void execute(simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
               int episode = 0) const;

  /// Run the collective once across all ranks of a fresh communicator
  /// and return the final per-rank buffers. `inputs` must hold ranks()
  /// buffers of elem_count words each.
  std::vector<Payload> run_once(
      const std::vector<Payload>& inputs, ReduceOp op,
      simmpi::LatencyModel latency = simmpi::uniform_latency(),
      simmpi::ByteLatencyModel byte_latency = nullptr) const;

  /// Bounded-wait episode (see simmpi/resilience.hpp): per-stage
  /// deadlines, bounded resends, crash faults honoured. Incoming data
  /// is applied only when the whole stage completed, so a stalled
  /// rank's buffer stays at its last consistent stage snapshot; resends
  /// re-copy from the unchanged buffer and carry identical words.
  /// Returns true when every stage completed; `report` must be
  /// pre-reset and is written only in this rank's row.
  bool execute_resilient(simmpi::RankContext& ctx, ReduceOp op,
                         Payload& buffer,
                         const simmpi::ResilienceOptions& options,
                         simmpi::StallReport& report, int episode = 0) const;

  /// A resilient run across all ranks: final buffers (stalled ranks
  /// keep their last consistent state) plus the finalized StallReport.
  struct ResilientResult {
    std::vector<Payload> buffers;
    simmpi::StallReport report;
  };
  ResilientResult run_once_resilient(
      const std::vector<Payload>& inputs, ReduceOp op,
      const simmpi::ResilienceOptions& options,
      const FaultPlan& faults = {},
      simmpi::LatencyModel latency = simmpi::uniform_latency(),
      simmpi::ByteLatencyModel byte_latency = nullptr) const;

 private:
  struct SendOp {
    std::size_t dst = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
  };
  struct RecvOp {
    std::size_t src = 0;
    std::size_t offset = 0;
    std::size_t count = 0;
    bool combine = false;
  };
  struct StageOps {
    std::vector<SendOp> sends;
    std::vector<RecvOp> recvs;  ///< ascending src — the application order
  };

  // Spawn threads or dispatch a pool generation, per the construction
  // mode.
  void run_episode(simmpi::Communicator& comm,
                   const simmpi::RankFunction& fn) const;

  std::size_t stages_ = 0;
  std::size_t elem_count_ = 0;
  std::vector<std::vector<StageOps>> ops_;  ///< ops_[rank][stage]
  std::unique_ptr<simmpi::RankPool> pool_;  ///< kPersistentPool only
};

}  // namespace optibar
