// Data-carrying collective schedules: the barrier model with payloads.
//
// The paper's algorithmic model (Section V) — steps of P x P boolean
// incidence matrices — says who signals whom, but a signal carries no
// data. Broadcast, reduce and allreduce move an elem_count-element
// vector through the same kind of staged pattern, so a collective
// schedule generalizes the boolean stage to a list of directed *edges*,
// each annotated with the element sub-range it carries and whether the
// receiver combines the incoming range into its buffer (reduction) or
// overwrites it (forwarding). Erasing the annotations yields an
// ordinary Schedule (signal_schedule()), which is how the barrier
// machinery — Eq. 1/2 batch costs, netsim, trace export — is reused
// unchanged; the per-edge byte counts feed the G term of the extended
// cost model (topology/profile.hpp).
//
// Stage semantics mirror the barrier model and the simmpi executor: a
// stage's sends all read the sender's buffer as it was when the stage
// began (snapshot), every edge of a stage completes before the next
// stage starts, and a receiver applies its incoming edges in ascending
// source order. Payload elements are 64-bit words and the reduction
// operators (sum mod 2^64, min, max, xor) are exactly associative and
// commutative, so a correct schedule is *bit-exact* against a serial
// oracle regardless of combination order — which is what the simmpi
// correctness tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"

namespace optibar {

/// Which collective a schedule implements. Rooted ops (broadcast,
/// reduce) carry a root rank; allreduce is unrooted (root is 0 by
/// convention and ignored).
enum class CollectiveOp {
  kBroadcast,
  kReduce,
  kAllreduce,
};

const char* to_string(CollectiveOp op);

/// Exact (associative, commutative) reduction operators over 64-bit
/// words. kSum wraps mod 2^64, so every bracketing of a reduction is
/// bit-identical — floating-point reassociation error cannot mask a
/// schedule bug.
enum class ReduceOp {
  kSum,
  kMin,
  kMax,
  kXor,
};

const char* to_string(ReduceOp op);

/// Apply a reduction operator to two words.
std::uint64_t reduce_word(ReduceOp op, std::uint64_t a, std::uint64_t b);

/// One directed transfer within a stage: `src` sends elements
/// [offset, offset + count) of its buffer to `dst`, which either
/// reduces them into its own range (combine) or overwrites it.
/// count == 0 is a pure signal — the degenerate case that makes a
/// barrier a zero-payload collective.
struct CollectiveEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t offset = 0;  ///< first element of the transferred range
  std::size_t count = 0;   ///< number of elements; 0 = signal only
  bool combine = false;    ///< true: dst reduces; false: dst overwrites

  bool operator==(const CollectiveEdge& other) const = default;
};

/// A stage: all its edges proceed concurrently, reading pre-stage
/// sender buffers.
using CollectiveStage = std::vector<CollectiveEdge>;

class CollectiveSchedule {
 public:
  CollectiveSchedule() = default;

  /// Empty (zero-stage) schedule. `root` must be < ranks and is
  /// normalized to 0 for allreduce.
  CollectiveSchedule(CollectiveOp op, std::size_t ranks,
                     std::size_t elem_count, std::size_t elem_bytes,
                     std::size_t root = 0);

  CollectiveOp op() const { return op_; }
  std::size_t ranks() const { return ranks_; }
  std::size_t root() const { return root_; }
  std::size_t elem_count() const { return elem_count_; }
  std::size_t elem_bytes() const { return elem_bytes_; }

  std::size_t stage_count() const { return stages_.size(); }
  const CollectiveStage& stage(std::size_t s) const;
  const std::vector<CollectiveStage>& stages() const { return stages_; }

  /// Append a stage. Edges must be in-range (src/dst < ranks, src != dst,
  /// offset + count <= elem_count) and no (src, dst) pair may appear
  /// twice in one stage. Edges are stored sorted by (src, dst).
  void append_stage(CollectiveStage stage);

  /// Payload bytes carried by one edge (count * elem_bytes).
  std::size_t edge_bytes(const CollectiveEdge& e) const {
    return e.count * elem_bytes_;
  }

  /// Total payload bytes moved across all stages.
  std::size_t total_bytes() const;

  /// Total number of edges across all stages.
  std::size_t total_edges() const;

  /// The boolean projection: stage s of the result has (i, j) set iff
  /// some edge i -> j exists in stage s, payload erased. This is what
  /// the barrier-layer consumers (netsim, trace export, Eq. 1/2 terms)
  /// operate on.
  Schedule signal_schedule() const;

  bool operator==(const CollectiveSchedule& other) const = default;

 private:
  CollectiveOp op_ = CollectiveOp::kAllreduce;
  std::size_t ranks_ = 0;
  std::size_t root_ = 0;
  std::size_t elem_count_ = 0;
  std::size_t elem_bytes_ = 0;
  std::vector<CollectiveStage> stages_;
};

/// Lift a barrier schedule to a zero-payload collective (every signal
/// becomes a count == 0 edge). Used by the bytes = 0 parity tests: the
/// collective predictor on the lifted schedule must reproduce the
/// barrier predictor bit for bit.
CollectiveSchedule from_barrier(const Schedule& schedule,
                                std::size_t elem_bytes = 8);

/// Dataflow validity: simulates the schedule over per-(rank, segment)
/// contribution-count vectors (segments are the partition of the
/// element space induced by all edge range boundaries) and checks the
/// final state implements the op: broadcast — every rank holds exactly
/// the root's data; reduce — the root holds exactly one contribution
/// from every rank; allreduce — every rank does. The check mirrors the
/// executor's application order (per stage: snapshot, then per receiver
/// ascending sources). With elem_count == 0 the data check is vacuous,
/// so validity becomes the signal pattern's knowledge propagation
/// instead: the root reaches everyone (broadcast), hears from everyone
/// (reduce), or the pattern is a full barrier (allreduce, Eq. 3).
bool is_valid_collective(const CollectiveSchedule& schedule);

/// Per-rank payload buffer.
using Payload = std::vector<std::uint64_t>;

/// Reference interpreter: runs the schedule serially with the stage
/// semantics described above and returns the final per-rank buffers.
/// `inputs` must be ranks() buffers of elem_count() words each.
std::vector<Payload> execute_serial(const CollectiveSchedule& schedule,
                                    ReduceOp op,
                                    const std::vector<Payload>& inputs);

/// The serial oracle: what a correct execution must produce. For
/// broadcast every rank ends with the root's input; for reduce the
/// root (and for allreduce, everyone) ends with the elementwise
/// reduction over all inputs. Ranks unconstrained by the op (non-root
/// ranks of a reduce) are returned as their own input, and callers
/// should only compare the constrained ranks.
std::vector<Payload> oracle_result(const CollectiveSchedule& schedule,
                                   ReduceOp op,
                                   const std::vector<Payload>& inputs);

/// Pretty-print: header plus one line per stage listing its edges.
std::ostream& operator<<(std::ostream& os, const CollectiveSchedule& schedule);

}  // namespace optibar
