#include "collective/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace optibar {

namespace {

constexpr const char* kMagic = "optibar-collective";

CollectiveOp parse_op(const std::string& name) {
  if (name == "bcast") {
    return CollectiveOp::kBroadcast;
  }
  if (name == "reduce") {
    return CollectiveOp::kReduce;
  }
  if (name == "allreduce") {
    return CollectiveOp::kAllreduce;
  }
  OPTIBAR_FAIL("unknown collective op '" << name << "'");
}

}  // namespace

void save_collective(std::ostream& os, const CollectiveSchedule& schedule) {
  os << kMagic << " v1\n";
  os << "op " << to_string(schedule.op()) << '\n';
  os << "P " << schedule.ranks() << '\n';
  os << "root " << schedule.root() << '\n';
  os << "elems " << schedule.elem_count() << ' ' << schedule.elem_bytes()
     << '\n';
  os << "stages " << schedule.stage_count() << '\n';
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const CollectiveStage& stage = schedule.stage(s);
    os << 'S' << s << ' ' << stage.size() << '\n';
    for (const CollectiveEdge& e : stage) {
      os << e.src << ' ' << e.dst << ' ' << e.offset << ' ' << e.count << ' '
         << (e.combine ? 1 : 0) << '\n';
    }
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing collective schedule");
}

CollectiveSchedule load_collective(std::istream& is) {
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_REQUIRE(magic == kMagic,
                  "not an optibar collective schedule (magic '" << magic
                                                                << "')");
  OPTIBAR_REQUIRE(version == "v1",
                  "unsupported collective schedule version " << version);

  std::string tag;
  std::string op_name;
  is >> tag >> op_name;
  OPTIBAR_REQUIRE(tag == "op", "malformed collective header (op)");
  const CollectiveOp op = parse_op(op_name);
  std::size_t p = 0;
  is >> tag >> p;
  OPTIBAR_REQUIRE(tag == "P" && p > 0, "malformed collective header (P)");
  std::size_t root = 0;
  is >> tag >> root;
  OPTIBAR_REQUIRE(tag == "root", "malformed collective header (root)");
  OPTIBAR_REQUIRE(root < p, "root " << root << " out of range for " << p
                                    << " ranks");
  std::size_t elem_count = 0;
  std::size_t elem_bytes = 0;
  is >> tag >> elem_count >> elem_bytes;
  OPTIBAR_REQUIRE(tag == "elems" && elem_bytes > 0,
                  "malformed collective header (elems)");
  std::size_t stages = 0;
  is >> tag >> stages;
  OPTIBAR_REQUIRE(tag == "stages", "malformed collective header (stages)");
  OPTIBAR_REQUIRE(is.good(), "I/O error while reading collective header");

  CollectiveSchedule out(op, p, elem_count, elem_bytes, root);
  for (std::size_t s = 0; s < stages; ++s) {
    std::size_t edges = 0;
    is >> tag >> edges;
    std::string expected("S");
    expected += std::to_string(s);
    OPTIBAR_REQUIRE(tag == expected,
                    "expected stage tag S" << s << ", got " << tag);
    CollectiveStage stage;
    stage.reserve(edges);
    for (std::size_t e = 0; e < edges; ++e) {
      CollectiveEdge edge;
      int combine = -1;
      is >> edge.src >> edge.dst >> edge.offset >> edge.count >> combine;
      // fail() (not good()) so a truncated file cannot pass as eof.
      OPTIBAR_REQUIRE(!is.fail(), "truncated or malformed stage line in stage "
                                      << s);
      OPTIBAR_REQUIRE(combine == 0 || combine == 1,
                      "combine flag must be 0/1, got " << combine);
      edge.combine = combine == 1;
      stage.push_back(edge);
    }
    // append_stage re-validates ranges, self edges and duplicates.
    out.append_stage(std::move(stage));
  }
  OPTIBAR_REQUIRE(is.good() || is.eof(),
                  "I/O error while reading collective schedule");
  return out;
}

void save_collective_file(const std::string& path,
                          const CollectiveSchedule& schedule) {
  std::ofstream os(path);
  OPTIBAR_REQUIRE(os.is_open(), "cannot open " << path << " for writing");
  save_collective(os, schedule);
}

CollectiveSchedule load_collective_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load_collective(is);
}

}  // namespace optibar
