#include "collective/io.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace optibar {

namespace {

constexpr const char* kMagic = "optibar-collective";

// Hard caps on untrusted on-disk counts: reject absurd headers before
// they size any allocation. Generous relative to anything the engine
// produces (the tuner tops out at dozens of ranks and stages).
constexpr std::size_t kMaxRanks = 8192;
constexpr std::size_t kMaxStages = 100000;
constexpr std::size_t kMaxElemBytes = 65536;

CollectiveOp parse_op(const std::string& name) {
  if (name == "bcast") {
    return CollectiveOp::kBroadcast;
  }
  if (name == "reduce") {
    return CollectiveOp::kReduce;
  }
  if (name == "allreduce") {
    return CollectiveOp::kAllreduce;
  }
  OPTIBAR_IO_FAIL("unknown collective op '" << name << "'");
}

}  // namespace

void save_collective(std::ostream& os, const CollectiveSchedule& schedule) {
  os << kMagic << " v1\n";
  os << "op " << to_string(schedule.op()) << '\n';
  os << "P " << schedule.ranks() << '\n';
  os << "root " << schedule.root() << '\n';
  os << "elems " << schedule.elem_count() << ' ' << schedule.elem_bytes()
     << '\n';
  os << "stages " << schedule.stage_count() << '\n';
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const CollectiveStage& stage = schedule.stage(s);
    os << 'S' << s << ' ' << stage.size() << '\n';
    for (const CollectiveEdge& e : stage) {
      os << e.src << ' ' << e.dst << ' ' << e.offset << ' ' << e.count << ' '
         << (e.combine ? 1 : 0) << '\n';
    }
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing collective schedule");
}

CollectiveSchedule load_collective(std::istream& is) {
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_IO_REQUIRE(!is.fail() && magic == kMagic,
                     "not an optibar collective schedule (magic '" << magic
                                                                   << "')");
  OPTIBAR_IO_REQUIRE(version == "v1",
                     "unsupported collective schedule version " << version);

  std::string tag;
  std::string op_name;
  is >> tag >> op_name;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "op",
                     "malformed collective header (op)");
  const CollectiveOp op = parse_op(op_name);
  std::size_t p = 0;
  is >> tag >> p;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "P" && p > 0,
                     "malformed collective header (P)");
  OPTIBAR_IO_REQUIRE(p <= kMaxRanks, "collective rank count "
                                         << p << " exceeds the format cap ("
                                         << kMaxRanks << ")");
  std::size_t root = 0;
  is >> tag >> root;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "root",
                     "malformed collective header (root)");
  OPTIBAR_IO_REQUIRE(root < p, "root " << root << " out of range for " << p
                                       << " ranks");
  std::size_t elem_count = 0;
  std::size_t elem_bytes = 0;
  is >> tag >> elem_count >> elem_bytes;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "elems" && elem_bytes > 0,
                     "malformed collective header (elems)");
  OPTIBAR_IO_REQUIRE(elem_bytes <= kMaxElemBytes,
                     "element width " << elem_bytes
                                      << " exceeds the format cap ("
                                      << kMaxElemBytes << ")");
  OPTIBAR_IO_REQUIRE(
      elem_count <= std::numeric_limits<std::size_t>::max() / elem_bytes,
      "elems header overflows (" << elem_count << " x " << elem_bytes << ")");
  std::size_t stages = 0;
  is >> tag >> stages;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "stages",
                     "malformed collective header (stages)");
  OPTIBAR_IO_REQUIRE(stages <= kMaxStages,
                     "collective stage count "
                         << stages << " exceeds the format cap (" << kMaxStages
                         << ")");

  CollectiveSchedule out(op, p, elem_count, elem_bytes, root);
  for (std::size_t s = 0; s < stages; ++s) {
    std::size_t edges = 0;
    is >> tag >> edges;
    std::string expected("S");
    expected += std::to_string(s);
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == expected,
                       "expected stage tag S" << s << ", got " << tag);
    // A stage is a set of distinct directed pairs, so p*p bounds it.
    OPTIBAR_IO_REQUIRE(edges <= p * p, "stage " << s << " claims " << edges
                                                << " edges for " << p
                                                << " ranks");
    CollectiveStage stage;
    stage.reserve(edges);
    for (std::size_t e = 0; e < edges; ++e) {
      CollectiveEdge edge;
      int combine = -1;
      is >> edge.src >> edge.dst >> edge.offset >> edge.count >> combine;
      // fail() (not good()) so a truncated file cannot pass as eof.
      OPTIBAR_IO_REQUIRE(!is.fail(),
                         "truncated or malformed stage line in stage " << s);
      OPTIBAR_IO_REQUIRE(combine == 0 || combine == 1,
                         "combine flag must be 0/1, got " << combine);
      edge.combine = combine == 1;
      stage.push_back(edge);
    }
    // append_stage re-validates ranges, self edges and duplicates;
    // surface those as parse (Io) errors too — the bad data came from
    // the stream, not from a caller bug.
    try {
      out.append_stage(std::move(stage));
    } catch (const Error& error) {
      OPTIBAR_IO_FAIL("invalid stage " << s << ": " << error.what());
    }
  }
  OPTIBAR_IO_REQUIRE(is.good() || is.eof(),
                     "I/O error while reading collective schedule");
  return out;
}

void save_collective_file(const std::string& path,
                          const CollectiveSchedule& schedule) {
  std::ofstream os(path);
  OPTIBAR_REQUIRE(os.is_open(), "cannot open " << path << " for writing");
  save_collective(os, schedule);
}

CollectiveSchedule load_collective_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load_collective(is);
}

}  // namespace optibar
