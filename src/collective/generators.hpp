// Classic collective schedule generators.
//
// The textbook algorithms — binomial trees, recursive doubling, ring —
// expressed as CollectiveSchedules, the counterparts of the barrier
// generators in barrier/algorithms.hpp. They serve two roles: as the
// baseline candidate set of the collective tuner (which must never
// return anything worse than the best of these), and as the ground
// truth of the correctness tests (every generator is bit-exact against
// the serial oracle by construction).
//
// All rooted generators work for arbitrary roots via the relative-rank
// trick rel(i) = (i - root + P) mod P; all generators accept any P >= 1
// (non-power-of-two included).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "collective/schedule.hpp"

namespace optibar {

/// Binomial-tree broadcast: stage s has every rank with rel < 2^s
/// forward the full vector to rel + 2^s. ceil(log2 P) stages, each
/// rank sends at most once per stage.
CollectiveSchedule binomial_broadcast(std::size_t ranks, std::size_t root,
                                      std::size_t elem_count,
                                      std::size_t elem_bytes);

/// Binomial-tree reduce: the broadcast tree transposed and reversed,
/// with every edge combining — leaves fold inward until the root holds
/// the full reduction.
CollectiveSchedule binomial_reduce(std::size_t ranks, std::size_t root,
                                   std::size_t elem_count,
                                   std::size_t elem_bytes);

/// Flat broadcast: one stage, the root sends the full vector to every
/// other rank. The Eq. 1 batch term prices the root's fan-out serially,
/// so this loses to the binomial tree for all but tiny P.
CollectiveSchedule linear_broadcast(std::size_t ranks, std::size_t root,
                                    std::size_t elem_count,
                                    std::size_t elem_bytes);

/// Flat reduce: one stage, every rank sends to the root, which folds
/// the incoming vectors in ascending rank order.
CollectiveSchedule linear_reduce(std::size_t ranks, std::size_t root,
                                 std::size_t elem_count,
                                 std::size_t elem_bytes);

/// Recursive-doubling allreduce with the standard non-power-of-two
/// fold: the r = P - 2^floor(log2 P) extra ranks first fold into the
/// low ranks, the low 2^floor(log2 P) ranks pairwise-exchange (both
/// directions combine), and the extras get the result back.
CollectiveSchedule recursive_doubling_allreduce(std::size_t ranks,
                                                std::size_t elem_count,
                                                std::size_t elem_bytes);

/// Ring allreduce: reduce-scatter then allgather over P balanced
/// chunks, 2(P-1) stages each moving elem_count/P elements per rank —
/// the bandwidth-optimal classic for large payloads.
CollectiveSchedule ring_allreduce(std::size_t ranks, std::size_t elem_count,
                                  std::size_t elem_bytes);

/// Reduce-then-broadcast allreduce: binomial reduce to rank 0 followed
/// by binomial broadcast from rank 0.
CollectiveSchedule reduce_broadcast_allreduce(std::size_t ranks,
                                              std::size_t elem_count,
                                              std::size_t elem_bytes);

/// A named generator output, for candidate tables and test loops.
struct NamedCollective {
  std::string name;
  CollectiveSchedule schedule;
};

/// All classic generators applicable to `op`, evaluated at the given
/// shape. The tuner scores exactly this set (plus its hierarchical
/// candidates); tests iterate it for oracle checks.
std::vector<NamedCollective> classic_collectives(CollectiveOp op,
                                                 std::size_t ranks,
                                                 std::size_t root,
                                                 std::size_t elem_count,
                                                 std::size_t elem_bytes);

}  // namespace optibar
