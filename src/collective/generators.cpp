#include "collective/generators.hpp"

#include <utility>

#include "util/error.hpp"

namespace optibar {

namespace {

std::size_t floor_pow2(std::size_t n) {
  std::size_t v = 1;
  while (v * 2 <= n) {
    v <<= 1;
  }
  return v;
}

/// Start of chunk c in the balanced P-way partition of elem_count.
std::size_t chunk_begin(std::size_t elem_count, std::size_t ranks,
                        std::size_t c) {
  return c * elem_count / ranks;
}

/// The broadcast tree's stage edges in *relative* ranks, mapped back
/// through the root offset. Shared by broadcast (as is) and reduce
/// (transposed and reversed).
std::vector<CollectiveStage> binomial_stages(std::size_t ranks,
                                             std::size_t root,
                                             std::size_t elem_count) {
  std::vector<CollectiveStage> stages;
  const auto absolute = [&](std::size_t rel) { return (rel + root) % ranks; };
  for (std::size_t step = 1; step < ranks; step <<= 1) {
    CollectiveStage stage;
    for (std::size_t rel = 0; rel < step && rel + step < ranks; ++rel) {
      stage.push_back(CollectiveEdge{absolute(rel), absolute(rel + step), 0,
                                     elem_count, false});
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

}  // namespace

CollectiveSchedule binomial_broadcast(std::size_t ranks, std::size_t root,
                                      std::size_t elem_count,
                                      std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kBroadcast, ranks, elem_count, elem_bytes,
                       root);
  for (CollectiveStage& stage : binomial_stages(ranks, root, elem_count)) {
    s.append_stage(std::move(stage));
  }
  return s;
}

CollectiveSchedule binomial_reduce(std::size_t ranks, std::size_t root,
                                   std::size_t elem_count,
                                   std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kReduce, ranks, elem_count, elem_bytes,
                       root);
  std::vector<CollectiveStage> stages =
      binomial_stages(ranks, root, elem_count);
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    CollectiveStage reversed;
    for (const CollectiveEdge& e : *it) {
      reversed.push_back(
          CollectiveEdge{e.dst, e.src, e.offset, e.count, true});
    }
    s.append_stage(std::move(reversed));
  }
  return s;
}

CollectiveSchedule linear_broadcast(std::size_t ranks, std::size_t root,
                                    std::size_t elem_count,
                                    std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kBroadcast, ranks, elem_count, elem_bytes,
                       root);
  if (ranks == 1) {
    return s;
  }
  CollectiveStage stage;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r != root) {
      stage.push_back(CollectiveEdge{root, r, 0, elem_count, false});
    }
  }
  s.append_stage(std::move(stage));
  return s;
}

CollectiveSchedule linear_reduce(std::size_t ranks, std::size_t root,
                                 std::size_t elem_count,
                                 std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kReduce, ranks, elem_count, elem_bytes,
                       root);
  if (ranks == 1) {
    return s;
  }
  CollectiveStage stage;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (r != root) {
      stage.push_back(CollectiveEdge{r, root, 0, elem_count, true});
    }
  }
  s.append_stage(std::move(stage));
  return s;
}

CollectiveSchedule recursive_doubling_allreduce(std::size_t ranks,
                                                std::size_t elem_count,
                                                std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kAllreduce, ranks, elem_count,
                       elem_bytes);
  const std::size_t m = floor_pow2(ranks);
  const std::size_t extras = ranks - m;
  if (extras > 0) {
    // Fold: extras contribute into their low-rank partner, then sit out.
    CollectiveStage fold;
    for (std::size_t i = 0; i < extras; ++i) {
      fold.push_back(CollectiveEdge{m + i, i, 0, elem_count, true});
    }
    s.append_stage(std::move(fold));
  }
  for (std::size_t step = 1; step < m; step <<= 1) {
    // Pairwise exchange: both directions read pre-stage buffers, so the
    // partners end the stage with identical sums over disjoint groups.
    CollectiveStage stage;
    for (std::size_t i = 0; i < m; ++i) {
      stage.push_back(CollectiveEdge{i, i ^ step, 0, elem_count, true});
    }
    s.append_stage(std::move(stage));
  }
  if (extras > 0) {
    CollectiveStage unfold;
    for (std::size_t i = 0; i < extras; ++i) {
      unfold.push_back(CollectiveEdge{i, m + i, 0, elem_count, false});
    }
    s.append_stage(std::move(unfold));
  }
  return s;
}

CollectiveSchedule ring_allreduce(std::size_t ranks, std::size_t elem_count,
                                  std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kAllreduce, ranks, elem_count,
                       elem_bytes);
  if (ranks == 1) {
    return s;
  }
  const auto chunk_edge = [&](std::size_t src, std::size_t chunk,
                              bool combine) {
    const std::size_t begin = chunk_begin(elem_count, ranks, chunk);
    const std::size_t end = chunk_begin(elem_count, ranks, chunk + 1);
    return CollectiveEdge{src, (src + 1) % ranks, begin, end - begin, combine};
  };
  // Empty chunks (elem_count < ranks) carry nothing and are dropped —
  // except in the zero-payload degenerate case, where every edge is a
  // pure signal and the ring must keep its full synchronization shape.
  const auto keep = [&](const CollectiveEdge& e) {
    return e.count > 0 || elem_count == 0;
  };
  // Reduce-scatter: in step t rank i passes its running partial of
  // chunk (i - t) mod P one hop clockwise; after P-1 steps rank i owns
  // the complete reduction of chunk (i + 1) mod P.
  for (std::size_t t = 0; t + 1 < ranks; ++t) {
    CollectiveStage stage;
    for (std::size_t i = 0; i < ranks; ++i) {
      const CollectiveEdge e =
          chunk_edge(i, (i + ranks - t % ranks) % ranks, true);
      if (keep(e)) {
        stage.push_back(e);
      }
    }
    s.append_stage(std::move(stage));
  }
  // Allgather: completed chunks circulate the same ring, overwriting.
  for (std::size_t t = 0; t + 1 < ranks; ++t) {
    CollectiveStage stage;
    for (std::size_t i = 0; i < ranks; ++i) {
      const CollectiveEdge e =
          chunk_edge(i, (i + 1 + ranks - t % ranks) % ranks, false);
      if (keep(e)) {
        stage.push_back(e);
      }
    }
    s.append_stage(std::move(stage));
  }
  return s;
}

CollectiveSchedule reduce_broadcast_allreduce(std::size_t ranks,
                                              std::size_t elem_count,
                                              std::size_t elem_bytes) {
  CollectiveSchedule s(CollectiveOp::kAllreduce, ranks, elem_count,
                       elem_bytes);
  const CollectiveSchedule reduce =
      binomial_reduce(ranks, 0, elem_count, elem_bytes);
  for (const CollectiveStage& stage : reduce.stages()) {
    s.append_stage(stage);
  }
  const CollectiveSchedule bcast =
      binomial_broadcast(ranks, 0, elem_count, elem_bytes);
  for (const CollectiveStage& stage : bcast.stages()) {
    s.append_stage(stage);
  }
  return s;
}

std::vector<NamedCollective> classic_collectives(CollectiveOp op,
                                                 std::size_t ranks,
                                                 std::size_t root,
                                                 std::size_t elem_count,
                                                 std::size_t elem_bytes) {
  std::vector<NamedCollective> out;
  switch (op) {
    case CollectiveOp::kBroadcast:
      out.push_back({"binomial-bcast",
                     binomial_broadcast(ranks, root, elem_count, elem_bytes)});
      out.push_back({"linear-bcast",
                     linear_broadcast(ranks, root, elem_count, elem_bytes)});
      break;
    case CollectiveOp::kReduce:
      out.push_back({"binomial-reduce",
                     binomial_reduce(ranks, root, elem_count, elem_bytes)});
      out.push_back({"linear-reduce",
                     linear_reduce(ranks, root, elem_count, elem_bytes)});
      break;
    case CollectiveOp::kAllreduce:
      out.push_back(
          {"recursive-doubling",
           recursive_doubling_allreduce(ranks, elem_count, elem_bytes)});
      out.push_back({"ring", ring_allreduce(ranks, elem_count, elem_bytes)});
      out.push_back(
          {"reduce-bcast",
           reduce_broadcast_allreduce(ranks, elem_count, elem_bytes)});
      break;
  }
  return out;
}

}  // namespace optibar
