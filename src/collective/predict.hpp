// Payload-aware cost prediction for collective schedules.
//
// A collective stage is priced exactly like a barrier stage (Eq. 1/2
// batch terms plus receiver-side serial processing), with one change:
// the marginal cost of an edge carrying b payload bytes is
//     L(i,j) + b * G(i,j)
// instead of the bare L(i,j). The compiled evaluation kernel
// (barrier/compiled_schedule.hpp) takes per-edge costs as inputs, so
// the extension is purely in compilation: compile_collective() prices
// each edge once, and predict_into()/predicted_time() run unchanged
// and allocation-free. For b = 0 (or a profile without G) the edge
// costs equal the plain L matrix bit for bit, so collective prediction
// of a lifted barrier schedule reproduces predict_reference() exactly —
// the parity contract the tests pin down.
#pragma once

#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "collective/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// Compile `schedule` against `profile`, pricing each edge at
/// O(i,j) startup and L(i,j) + bytes * G(i,j) marginal cost. Reuses
/// `compiled`'s storage (grow-only, like CompiledSchedule::compile).
void compile_collective(const CollectiveSchedule& schedule,
                        const TopologyProfile& profile,
                        CompiledSchedule& compiled);

/// Full prediction of a collective schedule. Convenience wrapper:
/// compiles into the workspace-adjacent compiled object and evaluates.
Prediction predict_collective(const CollectiveSchedule& schedule,
                              const TopologyProfile& profile,
                              const PredictOptions& options = {});

/// Critical path only.
double predicted_collective_time(const CollectiveSchedule& schedule,
                                 const TopologyProfile& profile,
                                 const PredictOptions& options = {});

}  // namespace optibar
