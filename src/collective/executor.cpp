#include "collective/executor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace optibar {

CollectiveExecutor::CollectiveExecutor(const CollectiveSchedule& schedule)
    : stages_(schedule.stage_count()), elem_count_(schedule.elem_count()) {
  OPTIBAR_REQUIRE(is_valid_collective(schedule),
                  "refusing to execute a collective schedule whose dataflow "
                  "does not implement " << to_string(schedule.op()));
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t s = 0; s < stages_; ++s) {
    for (const CollectiveEdge& e : schedule.stage(s)) {
      ops_[e.src][s].sends.push_back(SendOp{e.dst, e.offset, e.count});
      ops_[e.dst][s].recvs.push_back(
          RecvOp{e.src, e.offset, e.count, e.combine});
    }
  }
  // Stage edges are sorted by (src, dst), so each rank's recvs arrive in
  // ascending src already; sort defensively to pin the application order.
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      std::sort(ops_[r][s].recvs.begin(), ops_[r][s].recvs.end(),
                [](const RecvOp& a, const RecvOp& b) { return a.src < b.src; });
    }
  }
}

void CollectiveExecutor::execute(simmpi::RankContext& ctx, ReduceOp op,
                                 Payload& buffer, int episode) const {
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  OPTIBAR_REQUIRE(buffer.size() == elem_count_,
                  "buffer has " << buffer.size() << " words, expected "
                                << elem_count_);
  std::vector<simmpi::Request> requests;
  std::vector<Payload> inbox;
  for (std::size_t s = 0; s < stages_; ++s) {
    const StageOps& ops = ops_[rank][s];
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    requests.clear();
    requests.reserve(ops.sends.size() + ops.recvs.size());
    // Copy every outgoing sub-range first: the stage's sends read the
    // buffer as it is at stage entry, before any incoming data lands.
    for (const SendOp& send : ops.sends) {
      Payload words(buffer.begin() + static_cast<std::ptrdiff_t>(send.offset),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(send.offset + send.count));
      requests.push_back(ctx.issend(send.dst, tag, std::move(words)));
    }
    inbox.assign(ops.recvs.size(), Payload{});
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      requests.push_back(ctx.irecv(ops.recvs[k].src, tag, &inbox[k]));
    }
    simmpi::RankContext::wait_all(requests);
    // Apply incoming edges in ascending source order (recvs are sorted).
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      const RecvOp& recv = ops.recvs[k];
      const Payload& in = inbox[k];
      OPTIBAR_ASSERT(in.size() == recv.count,
                     "received " << in.size() << " words, expected "
                                 << recv.count);
      for (std::size_t i = 0; i < recv.count; ++i) {
        std::uint64_t& word = buffer[recv.offset + i];
        word = recv.combine ? reduce_word(op, word, in[i]) : in[i];
      }
    }
  }
}

std::vector<Payload> CollectiveExecutor::run_once(
    const std::vector<Payload>& inputs, ReduceOp op,
    simmpi::LatencyModel latency,
    simmpi::ByteLatencyModel byte_latency) const {
  const std::size_t p = ops_.size();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  std::vector<Payload> buffers = inputs;
  simmpi::Communicator comm(p, std::move(latency), std::move(byte_latency));
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    execute(ctx, op, buffers[ctx.rank()]);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "collective left unmatched operations on the communicator");
  return buffers;
}

}  // namespace optibar
