#include "collective/executor.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace optibar {

CollectiveExecutor::CollectiveExecutor(const CollectiveSchedule& schedule,
                                       simmpi::ExecutionMode mode)
    : stages_(schedule.stage_count()), elem_count_(schedule.elem_count()) {
  OPTIBAR_REQUIRE(is_valid_collective(schedule),
                  "refusing to execute a collective schedule whose dataflow "
                  "does not implement " << to_string(schedule.op()));
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t s = 0; s < stages_; ++s) {
    for (const CollectiveEdge& e : schedule.stage(s)) {
      ops_[e.src][s].sends.push_back(SendOp{e.dst, e.offset, e.count});
      ops_[e.dst][s].recvs.push_back(
          RecvOp{e.src, e.offset, e.count, e.combine});
    }
  }
  // Stage edges are sorted by (src, dst), so each rank's recvs arrive in
  // ascending src already; sort defensively to pin the application order.
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      std::sort(ops_[r][s].recvs.begin(), ops_[r][s].recvs.end(),
                [](const RecvOp& a, const RecvOp& b) { return a.src < b.src; });
    }
  }
  if (mode == simmpi::ExecutionMode::kPersistentPool) {
    pool_ = std::make_unique<simmpi::RankPool>(p);
  }
}

void CollectiveExecutor::run_episode(simmpi::Communicator& comm,
                                     const simmpi::RankFunction& fn) const {
  if (pool_ != nullptr) {
    simmpi::run_ranks(*pool_, comm, fn);
  } else {
    simmpi::run_ranks(comm, fn);
  }
}

void CollectiveExecutor::execute(simmpi::RankContext& ctx, ReduceOp op,
                                 Payload& buffer, int episode) const {
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  OPTIBAR_REQUIRE(buffer.size() == elem_count_,
                  "buffer has " << buffer.size() << " words, expected "
                                << elem_count_);
  std::vector<simmpi::Request> requests;
  std::vector<Payload> inbox;
  for (std::size_t s = 0; s < stages_; ++s) {
    const StageOps& ops = ops_[rank][s];
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    requests.clear();
    requests.reserve(ops.sends.size() + ops.recvs.size());
    // Copy every outgoing sub-range first: the stage's sends read the
    // buffer as it is at stage entry, before any incoming data lands.
    for (const SendOp& send : ops.sends) {
      Payload words(buffer.begin() + static_cast<std::ptrdiff_t>(send.offset),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(send.offset + send.count));
      requests.push_back(ctx.issend(send.dst, tag, std::move(words)));
    }
    inbox.assign(ops.recvs.size(), Payload{});
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      requests.push_back(ctx.irecv(ops.recvs[k].src, tag, &inbox[k]));
    }
    // One shard-condvar park per wakeup instead of one condvar wait
    // per request.
    ctx.wait_all_batched(requests);
    // Apply incoming edges in ascending source order (recvs are sorted).
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      const RecvOp& recv = ops.recvs[k];
      const Payload& in = inbox[k];
      OPTIBAR_ASSERT(in.size() == recv.count,
                     "received " << in.size() << " words, expected "
                                 << recv.count);
      for (std::size_t i = 0; i < recv.count; ++i) {
        std::uint64_t& word = buffer[recv.offset + i];
        word = recv.combine ? reduce_word(op, word, in[i]) : in[i];
      }
    }
  }
}

bool CollectiveExecutor::execute_resilient(
    simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
    const simmpi::ResilienceOptions& options, simmpi::StallReport& report,
    int episode) const {
  using simmpi::Clock;
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  OPTIBAR_REQUIRE(buffer.size() == elem_count_,
                  "buffer has " << buffer.size() << " words, expected "
                                << elem_count_);
  OPTIBAR_REQUIRE(report.per_rank.size() == ops_.size() &&
                      report.stages == stages_,
                  "StallReport not reset for this executor");
  simmpi::RankStall& mine = report.per_rank[rank];
  const FaultInjector* faults = ctx.communicator().fault_injector();
  const std::size_t crash_at =
      faults != nullptr ? faults->crash_stage(rank) : FaultInjector::kNoCrash;

  struct SendState {
    std::size_t dst;
    std::vector<simmpi::Request> attempts;
    bool done = false;
  };
  struct RecvState {
    std::size_t src;
    simmpi::Request request;
    bool done = false;
  };

  for (std::size_t s = 0; s < stages_; ++s) {
    mine.stage_reached = s;
    if (s >= crash_at) {
      mine.crashed = true;
      return false;
    }
    const StageOps& ops = ops_[rank][s];
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    // Snapshot rule: outgoing words are read before anything of this
    // stage lands, and the buffer is untouched until the stage
    // completes — so every resend below re-reads identical words.
    auto send_words = [&](const SendOp& send) {
      return Payload(
          buffer.begin() + static_cast<std::ptrdiff_t>(send.offset),
          buffer.begin() + static_cast<std::ptrdiff_t>(send.offset +
                                                       send.count));
    };
    std::vector<SendState> sends;
    sends.reserve(ops.sends.size());
    for (const SendOp& send : ops.sends) {
      sends.push_back(
          SendState{send.dst, {ctx.issend(send.dst, tag, send_words(send))}});
    }
    // The inbox is shared with the communicator (keepalive): if this
    // rank gives up on a receive, a late sender can still match it and
    // deliver — into storage that must outlive this frame.
    auto inbox = std::make_shared<std::vector<Payload>>(ops.recvs.size());
    std::vector<RecvState> recvs;
    recvs.reserve(ops.recvs.size());
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      recvs.push_back(RecvState{
          ops.recvs[k].src,
          ctx.irecv(ops.recvs[k].src, tag, &(*inbox)[k], inbox)});
    }

    Clock::duration budget = options.stage_deadline(s);
    for (std::size_t attempt = 0;; ++attempt) {
      const Clock::time_point deadline = Clock::now() + budget;
      bool all_done = true;
      for (SendState& send : sends) {
        for (const simmpi::Request& request : send.attempts) {
          send.done = send.done || request->wait_until(deadline);
        }
        all_done = all_done && send.done;
      }
      for (RecvState& recv : recvs) {
        if (!recv.done && recv.request->wait_until(deadline)) {
          recv.done = true;
          mine.delivered.push_back(simmpi::SignalEdge{s, recv.src, rank});
        }
        all_done = all_done && recv.done;
      }
      if (all_done) {
        break;
      }
      if (attempt >= options.max_retries) {
        for (const SendState& send : sends) {
          if (!send.done) {
            mine.pending_send_to.push_back(send.dst);
          }
        }
        for (const RecvState& recv : recvs) {
          if (!recv.done) {
            mine.pending_recv_from.push_back(recv.src);
          }
        }
        return false;
      }
      for (std::size_t k = 0; k < sends.size(); ++k) {
        if (!sends[k].done) {
          sends[k].attempts.push_back(
              ctx.issend(sends[k].dst, tag, send_words(ops.sends[k])));
        }
      }
      budget = std::chrono::duration_cast<Clock::duration>(
          budget * options.retry_backoff);
    }

    // Stage complete: apply incoming edges in ascending source order,
    // exactly like the happy path.
    for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
      const RecvOp& recv = ops.recvs[k];
      const Payload& in = (*inbox)[k];
      OPTIBAR_ASSERT(in.size() == recv.count,
                     "received " << in.size() << " words, expected "
                                 << recv.count);
      for (std::size_t i = 0; i < recv.count; ++i) {
        std::uint64_t& word = buffer[recv.offset + i];
        word = recv.combine ? reduce_word(op, word, in[i]) : in[i];
      }
    }
  }
  mine.stage_reached = stages_;
  return true;
}

CollectiveExecutor::ResilientResult CollectiveExecutor::run_once_resilient(
    const std::vector<Payload>& inputs, ReduceOp op,
    const simmpi::ResilienceOptions& options, const FaultPlan& faults,
    simmpi::LatencyModel latency,
    simmpi::ByteLatencyModel byte_latency) const {
  const std::size_t p = ops_.size();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  ResilientResult result;
  result.buffers = inputs;
  result.report.reset(p, stages_);
  simmpi::Communicator comm(p, std::move(latency), std::move(byte_latency));
  if (!faults.empty()) {
    comm.set_fault_plan(faults);
  }
  run_episode(comm, [&](simmpi::RankContext& ctx) {
    if (execute_resilient(ctx, op, result.buffers[ctx.rank()], options,
                          result.report)) {
      result.report.per_rank[ctx.rank()].finished = true;
    }
  });
  result.report.finalize();
  return result;
}

std::vector<Payload> CollectiveExecutor::run_once(
    const std::vector<Payload>& inputs, ReduceOp op,
    simmpi::LatencyModel latency,
    simmpi::ByteLatencyModel byte_latency) const {
  const std::size_t p = ops_.size();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  std::vector<Payload> buffers = inputs;
  simmpi::Communicator comm(p, std::move(latency), std::move(byte_latency));
  run_episode(comm, [&](simmpi::RankContext& ctx) {
    execute(ctx, op, buffers[ctx.rank()]);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "collective left unmatched operations on the communicator");
  return buffers;
}

}  // namespace optibar
