#include "collective/executor.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace optibar {

using simmpi::Clock;

CollectiveExecutor::CollectiveExecutor(const CollectiveSchedule& schedule,
                                       const simmpi::ExecutorOptions& options)
    : stages_(schedule.stage_count()),
      elem_count_(schedule.elem_count()),
      options_(options) {
  options_.validate();
  OPTIBAR_REQUIRE(is_valid_collective(schedule),
                  "refusing to execute a collective schedule whose dataflow "
                  "does not implement " << to_string(schedule.op()));
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t s = 0; s < stages_; ++s) {
    for (const CollectiveEdge& e : schedule.stage(s)) {
      ops_[e.src][s].sends.push_back(SendOp{e.dst, e.offset, e.count});
      ops_[e.dst][s].recvs.push_back(
          RecvOp{e.src, e.offset, e.count, e.combine});
    }
  }
  // Stage edges are sorted by (src, dst), so each rank's recvs arrive in
  // ascending src already; sort defensively to pin the application order.
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      std::sort(ops_[r][s].recvs.begin(), ops_[r][s].recvs.end(),
                [](const RecvOp& a, const RecvOp& b) { return a.src < b.src; });
    }
  }
  if (options_.shared_pool != nullptr) {
    OPTIBAR_REQUIRE(options_.shared_pool->size() >= p,
                    "shared pool has " << options_.shared_pool->size()
                                       << " workers, schedule needs " << p);
  } else if (options_.mode == simmpi::ExecutionMode::kPersistentPool) {
    pool_ = std::make_unique<simmpi::RankPool>(p);
  }
}

CollectiveExecutor::CollectiveExecutor(const CollectiveSchedule& schedule,
                                       simmpi::ExecutionMode mode)
    : CollectiveExecutor(schedule, [mode] {
        simmpi::ExecutorOptions options;
        options.mode = mode;
        return options;
      }()) {}

void CollectiveExecutor::run_episode(simmpi::Communicator& comm,
                                     const simmpi::RankFunction& fn) const {
  if (options_.shared_pool != nullptr) {
    simmpi::run_ranks(*options_.shared_pool, comm, fn);
  } else if (pool_ != nullptr) {
    simmpi::run_ranks(*pool_, comm, fn);
  } else {
    simmpi::run_ranks(comm, fn);
  }
}

void CollectiveExecutor::check_context(const simmpi::RankContext& ctx,
                                       const Payload& buffer) const {
  OPTIBAR_REQUIRE(ctx.rank() < ops_.size(),
                  "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  OPTIBAR_REQUIRE(buffer.size() == elem_count_,
                  "buffer has " << buffer.size() << " words, expected "
                                << elem_count_);
}

Payload CollectiveExecutor::send_words(const Payload& buffer,
                                       const SendOp& send) const {
  return Payload(
      buffer.begin() + static_cast<std::ptrdiff_t>(send.offset),
      buffer.begin() + static_cast<std::ptrdiff_t>(send.offset + send.count));
}

void CollectiveExecutor::apply_stage(const StageOps& ops,
                                     const std::vector<Payload>& inbox,
                                     ReduceOp op, Payload& buffer) const {
  // Apply incoming edges in ascending source order (recvs are sorted).
  for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
    const RecvOp& recv = ops.recvs[k];
    const Payload& in = inbox[k];
    OPTIBAR_ASSERT(in.size() == recv.count,
                   "received " << in.size() << " words, expected "
                               << recv.count);
    for (std::size_t i = 0; i < recv.count; ++i) {
      std::uint64_t& word = buffer[recv.offset + i];
      word = recv.combine ? reduce_word(op, word, in[i]) : in[i];
    }
  }
}

void CollectiveExecutor::begin_stage(EpisodeHandle& handle,
                                     std::size_t stage) const {
  if (stage == stages_) {
    handle.done_ = true;
    handle.requests_.clear();
    handle.inbox_.clear();
    return;
  }
  handle.stage_ = stage;
  const StageOps& ops = ops_[handle.ctx_->rank()][stage];
  const int tag =
      handle.episode_ * static_cast<int>(stages_) + static_cast<int>(stage);
  handle.requests_.clear();
  handle.requests_.reserve(ops.sends.size() + ops.recvs.size());
  // Copy every outgoing sub-range first: the stage's sends read the
  // buffer as it is at stage entry, before any incoming data lands.
  for (const SendOp& send : ops.sends) {
    handle.requests_.push_back(
        handle.ctx_->issend(send.dst, tag,
                            send_words(*handle.buffer_, send)));
  }
  handle.inbox_.assign(ops.recvs.size(), Payload{});
  for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
    handle.requests_.push_back(
        handle.ctx_->irecv(ops.recvs[k].src, tag, &handle.inbox_[k]));
  }
}

CollectiveExecutor::EpisodeHandle CollectiveExecutor::post(
    simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
    int episode) const {
  check_context(ctx, buffer);
  EpisodeHandle handle;
  handle.ctx_ = &ctx;
  handle.op_ = op;
  handle.buffer_ = &buffer;
  handle.episode_ = episode;
  begin_stage(handle, 0);
  return handle;
}

bool CollectiveExecutor::test(EpisodeHandle& handle) const {
  if (handle.done_) {
    return true;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "test() on an empty handle");
  for (;;) {
    for (const simmpi::Request& request : handle.requests_) {
      if (!request->test()) {
        return false;
      }
    }
    apply_stage(ops_[handle.ctx_->rank()][handle.stage_], handle.inbox_,
                handle.op_, *handle.buffer_);
    begin_stage(handle, handle.stage_ + 1);
    if (handle.done_) {
      return true;
    }
  }
}

void CollectiveExecutor::wait(EpisodeHandle& handle) const {
  if (handle.done_) {
    return;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "wait() on an empty handle");
  while (!handle.done_) {
    if (handle.ctx_->wait_all_batched_until(
            handle.requests_,
            Clock::now() + options_.progress_slice)) {
      apply_stage(ops_[handle.ctx_->rank()][handle.stage_], handle.inbox_,
                  handle.op_, *handle.buffer_);
      begin_stage(handle, handle.stage_ + 1);
    }
  }
}

void CollectiveExecutor::execute(simmpi::RankContext& ctx, ReduceOp op,
                                 Payload& buffer, int episode) const {
  EpisodeHandle handle = post(ctx, op, buffer, episode);
  wait(handle);
}

void CollectiveExecutor::begin_stage_resilient(ResilientEpisodeHandle& handle,
                                               std::size_t stage) const {
  simmpi::RankStall& mine = handle.report_->per_rank[handle.ctx_->rank()];
  if (stage == stages_) {
    mine.stage_reached = stages_;
    handle.done_ = true;
    handle.sends_.clear();
    handle.recvs_.clear();
    handle.inbox_.reset();
    return;
  }
  handle.stage_ = stage;
  mine.stage_reached = stage;
  if (stage >= handle.crash_at_) {
    mine.crashed = true;
    handle.failed_ = true;
    return;
  }
  const StageOps& ops = ops_[handle.ctx_->rank()][stage];
  const int tag =
      handle.episode_ * static_cast<int>(stages_) + static_cast<int>(stage);
  // Snapshot rule: outgoing words are read before anything of this
  // stage lands, and the buffer is untouched until the stage
  // completes — so every resend re-reads identical words.
  handle.sends_.clear();
  handle.sends_.reserve(ops.sends.size());
  for (const SendOp& send : ops.sends) {
    handle.sends_.push_back(ResilientEpisodeHandle::SendState{
        send.dst,
        {handle.ctx_->issend(send.dst, tag,
                             send_words(*handle.buffer_, send))}});
  }
  // The inbox is shared with the communicator (keepalive): if this
  // rank gives up on a receive, a late sender can still match it and
  // deliver — into storage that must outlive this frame.
  handle.inbox_ = std::make_shared<std::vector<Payload>>(ops.recvs.size());
  handle.recvs_.clear();
  handle.recvs_.reserve(ops.recvs.size());
  for (std::size_t k = 0; k < ops.recvs.size(); ++k) {
    handle.recvs_.push_back(ResilientEpisodeHandle::RecvState{
        ops.recvs[k].src,
        handle.ctx_->irecv(ops.recvs[k].src, tag, &(*handle.inbox_)[k],
                           handle.inbox_)});
  }
  handle.attempt_ = 0;
  handle.budget_ = handle.options_.stage_deadline(stage);
  handle.consumed_ = Clock::duration::zero();
}

CollectiveExecutor::ResilientEpisodeHandle CollectiveExecutor::post_resilient(
    simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
    const simmpi::ResilienceOptions& options, simmpi::StallReport& report,
    int episode) const {
  check_context(ctx, buffer);
  OPTIBAR_REQUIRE(report.per_rank.size() == ops_.size() &&
                      report.stages == stages_,
                  "StallReport not reset for this executor");
  ResilientEpisodeHandle handle;
  handle.ctx_ = &ctx;
  handle.report_ = &report;
  handle.options_ = options;
  handle.op_ = op;
  handle.buffer_ = &buffer;
  handle.episode_ = episode;
  const FaultInjector* faults = ctx.communicator().fault_injector();
  handle.crash_at_ = faults != nullptr ? faults->crash_stage(ctx.rank())
                                       : FaultInjector::kNoCrash;
  begin_stage_resilient(handle, 0);
  return handle;
}

void CollectiveExecutor::progress_resilient(ResilientEpisodeHandle& handle,
                                            Clock::duration slice) const {
  const Clock::time_point slice_end = Clock::now() + slice;
  simmpi::RankStall& mine = handle.report_->per_rank[handle.ctx_->rank()];
  while (!handle.done_ && !handle.failed_) {
    const Clock::time_point t0 = Clock::now();
    const Clock::duration remaining =
        std::max(Clock::duration::zero(), handle.budget_ - handle.consumed_);
    Clock::time_point deadline = t0 + remaining;
    if (deadline > slice_end) {
      deadline = std::max(slice_end, t0);
    }
    bool all_done = true;
    for (ResilientEpisodeHandle::SendState& send : handle.sends_) {
      for (const simmpi::Request& request : send.attempts) {
        send.done = send.done || request->wait_until(deadline);
      }
      all_done = all_done && send.done;
    }
    for (ResilientEpisodeHandle::RecvState& recv : handle.recvs_) {
      if (!recv.done && recv.request->wait_until(deadline)) {
        recv.done = true;
        mine.delivered.push_back(
            simmpi::SignalEdge{handle.stage_, recv.src, handle.ctx_->rank()});
      }
      all_done = all_done && recv.done;
    }
    handle.consumed_ += Clock::now() - t0;
    if (all_done) {
      // Stage complete: apply incoming edges in ascending source order,
      // exactly like the happy path.
      apply_stage(ops_[handle.ctx_->rank()][handle.stage_], *handle.inbox_,
                  handle.op_, *handle.buffer_);
      begin_stage_resilient(handle, handle.stage_ + 1);
      if (Clock::now() >= slice_end) {
        return;
      }
      continue;
    }
    if (handle.consumed_ >= handle.budget_) {
      if (handle.attempt_ >= handle.options_.max_retries) {
        for (const ResilientEpisodeHandle::SendState& send : handle.sends_) {
          if (!send.done) {
            mine.pending_send_to.push_back(send.dst);
          }
        }
        for (const ResilientEpisodeHandle::RecvState& recv : handle.recvs_) {
          if (!recv.done) {
            mine.pending_recv_from.push_back(recv.src);
          }
        }
        handle.failed_ = true;
        return;
      }
      const StageOps& ops = ops_[handle.ctx_->rank()][handle.stage_];
      const int tag = handle.episode_ * static_cast<int>(stages_) +
                      static_cast<int>(handle.stage_);
      for (std::size_t k = 0; k < handle.sends_.size(); ++k) {
        if (!handle.sends_[k].done) {
          handle.sends_[k].attempts.push_back(handle.ctx_->issend(
              handle.sends_[k].dst, tag,
              send_words(*handle.buffer_, ops.sends[k])));
        }
      }
      ++handle.attempt_;
      handle.budget_ = std::chrono::duration_cast<Clock::duration>(
          handle.budget_ * handle.options_.retry_backoff);
      handle.consumed_ = Clock::duration::zero();
    }
    if (Clock::now() >= slice_end) {
      return;
    }
  }
}

bool CollectiveExecutor::test(ResilientEpisodeHandle& handle) const {
  if (handle.done()) {
    return true;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "test() on an empty handle");
  progress_resilient(handle, Clock::duration::zero());
  return handle.done();
}

bool CollectiveExecutor::wait(ResilientEpisodeHandle& handle) const {
  if (handle.done()) {
    return handle.succeeded();
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "wait() on an empty handle");
  while (!handle.done()) {
    progress_resilient(handle, options_.progress_slice);
  }
  return handle.succeeded();
}

bool CollectiveExecutor::execute_resilient(
    simmpi::RankContext& ctx, ReduceOp op, Payload& buffer,
    const simmpi::ResilienceOptions& options, simmpi::StallReport& report,
    int episode) const {
  ResilientEpisodeHandle handle =
      post_resilient(ctx, op, buffer, options, report, episode);
  return wait(handle);
}

CollectiveExecutor::ResilientResult CollectiveExecutor::run_once_resilient(
    const std::vector<Payload>& inputs, ReduceOp op,
    const simmpi::ResilienceOptions& options, const FaultPlan& faults,
    simmpi::LatencyModel latency,
    simmpi::ByteLatencyModel byte_latency) const {
  const std::size_t p = ops_.size();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  ResilientResult result;
  result.buffers = inputs;
  result.report.reset(p, stages_);
  simmpi::Communicator comm(p, std::move(latency), std::move(byte_latency));
  if (!faults.empty()) {
    comm.set_fault_plan(faults);
  }
  run_episode(comm, [&](simmpi::RankContext& ctx) {
    if (execute_resilient(ctx, op, result.buffers[ctx.rank()], options,
                          result.report)) {
      result.report.per_rank[ctx.rank()].finished = true;
    }
  });
  result.report.finalize();
  return result;
}

std::vector<Payload> CollectiveExecutor::run_once(
    const std::vector<Payload>& inputs, ReduceOp op,
    simmpi::LatencyModel latency,
    simmpi::ByteLatencyModel byte_latency) const {
  const std::size_t p = ops_.size();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  std::vector<Payload> buffers = inputs;
  simmpi::Communicator comm(p, std::move(latency), std::move(byte_latency));
  run_episode(comm, [&](simmpi::RankContext& ctx) {
    execute(ctx, op, buffers[ctx.rank()]);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "collective left unmatched operations on the communicator");
  return buffers;
}

}  // namespace optibar
