#include "collective/schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace optibar {

namespace {

/// Partition of [0, elem_count) induced by all nonzero edge boundaries:
/// sorted segment start offsets, with elem_count as the final sentinel.
/// Every edge range is a union of consecutive segments.
std::vector<std::size_t> segment_bounds(const CollectiveSchedule& schedule) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  bounds.push_back(schedule.elem_count());
  for (const CollectiveStage& stage : schedule.stages()) {
    for (const CollectiveEdge& e : stage) {
      if (e.count == 0) {
        continue;
      }
      bounds.push_back(e.offset);
      bounds.push_back(e.offset + e.count);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

std::size_t segment_of(const std::vector<std::size_t>& bounds,
                       std::size_t offset) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), offset);
  OPTIBAR_ASSERT(it != bounds.end() && *it == offset,
                 "offset " << offset << " is not a segment boundary");
  return static_cast<std::size_t>(it - bounds.begin());
}

/// Incoming edges of a stage grouped by receiver, each group in
/// ascending source order — the application order of both the verifier
/// and the executors. Edges are stored sorted by (src, dst), so a
/// single pass appends each receiver's sources in ascending order.
std::vector<std::vector<const CollectiveEdge*>> edges_by_receiver(
    const CollectiveStage& stage, std::size_t ranks) {
  std::vector<std::vector<const CollectiveEdge*>> incoming(ranks);
  for (const CollectiveEdge& e : stage) {
    incoming[e.dst].push_back(&e);
  }
  return incoming;
}

}  // namespace

const char* to_string(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kBroadcast:
      return "bcast";
    case CollectiveOp::kReduce:
      return "reduce";
    case CollectiveOp::kAllreduce:
      return "allreduce";
  }
  OPTIBAR_FAIL("unknown CollectiveOp");
}

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMin:
      return "min";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kXor:
      return "xor";
  }
  OPTIBAR_FAIL("unknown ReduceOp");
}

std::uint64_t reduce_word(ReduceOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;  // wraps mod 2^64: exact and associative
    case ReduceOp::kMin:
      return a < b ? a : b;
    case ReduceOp::kMax:
      return a > b ? a : b;
    case ReduceOp::kXor:
      return a ^ b;
  }
  OPTIBAR_FAIL("unknown ReduceOp");
}

CollectiveSchedule::CollectiveSchedule(CollectiveOp op, std::size_t ranks,
                                       std::size_t elem_count,
                                       std::size_t elem_bytes,
                                       std::size_t root)
    : op_(op),
      ranks_(ranks),
      root_(op == CollectiveOp::kAllreduce ? 0 : root),
      elem_count_(elem_count),
      elem_bytes_(elem_bytes) {
  OPTIBAR_REQUIRE(ranks_ > 0, "collective schedule needs at least one rank");
  OPTIBAR_REQUIRE(root_ < ranks_,
                  "root " << root_ << " out of range for " << ranks_
                          << " ranks");
}

const CollectiveStage& CollectiveSchedule::stage(std::size_t s) const {
  OPTIBAR_REQUIRE(s < stages_.size(),
                  "stage " << s << " out of range (" << stages_.size() << ")");
  return stages_[s];
}

void CollectiveSchedule::append_stage(CollectiveStage stage) {
  std::sort(stage.begin(), stage.end(),
            [](const CollectiveEdge& a, const CollectiveEdge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  for (std::size_t k = 0; k < stage.size(); ++k) {
    const CollectiveEdge& e = stage[k];
    OPTIBAR_REQUIRE(e.src < ranks_ && e.dst < ranks_,
                    "edge " << e.src << "->" << e.dst << " out of range for "
                            << ranks_ << " ranks");
    OPTIBAR_REQUIRE(e.src != e.dst, "self edge at rank " << e.src);
    OPTIBAR_REQUIRE(e.offset + e.count <= elem_count_,
                    "edge range [" << e.offset << ", " << e.offset + e.count
                                   << ") exceeds elem_count " << elem_count_);
    OPTIBAR_REQUIRE(k == 0 || stage[k - 1].src != e.src ||
                        stage[k - 1].dst != e.dst,
                    "duplicate edge " << e.src << "->" << e.dst
                                      << " in one stage");
  }
  stages_.push_back(std::move(stage));
}

std::size_t CollectiveSchedule::total_bytes() const {
  std::size_t bytes = 0;
  for (const CollectiveStage& stage : stages_) {
    for (const CollectiveEdge& e : stage) {
      bytes += edge_bytes(e);
    }
  }
  return bytes;
}

std::size_t CollectiveSchedule::total_edges() const {
  std::size_t edges = 0;
  for (const CollectiveStage& stage : stages_) {
    edges += stage.size();
  }
  return edges;
}

Schedule CollectiveSchedule::signal_schedule() const {
  Schedule signals(ranks_);
  for (const CollectiveStage& stage : stages_) {
    StageMatrix m(ranks_, ranks_, 0);
    for (const CollectiveEdge& e : stage) {
      m(e.src, e.dst) = 1;
    }
    signals.append_stage(std::move(m));
  }
  return signals;
}

CollectiveSchedule from_barrier(const Schedule& schedule,
                                std::size_t elem_bytes) {
  CollectiveSchedule coll(CollectiveOp::kAllreduce, schedule.ranks(),
                          /*elem_count=*/0, elem_bytes);
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    CollectiveStage stage;
    for (std::size_t i = 0; i < schedule.ranks(); ++i) {
      for (std::size_t j : schedule.targets_of(i, s)) {
        stage.push_back(CollectiveEdge{i, j, 0, 0, false});
      }
    }
    coll.append_stage(std::move(stage));
  }
  return coll;
}

bool is_valid_collective(const CollectiveSchedule& schedule) {
  const std::size_t p = schedule.ranks();
  if (schedule.elem_count() == 0) {
    // Zero payload: the data dataflow is vacuous, so validity is the
    // signal pattern's knowledge propagation (the Eq. 3 view) instead —
    // broadcast: the root's signal reaches every rank; reduce: the root
    // transitively hears from every rank; allreduce: a full barrier,
    // everyone comes to know of everyone's arrival.
    std::vector<std::vector<char>> knows(p, std::vector<char>(p, 0));
    for (std::size_t r = 0; r < p; ++r) {
      knows[r][r] = 1;
    }
    for (const CollectiveStage& stage : schedule.stages()) {
      const std::vector<std::vector<char>> snapshot = knows;
      for (const CollectiveEdge& e : stage) {
        for (std::size_t r = 0; r < p; ++r) {
          knows[e.dst][r] |= snapshot[e.src][r];
        }
      }
    }
    const auto knows_all = [&](std::size_t rank) {
      for (std::size_t r = 0; r < p; ++r) {
        if (!knows[rank][r]) {
          return false;
        }
      }
      return true;
    };
    switch (schedule.op()) {
      case CollectiveOp::kBroadcast:
        for (std::size_t r = 0; r < p; ++r) {
          if (!knows[r][schedule.root()]) {
            return false;
          }
        }
        return true;
      case CollectiveOp::kReduce:
        return knows_all(schedule.root());
      case CollectiveOp::kAllreduce:
        for (std::size_t r = 0; r < p; ++r) {
          if (!knows_all(r)) {
            return false;
          }
        }
        return true;
    }
    OPTIBAR_FAIL("unknown CollectiveOp");
  }
  const std::vector<std::size_t> bounds = segment_bounds(schedule);
  const std::size_t segs = bounds.size() - 1;
  // state[rank * segs + seg] is the contribution-count vector of that
  // buffer segment: entry r counts how often rank r's input is folded
  // into it. Initially every buffer holds exactly its own input.
  std::vector<std::vector<std::uint32_t>> state(p * segs);
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t seg = 0; seg < segs; ++seg) {
      state[r * segs + seg].assign(p, 0);
      state[r * segs + seg][r] = 1;
    }
  }

  for (const CollectiveStage& stage : schedule.stages()) {
    const std::vector<std::vector<std::uint32_t>> snapshot = state;
    for (const auto& incoming : edges_by_receiver(stage, p)) {
      for (const CollectiveEdge* e : incoming) {
        if (e->count == 0) {
          continue;
        }
        const std::size_t first = segment_of(bounds, e->offset);
        const std::size_t last = segment_of(bounds, e->offset + e->count);
        for (std::size_t seg = first; seg < last; ++seg) {
          const std::vector<std::uint32_t>& in =
              snapshot[e->src * segs + seg];
          std::vector<std::uint32_t>& out = state[e->dst * segs + seg];
          if (e->combine) {
            for (std::size_t r = 0; r < p; ++r) {
              out[r] += in[r];
            }
          } else {
            out = in;
          }
        }
      }
    }
  }

  const auto holds_reduction = [&](std::size_t rank) {
    for (std::size_t seg = 0; seg < segs; ++seg) {
      for (std::size_t r = 0; r < p; ++r) {
        if (state[rank * segs + seg][r] != 1) {
          return false;
        }
      }
    }
    return true;
  };
  const auto holds_root_copy = [&](std::size_t rank) {
    for (std::size_t seg = 0; seg < segs; ++seg) {
      for (std::size_t r = 0; r < p; ++r) {
        const std::uint32_t want = r == schedule.root() ? 1 : 0;
        if (state[rank * segs + seg][r] != want) {
          return false;
        }
      }
    }
    return true;
  };

  switch (schedule.op()) {
    case CollectiveOp::kBroadcast:
      for (std::size_t r = 0; r < p; ++r) {
        if (!holds_root_copy(r)) {
          return false;
        }
      }
      return true;
    case CollectiveOp::kReduce:
      return holds_reduction(schedule.root());
    case CollectiveOp::kAllreduce:
      for (std::size_t r = 0; r < p; ++r) {
        if (!holds_reduction(r)) {
          return false;
        }
      }
      return true;
  }
  OPTIBAR_FAIL("unknown CollectiveOp");
}

std::vector<Payload> execute_serial(const CollectiveSchedule& schedule,
                                    ReduceOp op,
                                    const std::vector<Payload>& inputs) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  for (const Payload& in : inputs) {
    OPTIBAR_REQUIRE(in.size() == schedule.elem_count(),
                    "input buffer has " << in.size() << " words, expected "
                                        << schedule.elem_count());
  }
  std::vector<Payload> state = inputs;
  for (const CollectiveStage& stage : schedule.stages()) {
    const std::vector<Payload> snapshot = state;
    for (const auto& incoming : edges_by_receiver(stage, p)) {
      for (const CollectiveEdge* e : incoming) {
        const Payload& in = snapshot[e->src];
        Payload& out = state[e->dst];
        for (std::size_t k = 0; k < e->count; ++k) {
          const std::size_t idx = e->offset + k;
          out[idx] =
              e->combine ? reduce_word(op, out[idx], in[idx]) : in[idx];
        }
      }
    }
  }
  return state;
}

std::vector<Payload> oracle_result(const CollectiveSchedule& schedule,
                                   ReduceOp op,
                                   const std::vector<Payload>& inputs) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(inputs.size() == p,
                  "expected " << p << " input buffers, got " << inputs.size());
  std::vector<Payload> result = inputs;
  if (schedule.op() == CollectiveOp::kBroadcast) {
    for (std::size_t r = 0; r < p; ++r) {
      result[r] = inputs[schedule.root()];
    }
    return result;
  }
  Payload reduced = inputs[0];
  for (std::size_t r = 1; r < p; ++r) {
    for (std::size_t k = 0; k < reduced.size(); ++k) {
      reduced[k] = reduce_word(op, reduced[k], inputs[r][k]);
    }
  }
  if (schedule.op() == CollectiveOp::kReduce) {
    result[schedule.root()] = std::move(reduced);
    return result;
  }
  for (std::size_t r = 0; r < p; ++r) {
    result[r] = reduced;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const CollectiveSchedule& schedule) {
  os << to_string(schedule.op()) << " P=" << schedule.ranks()
     << " root=" << schedule.root() << " elems=" << schedule.elem_count()
     << "x" << schedule.elem_bytes() << "B stages="
     << schedule.stage_count() << '\n';
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    os << "  S" << s << ":";
    for (const CollectiveEdge& e : schedule.stage(s)) {
      os << ' ' << e.src << (e.combine ? "+>" : "->") << e.dst << "["
         << e.offset << ',' << e.offset + e.count << ')';
    }
    os << '\n';
  }
  return os;
}

}  // namespace optibar
