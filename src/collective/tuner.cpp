#include "collective/tuner.hpp"

#include <algorithm>
#include <iomanip>
#include <optional>
#include <sstream>
#include <utility>

#include "barrier/compiled_schedule.hpp"
#include "collective/generators.hpp"
#include "collective/predict.hpp"
#include "core/cluster_tree.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {

namespace {

using StageList = std::vector<CollectiveStage>;

/// Stage-wise union of rank-disjoint stage lists (sibling clusters run
/// their phases concurrently; shorter lists simply finish early).
StageList merged_parallel(const std::vector<StageList>& parts) {
  std::size_t depth = 0;
  for (const StageList& part : parts) {
    depth = std::max(depth, part.size());
  }
  StageList out(depth);
  for (const StageList& part : parts) {
    for (std::size_t s = 0; s < part.size(); ++s) {
      out[s].insert(out[s].end(), part[s].begin(), part[s].end());
    }
  }
  return out;
}

StageList concatenated(StageList head, const StageList& tail) {
  head.insert(head.end(), tail.begin(), tail.end());
  return head;
}

/// Binomial broadcast stages over an arbitrary member list, rooted at
/// position `root_pos`, every edge carrying the full vector.
StageList binomial_over(const std::vector<std::size_t>& members,
                        std::size_t root_pos, std::size_t elem_count) {
  const std::size_t n = members.size();
  StageList out;
  const auto member = [&](std::size_t rel) {
    return members[(rel + root_pos) % n];
  };
  for (std::size_t step = 1; step < n; step <<= 1) {
    CollectiveStage stage;
    for (std::size_t rel = 0; rel < step && rel + step < n; ++rel) {
      stage.push_back(CollectiveEdge{member(rel), member(rel + step), 0,
                                     elem_count, false});
    }
    out.push_back(std::move(stage));
  }
  return out;
}

/// Transpose-and-reverse with combining edges: a broadcast phase read
/// backwards is the matching reduction phase (Section V-B's departure
/// trick, applied to dataflow).
StageList reversed_combining(const StageList& stages) {
  StageList out;
  out.reserve(stages.size());
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    CollectiveStage stage;
    stage.reserve(it->size());
    for (const CollectiveEdge& e : *it) {
      stage.push_back(CollectiveEdge{e.dst, e.src, e.offset, e.count, true});
    }
    out.push_back(std::move(stage));
  }
  return out;
}

/// Hierarchical broadcast of the full vector from `src` (a member of
/// `node`) to every rank of `node`: a rep-phase binomial among the
/// per-child entry points, then each child recursing concurrently.
StageList hier_broadcast(const ClusterNode& node, std::size_t src,
                         std::size_t elem_count) {
  if (node.ranks.size() <= 1) {
    return {};
  }
  const auto position = [](const std::vector<std::size_t>& members,
                           std::size_t rank) {
    const auto it = std::find(members.begin(), members.end(), rank);
    OPTIBAR_ASSERT(it != members.end(),
                   "rank " << rank << " not in cluster");
    return static_cast<std::size_t>(it - members.begin());
  };
  if (node.is_leaf()) {
    return binomial_over(node.ranks, position(node.ranks, src), elem_count);
  }
  // Entry point of each child: the source where it lives, the cluster
  // representative elsewhere.
  std::vector<std::size_t> entries;
  std::size_t src_child = node.children.size();
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    const std::vector<std::size_t>& ranks = node.children[c].ranks;
    const bool has_src =
        std::find(ranks.begin(), ranks.end(), src) != ranks.end();
    if (has_src) {
      src_child = c;
    }
    entries.push_back(has_src ? src : node.children[c].representative());
  }
  OPTIBAR_ASSERT(src_child < node.children.size(),
                 "source rank in no child cluster");
  StageList rep_phase = binomial_over(entries, src_child, elem_count);
  std::vector<StageList> child_phases;
  child_phases.reserve(node.children.size());
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    child_phases.push_back(
        hier_broadcast(node.children[c], entries[c], elem_count));
  }
  return concatenated(std::move(rep_phase), merged_parallel(child_phases));
}

/// Remap a schedule generated over local ranks 0..n-1 onto global
/// member ids.
StageList remapped(const CollectiveSchedule& local,
                   const std::vector<std::size_t>& members) {
  StageList out;
  out.reserve(local.stage_count());
  for (const CollectiveStage& stage : local.stages()) {
    CollectiveStage mapped;
    mapped.reserve(stage.size());
    for (const CollectiveEdge& e : stage) {
      mapped.push_back(CollectiveEdge{members[e.src], members[e.dst],
                                      e.offset, e.count, e.combine});
    }
    out.push_back(std::move(mapped));
  }
  return out;
}

CollectiveSchedule build(CollectiveOp op, std::size_t ranks,
                         std::size_t elem_count, std::size_t elem_bytes,
                         std::size_t root, const StageList& stages) {
  CollectiveSchedule s(op, ranks, elem_count, elem_bytes, root);
  for (const CollectiveStage& stage : stages) {
    s.append_stage(stage);
  }
  return s;
}

/// Hierarchical candidates for the op over the cluster tree. Empty when
/// the tree is a single leaf covering everything — the hierarchy would
/// reproduce the plain binomial classics.
std::vector<NamedCollective> hierarchical_candidates(
    const ClusterNode& tree, const CollectiveTuneOptions& options,
    std::size_t ranks, std::size_t elem_count) {
  std::vector<NamedCollective> out;
  if (tree.is_leaf()) {
    return out;
  }
  const std::size_t eb = options.elem_bytes;
  switch (options.op) {
    case CollectiveOp::kBroadcast:
      out.push_back({"hier-bcast",
                     build(options.op, ranks, elem_count, eb, options.root,
                           hier_broadcast(tree, options.root, elem_count))});
      break;
    case CollectiveOp::kReduce:
      out.push_back(
          {"hier-reduce",
           build(options.op, ranks, elem_count, eb, options.root,
                 reversed_combining(
                     hier_broadcast(tree, options.root, elem_count)))});
      break;
    case CollectiveOp::kAllreduce: {
      // Reduce to the tree representative, broadcast back out.
      const std::size_t rep = tree.representative();
      const StageList down = hier_broadcast(tree, rep, elem_count);
      out.push_back({"hier-reduce-bcast",
                     build(options.op, ranks, elem_count, eb, 0,
                           concatenated(reversed_combining(down), down))});
      // Per-cluster reduce, recursive doubling among the cluster
      // representatives, per-cluster broadcast: cross-cluster traffic
      // is all-to-all over reps only.
      std::vector<std::size_t> reps;
      std::vector<StageList> up_phases;
      std::vector<StageList> down_phases;
      for (const ClusterNode& child : tree.children) {
        reps.push_back(child.representative());
        const StageList child_down =
            hier_broadcast(child, child.representative(), elem_count);
        up_phases.push_back(reversed_combining(child_down));
        down_phases.push_back(child_down);
      }
      const StageList rep_exchange = remapped(
          recursive_doubling_allreduce(reps.size(), elem_count, eb), reps);
      out.push_back(
          {"hier-rd-exchange",
           build(options.op, ranks, elem_count, eb, 0,
                 concatenated(
                     concatenated(merged_parallel(up_phases), rep_exchange),
                     merged_parallel(down_phases)))});
      break;
    }
  }
  return out;
}

}  // namespace

CollectiveTuneResult::CollectiveTuneResult(
    TopologyProfile profile, CollectiveSchedule schedule, std::string name,
    double predicted_cost, std::vector<CollectiveCandidate> candidates)
    : profile_(std::move(profile)),
      schedule_(std::move(schedule)),
      name_(std::move(name)),
      predicted_cost_(predicted_cost),
      candidates_(std::move(candidates)) {}

std::string CollectiveTuneResult::describe() const {
  std::ostringstream os;
  os << to_string(schedule_.op()) << " P=" << schedule_.ranks() << " payload="
     << schedule_.elem_count() * schedule_.elem_bytes() << "B\n";
  os << std::scientific << std::setprecision(3);
  for (const CollectiveCandidate& c : candidates_) {
    os << "  " << std::left << std::setw(20) << c.name << ' '
       << c.predicted_cost << (c.name == name_ ? "  <- tuned" : "") << '\n';
  }
  return os.str();
}

CollectiveTuneResult tune_collective(const TopologyProfile& profile,
                                     const CollectiveTuneOptions& options,
                                     const EngineOptions& engine) {
  engine.validate();
  OPTIBAR_REQUIRE(profile.ranks() > 0, "empty profile");
  OPTIBAR_REQUIRE(options.elem_bytes > 0, "elem_bytes must be positive");
  OPTIBAR_REQUIRE(options.payload_bytes % options.elem_bytes == 0,
                  "payload_bytes " << options.payload_bytes
                                   << " is not a multiple of elem_bytes "
                                   << options.elem_bytes);
  const std::size_t p = profile.ranks();
  const std::size_t root =
      options.op == CollectiveOp::kAllreduce ? 0 : options.root;
  OPTIBAR_REQUIRE(root < p, "root " << root << " out of range");
  const std::size_t elem_count = options.payload_bytes / options.elem_bytes;

  TopologyProfile symmetric = profile.symmetrized();
  std::optional<ThreadPool> local_pool;
  if (engine.resolved_threads() > 1) {
    local_pool.emplace(engine.resolved_threads());
  }
  const ClusterNode tree = build_cluster_tree(
      symmetric, engine.clustering, local_pool ? &*local_pool : nullptr);

  std::vector<NamedCollective> pool = classic_collectives(
      options.op, p, root, elem_count, options.elem_bytes);
  for (NamedCollective& cand :
       hierarchical_candidates(tree, options, p, elem_count)) {
    pool.push_back(std::move(cand));
  }

  CompiledSchedule compiled;
  PredictWorkspace workspace;
  std::vector<CollectiveCandidate> scored;
  scored.reserve(pool.size());
  std::size_t best = 0;
  for (std::size_t c = 0; c < pool.size(); ++c) {
    OPTIBAR_ASSERT(is_valid_collective(pool[c].schedule),
                   "generated candidate '" << pool[c].name
                                           << "' has invalid dataflow");
    compile_collective(pool[c].schedule, symmetric, compiled);
    const double cost = predicted_time(compiled, PredictOptions{}, workspace);
    scored.push_back(CollectiveCandidate{pool[c].name, cost});
    if (cost < scored[best].predicted_cost) {
      best = c;
    }
  }

  // Copy the winner out before std::move(scored): function argument
  // evaluation order is unspecified, so indexing a moved-from vector in
  // the same call would be undefined behavior.
  std::string best_name = scored[best].name;
  const double best_cost = scored[best].predicted_cost;
  return CollectiveTuneResult(std::move(symmetric),
                              std::move(pool[best].schedule),
                              std::move(best_name), best_cost,
                              std::move(scored));
}

}  // namespace optibar
