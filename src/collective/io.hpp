// Collective schedule serialisation.
//
// The collective counterpart of barrier/schedule_io.hpp: tuned
// collectives are artefacts the CLI writes next to the profile they
// were tuned from. Versioned text; one header block (op, rank count,
// root, element shape, stage count) followed by one block per stage
// listing its edges as `src dst offset count combine` rows. Loading
// re-validates every edge through CollectiveSchedule::append_stage, so
// a malformed stage line is rejected, not absorbed.
#pragma once

#include <iosfwd>
#include <string>

#include "collective/schedule.hpp"

namespace optibar {

void save_collective(std::ostream& os, const CollectiveSchedule& schedule);
CollectiveSchedule load_collective(std::istream& is);

void save_collective_file(const std::string& path,
                          const CollectiveSchedule& schedule);
CollectiveSchedule load_collective_file(const std::string& path);

}  // namespace optibar
