// Entry point of the `optibar` command-line tool. All logic lives in
// cli.cpp so the test suite can drive it in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> arguments(argv + 1, argv + argc);
  return optibar::cli::run_cli(arguments, std::cout, std::cerr);
}
