#include "cli/cli.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "barrier/algorithms.hpp"
#include "barrier/analysis.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/optimize.hpp"
#include "barrier/schedule_io.hpp"
#include "cli/args.hpp"
#include "collective/io.hpp"
#include "collective/simulate.hpp"
#include "collective/tuner.hpp"
#include "core/hierarchical.hpp"
#include "core/library.hpp"
#include "core/service_soak.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "netsim/trace_export.hpp"
#include "profile/estimator.hpp"
#include "profile/generate_tiled.hpp"
#include "profile/synthetic_engine.hpp"
#include "rma/transport.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/machine_file.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace optibar::cli {

namespace {

MachineSpec machine_by_name(const std::string& name, std::size_t nodes) {
  if (name == "quad") {
    return nodes == 0 ? quad_cluster() : quad_cluster(nodes);
  }
  if (name == "hex") {
    return nodes == 0 ? hex_cluster() : hex_cluster(nodes);
  }
  if (name == "skewed") {
    return nodes == 0 ? skewed_cluster() : skewed_cluster(nodes);
  }
  if (name == "tenk") {
    return nodes == 0 ? tenk_cluster() : tenk_cluster(nodes);
  }
  OPTIBAR_FAIL("unknown machine '" << name << "' (quad, hex, skewed, tenk)");
}

/// A profile file is either dense (v1-v3, TopologyProfile) or tiled
/// (v4, TiledProfile); commands that accept both sniff the header.
bool is_tiled_profile_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  std::string magic;
  std::string version;
  is >> magic >> version;
  return magic == "optibar-profile" && version == "v4";
}

Mapping mapping_by_name(const std::string& name, const MachineSpec& machine,
                        std::size_t ranks) {
  if (name == "block") {
    return block_mapping(machine, ranks);
  }
  if (name == "round-robin" || name == "rr") {
    return round_robin_mapping(machine, ranks);
  }
  OPTIBAR_FAIL("unknown mapping '" << name << "' (block, round-robin)");
}

Schedule algorithm_by_name(const std::string& name, std::size_t ranks) {
  if (name == "linear") {
    return linear_barrier(ranks);
  }
  if (name == "dissemination") {
    return dissemination_barrier(ranks);
  }
  if (name == "tree") {
    return tree_barrier(ranks);
  }
  if (name == "heap-tree") {
    return heap_tree_barrier(ranks);
  }
  if (name == "kary4-tree") {
    return kary_tree_barrier(ranks, 4);
  }
  if (name == "pairwise-exchange") {
    return pairwise_exchange_barrier(ranks);
  }
  if (name == "radix4-dissemination") {
    return radix_dissemination_barrier(ranks, 4);
  }
  OPTIBAR_FAIL("unknown algorithm '"
               << name
               << "' (linear, dissemination, tree, heap-tree, kary4-tree, "
                  "pairwise-exchange, radix4-dissemination)");
}

/// Load either --schedule or --algorithm against a loaded profile.
StoredSchedule schedule_from_args(const Args& args,
                                  const TopologyProfile& profile) {
  OPTIBAR_REQUIRE(args.has("schedule") != args.has("algorithm"),
                  "give exactly one of --schedule and --algorithm");
  if (args.has("schedule")) {
    StoredSchedule stored = load_schedule_file(args.require("schedule"));
    OPTIBAR_REQUIRE(stored.schedule.ranks() == profile.ranks(),
                    "schedule has " << stored.schedule.ranks()
                                    << " ranks, profile "
                                    << profile.ranks());
    return stored;
  }
  StoredSchedule stored;
  stored.schedule =
      algorithm_by_name(args.require("algorithm"), profile.ranks());
  return stored;
}

int cmd_machines(const Args& args, std::ostream& out) {
  args.check_allowed({});
  Table table({"name", "nodes", "sockets", "cores/socket", "cores",
               "internode_O[us]", "internode_L[us]"});
  for (const MachineSpec& m :
       {quad_cluster(), hex_cluster(), skewed_cluster(), tenk_cluster()}) {
    table.add_row({m.name(), Table::num(m.nodes()),
                   Table::num(m.sockets_per_node()),
                   Table::num(m.cores_per_socket()),
                   Table::num(m.total_cores()),
                   Table::num(m.tiers().inter_node.overhead * 1e6, 1),
                   Table::num(m.tiers().inter_node.latency * 1e6, 1)});
  }
  table.print(out);
  out << "\nuse --machine quad|hex|skewed|tenk (optionally --nodes N)\n";
  return 0;
}

int cmd_profile(const Args& args, std::ostream& out) {
  args.check_allowed({"machine", "machine-file", "nodes", "ranks", "mapping",
                      "estimate", "noise", "median", "heterogeneity", "seed",
                      "reps", "out", "tiled"});
  const std::size_t ranks = args.require_size("ranks");
  if (args.has("tiled")) {
    // Direct tiled (v4) generation: the only path that reaches 10k
    // ranks, since it never touches a dense P x P matrix. Exact tiers
    // only — jitter and estimation would break block structure.
    OPTIBAR_REQUIRE(!args.has("estimate") && !args.has("heterogeneity") &&
                        !args.has("mapping"),
                    "--tiled generates exact block-mapped profiles; it "
                    "cannot combine with --estimate, --heterogeneity, or "
                    "--mapping");
    const MachineSpec machine =
        machine_by_name(args.require("machine"), args.size_or("nodes", 0));
    const TiledProfile tiled = generate_tiled_profile(machine, ranks);
    const std::string path = args.require("out");
    tiled.save_file(path);
    out << "wrote " << ranks << "-rank tiled profile of " << machine.name()
        << " (" << tiled.cluster_count() << " clusters, "
        << tiled.class_count() << " class(es)) to " << path << "\n";
    return 0;
  }
  OPTIBAR_REQUIRE(args.has("machine") != args.has("machine-file"),
                  "give exactly one of --machine and --machine-file");
  if (args.has("machine-file")) {
    // Machine description from disk; irregular machines use identity
    // rank placement and ground-truth generation.
    const MachineFile parsed = load_machine_file(args.require("machine-file"));
    OPTIBAR_REQUIRE(
        !args.has("estimate"),
        "--estimate is only supported with the built-in machine presets");
    TopologyProfile profile = [&] {
      if (parsed.uniform) {
        const MachineSpec machine = parsed.to_spec();
        const Mapping mapping = mapping_by_name(
            args.get_or("mapping", "round-robin"), machine, ranks);
        GenerateOptions options;
        options.heterogeneity = args.double_or("heterogeneity", 0.0);
        options.seed = args.size_or("seed", 42);
        return generate_profile(machine, mapping, options);
      }
      return generate_profile(parsed.to_custom(), ranks);
    }();
    const std::string path = args.require("out");
    profile.save_file(path);
    out << "wrote " << ranks << "-rank profile of " << parsed.name << " ("
        << (parsed.uniform ? "uniform" : "irregular") << " machine file) to "
        << path << "\n";
    return 0;
  }
  const MachineSpec machine =
      machine_by_name(args.require("machine"), args.size_or("nodes", 0));
  const Mapping mapping =
      mapping_by_name(args.get_or("mapping", "round-robin"), machine, ranks);

  TopologyProfile profile = [&] {
    if (!args.has("estimate")) {
      GenerateOptions options;
      options.heterogeneity = args.double_or("heterogeneity", 0.0);
      options.seed = args.size_or("seed", 42);
      return generate_profile(machine, mapping, options);
    }
    SyntheticEngineOptions engine_options;
    engine_options.noise = args.double_or("noise", 0.02);
    engine_options.seed = args.size_or("seed", 7);
    SyntheticEngine engine(machine, mapping, engine_options);
    EstimatorOptions est;
    est.repetitions = args.size_or("reps", 25);
    if (args.has("median")) {
      est.aggregator = SampleAggregator::kMedian;
    }
    return estimate_profile(engine, est);
  }();

  const std::string path = args.require("out");
  profile.save_file(path);
  out << "wrote " << ranks << "-rank profile of " << machine.name() << " ("
      << mapping.policy() << " mapping"
      << (args.has("estimate") ? ", estimated" : ", ground truth") << ") to "
      << path << "\n";
  return 0;
}

int cmd_heatmap(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "matrix"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const std::string which = args.get_or("matrix", "L");
  OPTIBAR_REQUIRE(which == "L" || which == "O",
                  "--matrix must be L or O, got " << which);
  out << which << " matrix heat map, " << profile.ranks() << " ranks:\n";
  out << render_heatmap(which == "L" ? profile.latency()
                                     : profile.overhead());
  return 0;
}

int tune_hierarchical_cmd(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "hierarchical", "extended", "sparseness",
                      "schedule-out", "threads", "simulate", "reps", "jitter",
                      "seed", "tolerance", "min-gap-ratio"});
  EngineOptions options;
  options.clustering.sss.sparseness = args.double_or("sparseness", 0.35);
  options.threads = args.size_or("threads", 1);
  if (args.has("extended")) {
    options.composition.algorithms = extended_algorithms();
  }
  const std::string path = args.require("profile");
  const HierarchicalTuneResult tuned = [&] {
    if (is_tiled_profile_file(path)) {
      return tune_hierarchical(TiledProfile::load_file(path), options);
    }
    DetectOptions detection;
    detection.tolerance = args.double_or("tolerance", 0.05);
    detection.min_gap_ratio = args.double_or("min-gap-ratio", 3.0);
    return tune_hierarchical(TopologyProfile::load_file(path), options,
                             detection);
  }();

  out << tuned.describe();
  out.setf(std::ios::scientific);
  out << "predicted cost: " << tuned.predicted_cost << " s\n";

  if (args.has("simulate")) {
    // Netsim the tuned plan to completion — the blocked plan compiles
    // straight into the CSR engine; no dense stage matrix even at 10k.
    SimOptions sim;
    sim.jitter = args.double_or("jitter", 0.03);
    sim.seed = args.size_or("seed", 2011);
    const std::size_t reps = args.size_or("reps", 5);
    double total = 0.0;
    if (tuned.used_dense_fallback) {
      ThreadPool pool(options.resolved_threads());
      total = simulate_mean_time(tuned.dense->schedule(),
                                 tuned.dense->profile(), sim, reps, &pool) *
              static_cast<double>(reps);
    } else {
      CompiledSchedule compiled;
      compile_blocked(tuned.blocked, tuned.tiled, compiled);
      SimWorkspace workspace;
      SimResult result;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        SimOptions rep_options = sim;
        rep_options.seed = sim.seed + rep;
        simulate_compiled_into(compiled, tuned.tiled, rep_options, workspace,
                               result);
        OPTIBAR_REQUIRE(!result.deadlocked,
                        "simulated barrier deadlocked at repetition " << rep);
        total += result.barrier_time();
      }
    }
    out << "simulated barrier time: " << total / static_cast<double>(reps)
        << " s (mean of " << reps << " repetitions, jitter " << sim.jitter
        << ")\n";
  }

  if (args.has("schedule-out")) {
    OPTIBAR_REQUIRE(!tuned.used_dense_fallback,
                    "--schedule-out on the dense fallback path: rerun "
                    "without --hierarchical");
    StoredSchedule stored;
    stored.schedule = tuned.blocked.to_dense();  // guarded at large P
    stored.awaited_stages = tuned.blocked.awaited_stages();
    save_schedule_file(args.require("schedule-out"), stored);
    out << "schedule written to " << args.require("schedule-out") << "\n";
  }
  return 0;
}

int cmd_tune(const Args& args, std::ostream& out) {
  if (args.has("hierarchical")) {
    return tune_hierarchical_cmd(args, out);
  }
  args.check_allowed({"profile", "extended", "optimize", "sparseness",
                      "schedule-out", "code-out", "function", "threads"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  EngineOptions options;
  options.function_name = args.get_or("function", "optibar_barrier");
  options.clustering.sss.sparseness = args.double_or("sparseness", 0.35);
  options.threads = args.size_or("threads", 1);
  if (args.has("extended")) {
    options.composition.algorithms = extended_algorithms();
  }
  const TuneResult tuned = tune_barrier(profile, options);

  out << describe_tree(tuned.cluster_tree());
  out << tuned.barrier().describe();
  out.setf(std::ios::scientific);
  out << "predicted cost: " << tuned.predicted_cost() << " s\n";

  Schedule final_schedule = tuned.schedule();
  std::vector<bool> awaited = tuned.barrier().awaited_stages;
  if (args.has("optimize")) {
    const OptimizeResult optimized =
        optimize_schedule(final_schedule, tuned.profile());
    out << "post-optimization: " << optimized.signals_removed
        << " signals pruned, " << optimized.stages_fused
        << " stages fused, predicted " << optimized.cost_before << " -> "
        << optimized.cost_after << " s\n";
    final_schedule = optimized.schedule;
    // Stage identities changed; conservative Eq. 1 pricing from here on.
    awaited.clear();
  }

  if (args.has("schedule-out")) {
    StoredSchedule stored;
    stored.schedule = final_schedule;
    stored.awaited_stages = awaited;
    save_schedule_file(args.require("schedule-out"), stored);
    out << "schedule written to " << args.require("schedule-out") << "\n";
  }
  if (args.has("code-out")) {
    std::ofstream code(args.require("code-out"));
    OPTIBAR_REQUIRE(code.is_open(),
                    "cannot open " << args.require("code-out"));
    code << generate_cpp(final_schedule,
                         args.get_or("function", "optibar_barrier"))
                .source;
    out << "generated source written to " << args.require("code-out") << "\n";
  }
  return 0;
}

int cmd_predict(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "schedule", "algorithm"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const StoredSchedule stored = schedule_from_args(args, profile);
  PredictOptions options;
  options.awaited_stages = stored.awaited_stages;
  const Prediction prediction =
      predict(stored.schedule, profile, options);
  out.setf(std::ios::scientific);
  out << "predicted critical path: " << prediction.critical_path << " s over "
      << stored.schedule.stage_count() << " stages\n";
  for (std::size_t s = 0; s < prediction.stage_increment.size(); ++s) {
    out << "  stage " << s << ": +" << prediction.stage_increment[s] << " s\n";
  }
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "schedule", "algorithm", "reps", "jitter",
                      "seed", "faults", "slack", "retries",
                      "deadline-floor-ms", "threads"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const StoredSchedule stored = schedule_from_args(args, profile);
  OPTIBAR_REQUIRE(stored.schedule.is_barrier(),
                  "refusing to simulate a non-barrier pattern");
  if (args.has("faults")) {
    // Fault-injection mode: execute the schedule on the real threaded
    // runtime under the given fault plan, with bounded per-stage waits,
    // and render the stall diagnostics. Exit 4 when any rank stalled.
    const FaultPlan faults = FaultPlan::parse(args.require("faults"));
    PredictOptions predict_options;
    predict_options.awaited_stages = stored.awaited_stages;
    const Prediction prediction =
        predict(stored.schedule, profile, predict_options);
    simmpi::ResilienceOptions resilience;
    resilience.predicted_stage_seconds = prediction.stage_increment;
    resilience.slack = args.double_or("slack", 8.0);
    resilience.max_retries = args.size_or("retries", 1);
    resilience.deadline_floor = std::chrono::milliseconds(
        args.size_or("deadline-floor-ms", 10));
    const simmpi::ScheduleExecutor executor(stored.schedule);
    const simmpi::StallReport report =
        executor.run_once_resilient(resilience, faults);
    out << "fault plan: " << faults.spec() << "\n" << report.describe();
    return report.stalled ? 4 : 0;
  }
  SimOptions options;
  options.jitter = args.double_or("jitter", 0.03);
  options.seed = args.size_or("seed", 2011);
  const std::size_t reps = args.size_or("reps", 25);
  // Repetitions are seed-independent, so they fan out; the mean is
  // bit-identical at any thread count.
  ThreadPool pool(args.size_or("threads", 1));
  const double mean_time =
      simulate_mean_time(stored.schedule, profile, options, reps, &pool);
  out.setf(std::ios::scientific);
  out << "simulated barrier time: " << mean_time << " s (mean of " << reps
      << " repetitions, jitter " << options.jitter << ")\n";
  return 0;
}

int cmd_compare(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "reps", "jitter", "seed", "extended",
                      "threads", "transport"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const std::size_t p = profile.ranks();
  SimOptions sim_options;
  sim_options.jitter = args.double_or("jitter", 0.03);
  sim_options.seed = args.size_or("seed", 2011);
  const std::size_t reps = args.size_or("reps", 25);
  const rma::Transport transport =
      rma::parse_transport(args.get_or("transport", "two-sided"));

  EngineOptions tune_options;
  tune_options.threads = args.size_or("threads", 1);
  if (args.has("extended")) {
    tune_options.composition.algorithms = extended_algorithms();
  }
  const TuneResult tuned = tune_barrier(profile, tune_options);

  // The same worker pool the tuner used now fans out simulation reps.
  ThreadPool sim_pool(tune_options.threads);
  Table table({"algorithm", "stages", "signals", "predicted[s]",
               "simulated[s]"});
  auto add = [&](const std::string& name, const Schedule& schedule,
                 const std::vector<bool>& awaited) {
    PredictOptions predict_options;
    predict_options.awaited_stages = awaited;
    table.add_row(
        {name, Table::num(schedule.stage_count()),
         Table::num(schedule.total_signals()),
         Table::num(predicted_time(schedule, profile, predict_options), 8),
         Table::num(simulate_mean_time(schedule, profile, sim_options, reps,
                                       &sim_pool),
                    8)});
  };
  add("linear", linear_barrier(p), {});
  add("dissemination", dissemination_barrier(p), {});
  add("tree (MPI)", tree_barrier(p), {});
  add("hybrid (tuned)", tuned.schedule(), tuned.barrier().awaited_stages);
  if (transport != rma::Transport::kTwoSided) {
    // Re-tag the tuned signal pattern under the requested transport
    // policy: predicted and simulated columns then price put edges
    // through the extended (R-aware) cost model and the netsim put
    // path, against the all-two-sided row above.
    Schedule tagged = tuned.schedule();
    rma::assign_transports(tagged, profile, tuned.barrier().awaited_stages,
                           transport);
    add("hybrid (tuned, " + std::string(rma::transport_name(transport)) +
            ", " + Table::num(tagged.one_sided_signal_count()) + " puts)",
        tagged, tuned.barrier().awaited_stages);
  }
  table.print(out);
  return 0;
}

int cmd_trace(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "schedule", "algorithm", "seed", "jitter",
                      "format"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const StoredSchedule stored = schedule_from_args(args, profile);
  OPTIBAR_REQUIRE(stored.schedule.is_barrier(),
                  "refusing to trace a non-barrier pattern");
  SimOptions options;
  options.record_trace = true;
  options.jitter = args.double_or("jitter", 0.0);
  options.seed = args.size_or("seed", 2011);
  const SimResult result = simulate(stored.schedule, profile, options);
  const std::string format = args.get_or("format", "csv");
  if (format == "csv") {
    write_trace_csv(out, result);
  } else if (format == "chrome") {
    write_trace_chrome_json(out, result);
  } else {
    OPTIBAR_FAIL("--format must be csv or chrome, got " << format);
  }
  return 0;
}

int cmd_sweep(const Args& args, std::ostream& out) {
  args.check_allowed({"machine", "machine-file", "nodes", "from", "to",
                      "mapping", "reps", "jitter", "seed", "threads"});
  OPTIBAR_REQUIRE(args.has("machine") != args.has("machine-file"),
                  "give exactly one of --machine and --machine-file");
  const std::size_t from = args.size_or("from", 2);
  OPTIBAR_REQUIRE(from >= 2, "--from must be >= 2");
  SimOptions sim;
  sim.jitter = args.double_or("jitter", 0.03);
  sim.seed = args.size_or("seed", 2011);
  const std::size_t reps = args.size_or("reps", 25);

  // Per-P profile factory for either machine source.
  std::function<TopologyProfile(std::size_t)> profile_for;
  std::size_t capacity = 0;
  if (args.has("machine")) {
    const MachineSpec machine =
        machine_by_name(args.require("machine"), args.size_or("nodes", 0));
    const std::string mapping_name = args.get_or("mapping", "round-robin");
    capacity = machine.total_cores();
    profile_for = [machine, mapping_name](std::size_t p) {
      return generate_profile(
          machine, mapping_by_name(mapping_name, machine, p),
          GenerateOptions{});
    };
  } else {
    const MachineFile parsed = load_machine_file(args.require("machine-file"));
    if (parsed.uniform) {
      const MachineSpec machine = parsed.to_spec();
      const std::string mapping_name = args.get_or("mapping", "round-robin");
      capacity = machine.total_cores();
      profile_for = [machine, mapping_name](std::size_t p) {
        return generate_profile(
            machine, mapping_by_name(mapping_name, machine, p),
            GenerateOptions{});
      };
    } else {
      const CustomMachine machine = parsed.to_custom();
      capacity = machine.total_cores();
      profile_for = [machine](std::size_t p) {
        return generate_profile(machine, p);
      };
    }
  }
  const std::size_t to = args.size_or("to", capacity);
  OPTIBAR_REQUIRE(to >= from && to <= capacity,
                  "--to must be in [" << from << ", " << capacity << "]");

  EngineOptions tune_options;
  tune_options.threads = args.size_or("threads", 1);

  ThreadPool sim_pool(tune_options.threads);
  Table table({"P", "linear", "dissemination", "tree", "hybrid",
               "hybrid_root"});
  for (std::size_t p = from; p <= to; ++p) {
    const TopologyProfile profile = profile_for(p);
    const TuneResult tuned = tune_barrier(profile, tune_options);
    auto measured = [&](const Schedule& s) {
      return Table::num(simulate_mean_time(s, profile, sim, reps, &sim_pool),
                        8);
    };
    table.add_row({Table::num(p), measured(linear_barrier(p)),
                   measured(dissemination_barrier(p)),
                   measured(tree_barrier(p)), measured(tuned.schedule()),
                   tuned.barrier().root_algorithm});
  }
  table.print(out);
  out << "\nCSV:\n";
  table.print_csv(out);
  return 0;
}

int cmd_workload(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "schedule", "algorithm", "episodes",
                      "compute", "skew", "seed", "jitter", "timeline",
                      "reps", "threads"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const StoredSchedule stored = schedule_from_args(args, profile);
  OPTIBAR_REQUIRE(stored.schedule.is_barrier(),
                  "refusing to run a non-barrier pattern");
  WorkloadOptions options;
  options.episodes = args.size_or("episodes", 50);
  options.compute_mean = args.double_or("compute", 3e-4);
  options.compute_stddev = args.double_or("skew", 0.0);
  options.sim.seed = args.size_or("seed", 2011);
  options.sim.jitter = args.double_or("jitter", 0.0);
  const std::size_t reps = args.size_or("reps", 1);
  ThreadPool pool(args.size_or("threads", 1));
  const std::vector<WorkloadResult> runs =
      simulate_workload_reps(stored.schedule, profile, options, reps, &pool);
  const WorkloadResult& result = runs.front();
  out.setf(std::ios::scientific);
  out << "bulk-synchronous workload: " << options.episodes
      << " episodes, compute " << options.compute_mean << " s +- "
      << options.compute_stddev << " s\n"
      << "mean barrier span: " << result.mean_barrier_time() << " s\n"
      << "total synchronization wait: " << result.total_wait() << " s\n"
      << "makespan: " << result.makespan << " s\n";
  if (reps > 1) {
    double barrier_sum = 0.0;
    double wait_sum = 0.0;
    double makespan_sum = 0.0;
    for (const WorkloadResult& run : runs) {
      barrier_sum += run.mean_barrier_time();
      wait_sum += run.total_wait();
      makespan_sum += run.makespan;
    }
    const double n = static_cast<double>(reps);
    out << "across " << reps << " repetitions:\n"
        << "  mean barrier span: " << barrier_sum / n << " s\n"
        << "  mean total wait: " << wait_sum / n << " s\n"
        << "  mean makespan: " << makespan_sum / n << " s\n";
  }
  if (args.has("timeline")) {
    SimOptions one;
    one.seed = options.sim.seed;
    one.jitter = options.sim.jitter;
    one.record_trace = true;
    const SimResult episode = simulate(stored.schedule, profile, one);
    out << "\nsingle-episode " << render_timeline(episode);
  }
  return 0;
}

// Comma-separated --ratios list, each in [0,1].
std::vector<double> parse_ratio_list(const std::string& spec) {
  std::vector<double> ratios;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) {
      continue;
    }
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(item, &consumed);
    } catch (const std::exception&) {
      OPTIBAR_FAIL("bad ratio '" << item << "' in --ratios");
    }
    OPTIBAR_REQUIRE(consumed == item.size(),
                    "bad ratio '" << item << "' in --ratios");
    OPTIBAR_REQUIRE(value >= 0.0 && value <= 1.0,
                    "ratio " << value << " outside [0,1]");
    ratios.push_back(value);
  }
  OPTIBAR_REQUIRE(!ratios.empty(), "--ratios lists no values");
  return ratios;
}

int cmd_overlap(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "schedule", "algorithm", "compute", "skew",
                      "ratios", "poll", "reps", "seed", "jitter", "threads"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  const StoredSchedule stored = schedule_from_args(args, profile);
  OPTIBAR_REQUIRE(stored.schedule.is_barrier(),
                  "refusing to overlap a non-barrier pattern");
  OverlapOptions options;
  options.compute_seconds = args.double_or("compute", 1e-3);
  options.compute_stddev = args.double_or("skew", 0.0);
  options.poll_interval = args.double_or("poll", 5e-5);
  options.sim.seed = args.size_or("seed", 2011);
  options.sim.jitter = args.double_or("jitter", 0.0);
  const std::size_t reps = args.size_or("reps", 5);
  const std::vector<double> ratios =
      parse_ratio_list(args.get_or("ratios", "0,0.25,0.5,0.75,1"));
  ThreadPool pool(args.size_or("threads", 1));

  // Analytic companion to the sweep: the Eq. 1/2 predictor gives the
  // blocking barrier span; overlapping hides up to ratio * compute of
  // it, and tick-granular progress adds about half a poll interval per
  // non-empty stage while the host computes. The simulated column is
  // ground truth; this is the curve EXPERIMENTS.md compares against.
  PredictOptions predict_options;
  predict_options.awaited_stages = stored.awaited_stages;
  const double t_pred = predicted_time(stored.schedule, profile,
                                       predict_options);
  const double poll_term =
      static_cast<double>(stored.schedule.nonempty_stage_count()) *
      options.poll_interval * 0.5;

  out.setf(std::ios::scientific);
  out << "overlap sweep: compute " << options.compute_seconds << " s +- "
      << options.compute_stddev << " s, poll " << options.poll_interval
      << " s, " << reps << " repetition(s)\n"
      << "predicted blocking barrier (Eq. 1/2): " << t_pred << " s\n";
  Table table({"ratio", "blocking[s]", "nonblocking[s]", "saved[s]",
               "exposed[s]", "predicted-exposed[s]", "efficiency"});
  for (const double ratio : ratios) {
    options.overlap_ratio = ratio;
    const OverlapResult result = simulate_overlap_mean(
        stored.schedule, profile, options, reps, &pool);
    const double predicted_exposed =
        ratio == 0.0
            ? t_pred
            : std::max(0.0, t_pred + poll_term -
                                ratio * options.compute_seconds);
    table.add_row({Table::num(ratio, 2),
                   Table::num(result.blocking_completion, 8),
                   Table::num(result.nonblocking_completion, 8),
                   Table::num(result.saved, 8),
                   Table::num(result.exposed_wait, 8),
                   Table::num(predicted_exposed, 8),
                   Table::num(result.overlap_efficiency, 3)});
  }
  table.print(out);
  return 0;
}

CollectiveOp collective_op_by_name(const std::string& name) {
  if (name == "bcast") {
    return CollectiveOp::kBroadcast;
  }
  if (name == "reduce") {
    return CollectiveOp::kReduce;
  }
  if (name == "allreduce") {
    return CollectiveOp::kAllreduce;
  }
  OPTIBAR_FAIL("unknown collective op '" << name
                                         << "' (bcast, reduce, allreduce)");
}

int cmd_collective(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "op", "bytes", "root", "threads", "reps",
                      "jitter", "seed", "schedule-out"});
  const TopologyProfile profile =
      TopologyProfile::load_file(args.require("profile"));
  CollectiveTuneOptions options;
  options.op = collective_op_by_name(args.get_or("op", "allreduce"));
  options.payload_bytes = args.size_or("bytes", 0);
  options.root = args.size_or("root", 0);
  EngineOptions engine;
  engine.threads = args.size_or("threads", 1);
  const CollectiveTuneResult tuned = tune_collective(profile, options, engine);

  out << to_string(options.op) << ", " << profile.ranks() << " ranks, "
      << options.payload_bytes << " payload bytes";
  if (options.op != CollectiveOp::kAllreduce) {
    out << ", root " << options.root;
  }
  out << ":\n" << tuned.describe();

  SimOptions sim;
  sim.jitter = args.double_or("jitter", 0.03);
  sim.seed = args.size_or("seed", 2011);
  const std::size_t reps = args.size_or("reps", 25);
  const double simulated =
      simulate_collective_mean_time(tuned.schedule(), tuned.profile(), sim,
                                    reps);
  out.setf(std::ios::scientific);
  out << "simulated time: " << simulated << " s (netsim mean of " << reps
      << " repetitions, jitter " << sim.jitter << ")\n";

  if (args.has("schedule-out")) {
    save_collective_file(args.require("schedule-out"), tuned.schedule());
    out << "collective schedule written to " << args.require("schedule-out")
        << "\n";
  }
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  args.check_allowed(
      {"schedule", "machine", "machine-file", "nodes", "mapping"});
  const StoredSchedule stored =
      load_schedule_file(args.require("schedule"));
  OPTIBAR_REQUIRE(args.has("machine") != args.has("machine-file"),
                  "give exactly one of --machine and --machine-file");
  if (args.has("machine-file")) {
    const MachineFile parsed = load_machine_file(args.require("machine-file"));
    if (!parsed.uniform) {
      out << describe_usage(stored.schedule, parsed.to_custom());
      return 0;
    }
    const MachineSpec machine = parsed.to_spec();
    const Mapping mapping =
        mapping_by_name(args.get_or("mapping", "round-robin"), machine,
                        stored.schedule.ranks());
    out << describe_usage(stored.schedule, machine, mapping);
    return 0;
  }
  const MachineSpec machine =
      machine_by_name(args.require("machine"), args.size_or("nodes", 0));
  const Mapping mapping =
      mapping_by_name(args.get_or("mapping", "round-robin"), machine,
                      stored.schedule.ranks());
  out << describe_usage(stored.schedule, machine, mapping);
  return 0;
}

int cmd_clusters(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "tolerance", "min-gap-ratio"});
  const std::string path = args.require("profile");
  if (is_tiled_profile_file(path)) {
    // A v4 file carries its decomposition; report it as stored.
    const TiledProfile tiled = TiledProfile::load_file(path);
    out << tiled.ranks() << " ranks in " << tiled.cluster_count()
        << " clusters of " << tiled.class_count()
        << " class(es), tolerance " << tiled.tolerance() << " (tiled v4)\n";
    Table table({"class", "clusters", "ranks/cluster"});
    for (std::size_t k = 0; k < tiled.class_count(); ++k) {
      std::size_t instances = 0;
      for (std::size_t cls : tiled.class_of()) {
        instances += cls == k ? 1 : 0;
      }
      table.add_row({Table::num(k), Table::num(instances),
                     Table::num(tiled.class_tile(k).ranks())});
    }
    table.print(out);
    return 0;
  }
  const TopologyProfile profile = TopologyProfile::load_file(path);
  DetectOptions detection;
  detection.tolerance = args.double_or("tolerance", 0.05);
  detection.min_gap_ratio = args.double_or("min-gap-ratio", 3.0);
  const ClusterDecomposition decomp =
      detect_logical_clusters(profile.symmetrized(), detection);
  if (decomp.single_cluster()) {
    out << profile.ranks() << " ranks, single logical cluster (no O gap of "
        << detection.min_gap_ratio << "x or more)\n";
    return 0;
  }
  out.setf(std::ios::scientific);
  out << profile.ranks() << " ranks in " << decomp.cluster_count()
      << " clusters of " << decomp.num_classes << " class(es), cut at "
      << decomp.threshold << " s\n";
  Table table({"cluster", "class", "size", "members"});
  for (std::size_t c = 0; c < decomp.cluster_count(); ++c) {
    const auto& members = decomp.clusters[c];
    std::string span = Table::num(members.front());
    if (members.size() > 1) {
      const bool contiguous =
          members.back() - members.front() + 1 == members.size();
      span += (contiguous ? ".." : ", .., ") + Table::num(members.back());
    }
    table.add_row({Table::num(c), Table::num(decomp.class_of[c]),
                   Table::num(members.size()), span});
  }
  table.print(out);
  // Whether `tune --hierarchical` would actually take the blocked path.
  try {
    TiledProfile::from_dense(profile.symmetrized(), decomp);
    out << "block-structured within tolerance " << detection.tolerance
        << ": yes (tune --hierarchical takes the blocked path)\n";
  } catch (const Error& error) {
    out << "block-structured within tolerance " << detection.tolerance
        << ": NO (tune --hierarchical falls back to the dense tuner)\n";
  }
  return 0;
}

int cmd_validate(const Args& args, std::ostream& out) {
  args.check_allowed({"schedule"});
  const StoredSchedule stored =
      load_schedule_file(args.require("schedule"));
  const bool valid = stored.schedule.is_barrier();
  out << "ranks: " << stored.schedule.ranks() << "\n"
      << "stages: " << stored.schedule.stage_count() << " ("
      << stored.schedule.nonempty_stage_count() << " non-empty)\n"
      << "signals: " << stored.schedule.total_signals() << "\n"
      << "barrier (Eq. 3): " << (valid ? "yes" : "NO") << "\n";
  return valid ? 0 : 2;
}

int cmd_library(const Args& args, std::ostream& out) {
  args.check_allowed({"profile", "threads", "auto-repair", "store", "soak",
                      "ops", "clients", "subsets", "seed"});
  EngineOptions options;
  options.threads = args.size_or("threads", 1);
  options.service.auto_repair = args.has("auto-repair");
  BarrierLibrary library = BarrierLibrary::from_profile_file(
      args.require("profile"), options);
  out << "plan service over " << library.ranks() << " ranks (auto-repair "
      << (options.service.auto_repair ? "on" : "off") << ")\n";

  // --store FILE is the warm-restart handle: load it when it exists,
  // save the (possibly grown) store back on the way out.
  const std::string store_path = args.get_or("store", "");
  if (!store_path.empty() && std::filesystem::exists(store_path)) {
    library.load_store(store_path);
    out << "warm restart: " << library.cache_size() << " plan(s) loaded from "
        << store_path << "\n";
  }

  if (args.has("soak")) {
    SoakOptions soak;
    soak.operations = args.size_or("ops", 100000);
    soak.clients = args.size_or("clients", 4);
    soak.subsets = args.size_or("subsets", 8);
    soak.seed = args.size_or("seed", 1);
    const SoakResult result = run_service_soak(library, soak);
    out << result.describe();
  } else {
    const LibraryEntry& world = library.full_barrier();
    out.setf(std::ios::scientific);
    out << "world plan: " << world.stored.schedule.stage_count()
        << " stages, predicted " << world.predicted_cost << " s, state "
        << to_string(library.plan_state([&] {
             std::vector<std::size_t> all(library.ranks());
             for (std::size_t i = 0; i < all.size(); ++i) {
               all[i] = i;
             }
             return all;
           }()))
        << "\n";
    const ServiceStats stats = library.stats();
    out << "cached plans " << library.cache_size() << ", tunes "
        << stats.tunes << ", quarantines " << stats.quarantines << "\n";
  }

  if (!store_path.empty()) {
    library.save_store(store_path);
    out << "plan store saved to " << store_path << " ("
        << library.cache_size() << " plan(s))\n";
  }
  return 0;
}

using Command = std::function<int(const Args&, std::ostream&)>;

const std::map<std::string, Command>& command_table() {
  static const std::map<std::string, Command> commands{
      {"machines", cmd_machines}, {"profile", cmd_profile},
      {"heatmap", cmd_heatmap},   {"tune", cmd_tune},
      {"clusters", cmd_clusters},
      {"predict", cmd_predict},   {"simulate", cmd_simulate},
      {"compare", cmd_compare},   {"analyze", cmd_analyze},
      {"validate", cmd_validate}, {"trace", cmd_trace},
      {"workload", cmd_workload}, {"sweep", cmd_sweep},
      {"collective", cmd_collective}, {"overlap", cmd_overlap},
      {"library", cmd_library},
  };
  return commands;
}

}  // namespace

std::string usage_text() {
  std::ostringstream os;
  os << "optibar — topology-adaptive barrier synthesis "
        "(Meyer & Elster, IPDPS 2011 reproduction)\n\n"
        "commands:\n"
        "  machines                         list machine presets\n"
        "  profile  (--machine M | --machine-file F) --ranks P --out FILE\n"
        "           [--mapping block|rr]\n"
        "           [--nodes N] [--estimate [--noise X] [--median] "
        "[--reps N]] [--heterogeneity X] [--seed N]\n"
        "           [--tiled]         # write the sub-quadratic v4 form\n"
        "                            # (exact tiers, block mapping; the\n"
        "                            # only path that reaches 10k ranks)\n"
        "  heatmap  --profile FILE [--matrix L|O]\n"
        "  tune     --profile FILE [--extended] [--optimize]\n"
        "           [--sparseness A]  # SSS alpha, paper default 0.35\n"
        "           [--threads N]     # tuning width; 0 = hardware\n"
        "           [--schedule-out FILE]\n"
        "           [--code-out FILE] [--function NAME]\n"
        "           [--hierarchical]  # sub-quadratic cluster-class tuner;\n"
        "                            # accepts dense or tiled profiles,\n"
        "                            # falls back densely on flat machines\n"
        "           [--simulate [--reps N] [--jitter X] [--seed N]]\n"
        "           [--tolerance X] [--min-gap-ratio X]\n"
        "  clusters --profile FILE [--tolerance X] [--min-gap-ratio X]\n"
        "           # logical-cluster decomposition of a dense profile,\n"
        "           # or the stored decomposition of a tiled one\n"
        "  predict  --profile FILE (--schedule FILE | --algorithm NAME)\n"
        "  simulate --profile FILE (--schedule FILE | --algorithm NAME)\n"
        "           [--reps N] [--jitter X] [--seed N] [--threads N]\n"
        "           [--faults SPEC]   # threaded fault-injection run;\n"
        "                            # SPEC e.g. "
        "'seed=1;drop=0>1@2:1'\n"
        "           [--slack X] [--retries N] [--deadline-floor-ms N]\n"
        "  compare  --profile FILE [--reps N] [--jitter X] [--extended]\n"
        "           [--threads N]\n"
        "           [--transport two-sided|one-sided|hybrid]  # adds a\n"
        "                            # put-tagged row vs the classic rows\n"
        "  analyze  --schedule FILE (--machine M | --machine-file F)\n"
        "           [--nodes N] [--mapping block|rr]\n"
        "  validate --schedule FILE\n"
        "  trace    --profile FILE (--schedule FILE | --algorithm NAME)\n"
        "           [--format csv|chrome] [--jitter X] [--seed N]\n"
        "  workload --profile FILE (--schedule FILE | --algorithm NAME)\n"
        "           [--episodes N] [--compute S] [--skew S] [--timeline]\n"
        "           [--reps N] [--threads N]\n"
        "  overlap  --profile FILE (--schedule FILE | --algorithm NAME)\n"
        "           [--compute S] [--skew S] [--ratios R1,R2,...]\n"
        "           [--poll S] [--reps N] [--jitter X] [--seed N] "
        "[--threads N]\n"
        "  sweep    (--machine M | --machine-file F) [--from P] [--to P]\n"
        "           [--mapping block|rr] [--reps N] [--threads N]\n"
        "  collective --profile FILE [--op bcast|reduce|allreduce]\n"
        "           [--bytes N] [--root R] [--threads N]\n"
        "           [--reps N] [--jitter X] [--seed N] [--schedule-out FILE]\n"
        "  library  --profile FILE [--threads N] [--auto-repair]\n"
        "           [--store FILE]    # warm-restart plan store: loaded if\n"
        "                            # present, saved back on exit\n"
        "           [--soak [--ops N] [--clients N] [--subsets N] "
        "[--seed N]]\n"
        "  help\n"
        "\n"
        "exit codes:\n"
        "  0 success    1 usage/execution error    2 validate: not a "
        "barrier\n"
        "  3 file unreadable or malformed          4 simulate --faults: "
        "stall detected\n";
  return os.str();
}

int run_cli(const std::vector<std::string>& arguments, std::ostream& out,
            std::ostream& err) {
  if (arguments.empty() || arguments[0] == "help" ||
      arguments[0] == "--help") {
    out << usage_text();
    return arguments.empty() ? 1 : 0;
  }
  const auto& commands = command_table();
  const auto it = commands.find(arguments[0]);
  if (it == commands.end()) {
    err << "unknown command '" << arguments[0] << "'\n\n" << usage_text();
    return 1;
  }
  try {
    const Args args = Args::parse(
        std::vector<std::string>(arguments.begin() + 1, arguments.end()));
    return it->second(args, out);
  } catch (const IoError& error) {
    err << "io error: " << error.what() << "\n";
    return 3;
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace optibar::cli
