#include "cli/args.hpp"

#include <charconv>

#include "util/error.hpp"

namespace optibar::cli {

Args Args::parse(const std::vector<std::string>& tokens) {
  Args args;
  bool positional_only = false;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (positional_only || token.rfind("--", 0) != 0) {
      args.positionals_.push_back(token);
      continue;
    }
    if (token == "--") {
      positional_only = true;
      continue;
    }
    std::string key = token.substr(2);
    OPTIBAR_REQUIRE(!key.empty(), "empty option name '--'");
    std::string value;
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      OPTIBAR_REQUIRE(!key.empty(), "empty option name in '" << token << "'");
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      value = tokens[++i];
    }
    OPTIBAR_REQUIRE(!args.options_.count(key),
                    "option --" << key << " given twice");
    args.options_[key] = value;
  }
  return args;
}

std::optional<std::string> Args::lookup(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Args::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string Args::require(const std::string& key) const {
  const auto value = lookup(key);
  OPTIBAR_REQUIRE(value.has_value(), "missing required option --" << key);
  OPTIBAR_REQUIRE(!value->empty(), "option --" << key << " needs a value");
  return *value;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  const auto value = lookup(key);
  return value.has_value() && !value->empty() ? *value : fallback;
}

namespace {

std::size_t to_size(const std::string& key, const std::string& text) {
  std::size_t result = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), result);
  OPTIBAR_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
                  "option --" << key << " expects an integer, got '" << text
                              << "'");
  return result;
}

double to_double(const std::string& key, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    OPTIBAR_REQUIRE(consumed == text.size(), "trailing characters");
    return value;
  } catch (const Error&) {
    throw;
  } catch (...) {
    OPTIBAR_FAIL("option --" << key << " expects a number, got '" << text
                             << "'");
  }
}

}  // namespace

std::size_t Args::require_size(const std::string& key) const {
  return to_size(key, require(key));
}

std::size_t Args::size_or(const std::string& key, std::size_t fallback) const {
  const auto value = lookup(key);
  if (!value.has_value() || value->empty()) {
    return fallback;
  }
  return to_size(key, *value);
}

double Args::double_or(const std::string& key, double fallback) const {
  const auto value = lookup(key);
  if (!value.has_value() || value->empty()) {
    return fallback;
  }
  return to_double(key, *value);
}

void Args::check_allowed(const std::set<std::string>& allowed) const {
  for (const auto& [key, value] : options_) {
    OPTIBAR_REQUIRE(allowed.count(key) > 0, "unknown option --" << key);
  }
}

}  // namespace optibar::cli
