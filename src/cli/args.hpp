// Minimal command-line argument parser for the optibar CLI.
//
// Grammar: <command> [positionals] [--key value | --key=value | --flag]
// Values never start with "--"; everything after a lone "--" is
// positional. Each command validates its own required/allowed keys via
// Args::require / Args::check_allowed, so typos fail loudly instead of
// being ignored.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace optibar::cli {

class Args {
 public:
  /// Parse tokens after the command name.
  static Args parse(const std::vector<std::string>& tokens);

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const;

  /// Value of --key; throws optibar::Error when absent or when the
  /// option was given as a bare flag.
  std::string require(const std::string& key) const;

  std::string get_or(const std::string& key,
                     const std::string& fallback) const;

  /// Numeric accessors with range validation.
  std::size_t require_size(const std::string& key) const;
  std::size_t size_or(const std::string& key, std::size_t fallback) const;
  double double_or(const std::string& key, double fallback) const;

  /// Throws when any parsed option is not in `allowed`.
  void check_allowed(const std::set<std::string>& allowed) const;

 private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::vector<std::string> positionals_;
  /// Empty string marks a bare flag.
  std::map<std::string, std::string> options_;
};

}  // namespace optibar::cli
