// The optibar command-line tool, as a library so tests can drive it.
//
// Subcommands cover the full Figure 1 workflow from a shell:
//
//   optibar machines
//       list the built-in machine presets
//   optibar profile --machine quad --ranks 40 [--mapping round-robin]
//                   [--nodes N] [--estimate [--noise X] [--median]]
//                   [--heterogeneity X] --out profile.txt
//       produce a topology profile (ground truth, or through the
//       Section IV-A estimator against the synthetic engine)
//   optibar heatmap --profile profile.txt [--matrix L|O]
//       render the matrix as an ASCII heat map (Figure 9)
//   optibar tune --profile profile.txt [--extended]
//                [--schedule-out s.txt] [--code-out barrier.hpp]
//       run clustering + greedy composition; report and save artefacts
//   optibar predict --profile profile.txt
//                   (--schedule s.txt | --algorithm tree)
//       price a schedule with the Eq. 1-3 model
//   optibar simulate --profile profile.txt
//                    (--schedule s.txt | --algorithm tree)
//                    [--reps N] [--jitter X] [--seed N]
//       execute on the discrete-event engine
//   optibar compare --profile profile.txt [--reps N]
//       one table: every classic algorithm + the tuned hybrid,
//       predicted and simulated
//   optibar analyze --schedule s.txt --machine quad [--nodes N]
//                   [--mapping round-robin]
//       link-tier usage report for a stored schedule
//   optibar validate --schedule s.txt
//       Eq. 3 barrier check plus structural statistics
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace optibar::cli {

/// Run one CLI invocation. `arguments` excludes the program name.
/// Returns the process exit code; normal output goes to `out`,
/// diagnostics to `err`.
int run_cli(const std::vector<std::string>& arguments, std::ostream& out,
            std::ostream& err);

/// The help text printed by `optibar help` and on usage errors.
std::string usage_text();

}  // namespace optibar::cli
