// Using optibar as a runtime library (Section VIII's proposed design).
//
// An "application" that knows nothing about topology-aware barriers:
// it loads the machine profile the admin installed, asks the
// BarrierLibrary for barriers — for the world and for a sub-communicator
// — and just calls them. Behind the scenes each request is tuned once
// and cached; repeated use costs a lookup.
//
// The second half shows the dynamic layer: the application reports its
// own observed pairwise costs, and the AdaptiveBarrierController decides
// when re-tuning amortizes.
#include <chrono>
#include <filesystem>
#include <iostream>

#include "core/library.hpp"
#include "core/retune.hpp"
#include "netsim/engine.hpp"
#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

int main() {
  using namespace optibar;

  // --- Installation step (once per machine): profile to disk. ---
  const MachineSpec machine = quad_cluster(4);
  const std::size_t world = 32;
  const Mapping mapping = block_mapping(machine, world);
  const auto profile_path =
      std::filesystem::temp_directory_path() / "machine_profile.txt";
  generate_profile(machine, mapping).save_file(profile_path.string());
  std::cout << "installed machine profile at " << profile_path << "\n";

  // --- Application start-up: open the library. ---
  BarrierLibrary library =
      BarrierLibrary::from_profile_file(profile_path.string());
  std::cout << "library opened for " << library.ranks() << " ranks\n";

  // World barrier: tuned on first request, cached afterwards.
  const auto t0 = std::chrono::steady_clock::now();
  const LibraryEntry& world_barrier = library.full_barrier();
  const auto first = std::chrono::steady_clock::now() - t0;
  const auto t1 = std::chrono::steady_clock::now();
  library.full_barrier();
  const auto second = std::chrono::steady_clock::now() - t1;
  std::cout << "world barrier: "
            << world_barrier.stored.schedule.stage_count() << " stages, "
            << "first request "
            << std::chrono::duration<double, std::milli>(first).count()
            << " ms, cached request "
            << std::chrono::duration<double, std::micro>(second).count()
            << " us\n";

  // A sub-communicator: the ranks of node 2 only.
  const std::vector<std::size_t> node2{16, 17, 18, 19, 20, 21, 22, 23};
  const LibraryEntry& node_barrier = library.barrier_for(node2);
  std::cout.setf(std::ios::scientific);
  std::cout << "node-2 sub-barrier: predicted "
            << node_barrier.predicted_cost << " s vs world "
            << world_barrier.predicted_cost << " s\n";

  // Execute both on rank threads (local rank numbering for the subset).
  simmpi::Communicator world_comm(world);
  simmpi::run_ranks(world_comm, [&](simmpi::RankContext& ctx) {
    world_barrier.compiled.execute(ctx);
  });
  simmpi::Communicator node_comm(node2.size());
  simmpi::run_ranks(node_comm, [&](simmpi::RankContext& ctx) {
    node_barrier.compiled.execute(ctx);
  });
  std::cout << "executed world and sub-communicator barriers ("
            << library.cache_size() << " cached tunings)\n";

  // --- Dynamic layer: conditions change at run time. ---
  ControllerOptions controller_options;
  // Our observations below are exact link measurements, so adopt them
  // outright instead of easing in with the default EWMA weight.
  controller_options.alpha = 1.0;
  AdaptiveBarrierController controller(library.profile(), controller_options);
  // The scheduler re-placed our ranks round-robin; report what we see.
  const TopologyProfile drifted =
      generate_profile(machine, round_robin_mapping(machine, world));
  for (std::size_t i = 0; i < world; ++i) {
    for (std::size_t j = i + 1; j < world; ++j) {
      controller.monitor().observe_overhead(i, j, drifted.o(i, j));
      controller.monitor().observe_latency(i, j, drifted.l(i, j));
    }
  }
  const bool retuned = controller.reevaluate(/*expected_calls=*/1e6);
  std::cout << "after placement drift: drift="
            << controller.monitor().max_drift() << ", retuned="
            << (retuned ? "yes" : "no") << ", new predicted cost "
            << controller.predicted_cost() << " s\n";
  const double before =
      simulate(library.full_barrier().stored.schedule, drifted).barrier_time();
  const double after = simulate(controller.schedule(), drifted).barrier_time();
  std::cout << "simulated on the drifted machine: stale schedule " << before
            << " s, adapted schedule " << after << " s\n";

  std::filesystem::remove(profile_path);
  return 0;
}
