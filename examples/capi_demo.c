/*
 * Pure-C consumer of the optibar C API — what an existing MPI code would
 * compile against. Opens an installed machine profile, fetches the tuned
 * world plan, and prints each rank's hard-coded signal sequence in the
 * shape the application would replay with MPI_Issend / MPI_Irecv /
 * MPI_Waitall.
 *
 * (The profile file is produced by `optibar profile ...`; this demo
 * expects its path as argv[1] and falls back to a message when absent.)
 */
#include <stdio.h>
#include <stdlib.h>

#include "capi/optibar.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr,
            "usage: %s <profile-file>\n"
            "create one with: optibar profile --machine quad --ranks 16 "
            "--out profile.txt\n",
            argv[0]);
    return 1;
  }

  /* threads=0: tune on one worker per hardware thread. Failures are
   * reported through the thread-local status channel. */
  optibar_library* library = optibar_open_v2(argv[1], 0);
  if (library == NULL) {
    fprintf(stderr, "optibar_open_v2 failed (%s): %s\n",
            optibar_status_string(optibar_last_status()),
            optibar_last_error());
    return 1;
  }
  printf("profile covers %zu ranks\n", optibar_ranks(library));

  const optibar_plan* plan = optibar_world_plan_v2(library);
  if (plan == NULL) {
    fprintf(stderr, "optibar_world_plan_v2 failed (%s): %s\n",
            optibar_status_string(optibar_last_status()),
            optibar_last_error());
    optibar_close(library);
    return 1;
  }
  printf("tuned barrier: %zu stages, predicted %.3e s\n",
         optibar_plan_stage_count(plan),
         optibar_plan_predicted_seconds(plan));

  for (size_t rank = 0; rank < optibar_plan_ranks(plan); ++rank) {
    const size_t count = optibar_plan_op_count(plan, rank);
    optibar_op* ops = (optibar_op*)malloc(count * sizeof(optibar_op));
    if (ops == NULL) {
      optibar_close(library);
      return 1;
    }
    optibar_plan_ops(plan, rank, ops, count);
    printf("rank %zu:", rank);
    for (size_t i = 0; i < count; ++i) {
      printf(" %s(%d,tag=%d)%s", ops[i].is_send ? "Issend" : "Irecv",
             ops[i].peer, ops[i].stage, ops[i].stage_end ? " | Waitall;" : "");
    }
    printf("\n");
    free(ops);
  }

  optibar_close(library);
  return 0;
}
