// What a tuned barrier buys an *application*.
//
// Barrier microbenchmarks (Figure 11) report the span of one barrier;
// an application cares about the synchronization overhead accumulated
// over thousands of bulk-synchronous rounds, under realistic compute
// imbalance between ranks. This example runs a 500-round
// compute+barrier workload on the simulated quad cluster and compares
// the classic barriers against the tuned hybrid in application terms:
// total synchronization wait and end-to-end makespan.
//
// It also prints a single-episode timeline of the tree barrier vs the
// hybrid, which makes the structural difference visible in the
// terminal: the tree's long chain of inter-node hops vs the hybrid's
// node-local fan-ins around one top-level exchange.
#include <cstddef>
#include <iostream>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "netsim/trace_export.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  const std::size_t ranks = 40;
  const TopologyProfile profile =
      generate_profile(machine, round_robin_mapping(machine, ranks));
  const TuneResult tuned = tune_barrier(profile);

  std::cout << "BSP workload on " << machine.name() << ", " << ranks
            << " ranks: 500 rounds of (compute 300us +- 100us; barrier)\n\n";

  Table table({"barrier", "mean_span[us]", "total_wait[ms]",
               "makespan[ms]", "sync_share[%]"});
  struct Entry {
    const char* name;
    const Schedule* schedule;
  };
  const Schedule diss = dissemination_barrier(ranks);
  const Schedule tree = tree_barrier(ranks);
  const Schedule linear = linear_barrier(ranks);
  for (const Entry& entry :
       {Entry{"dissemination", &diss}, Entry{"tree (MPI)", &tree},
        Entry{"linear", &linear}, Entry{"hybrid (tuned)", &tuned.schedule()}}) {
    WorkloadOptions options;
    options.episodes = 500;
    options.compute_mean = 3e-4;
    options.compute_stddev = 1e-4;
    options.sim.jitter = 0.02;
    const WorkloadResult result =
        simulate_workload(*entry.schedule, profile, options);
    // Share of the makespan the critical path spends synchronizing:
    // makespan minus the pure-compute lower bound, relative.
    const double compute_floor = 500 * 3e-4;
    table.add_row(
        {entry.name, Table::num(result.mean_barrier_time() * 1e6, 1),
         Table::num(result.total_wait() * 1e3, 2),
         Table::num(result.makespan * 1e3, 2),
         Table::num(100.0 * (result.makespan - compute_floor) /
                        result.makespan,
                    1)});
  }
  table.print(std::cout);

  std::cout << "\nsingle-barrier timelines (simultaneous entry):\n\n";
  SimOptions trace_options;
  trace_options.record_trace = true;
  std::cout << "tree (MPI) " << render_timeline(
      simulate(tree, profile, trace_options), 64);
  std::cout << "\nhybrid " << render_timeline(
      simulate(tuned.schedule(), profile, trace_options), 64);
  return 0;
}
