// Code generation demo (Section VII-C).
//
// Tunes a barrier for 22 ranks round-robin on 3 dual quad-core nodes —
// the exact scenario of the paper's Figure 10 — prints the construction
// (cluster tree, per-level greedy choices, stage matrices) and then the
// generated C++ source of the specialised barrier function.
//
// Pipe the output into a file to use the generated code:
//   ./examples/codegen_demo > my_barrier.hpp   (source is the last block)
#include <cstddef>
#include <iostream>

#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

int main() {
  using namespace optibar;

  const MachineSpec machine = quad_cluster(3);
  const std::size_t ranks = 22;
  const Mapping mapping = round_robin_mapping(machine, ranks);
  const TopologyProfile profile = generate_profile(machine, mapping);

  TuneOptions options;
  options.function_name = "barrier_22ranks_3nodes";
  const TuneResult tuned = tune_barrier(profile, options);

  std::cout << "// ==== construction (Figure 10 scenario) ====\n";
  std::cout << "// cluster tree:\n";
  for (const auto& line : {describe_tree(tuned.cluster_tree())}) {
    std::cout << line;
  }
  std::cout << tuned.barrier().describe() << "\n";
  std::cout << "// stage matrices of the hybrid barrier:\n"
            << tuned.schedule() << "\n";

  std::cout << "// ==== generated source ====\n";
  std::cout << tuned.generated_code().source;
  return 0;
}
