// Quickstart: tune a barrier for a simulated cluster in five steps.
//
//   1. Describe the machine (or load a profile measured elsewhere).
//   2. Obtain the topology profile (O and L matrices).
//   3. Run the adaptive tuner: clustering -> greedy hybrid composition.
//   4. Compare the hybrid against the classic algorithms.
//   5. Execute the tuned barrier on the in-process thread runtime.
//
// Build & run:  ./examples/quickstart
#include <cstddef>
#include <iostream>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "simmpi/executor.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

int main() {
  using namespace optibar;

  // 1. An 8-node cluster of dual quad-core nodes on gigabit ethernet —
  //    the paper's first testbed — with 40 MPI ranks placed round-robin
  //    by the scheduler.
  const MachineSpec machine = quad_cluster();
  const std::size_t ranks = 40;
  const Mapping mapping = round_robin_mapping(machine, ranks);
  std::cout << "machine: " << machine.name() << ", " << ranks
            << " ranks, " << mapping.policy() << " placement\n";

  // 2. The topology profile. On real hardware this comes from the
  //    Section IV-A benchmarks (see the profile_roundtrip example); here
  //    we generate the ground truth directly.
  const TopologyProfile profile = generate_profile(machine, mapping);

  // 3. Tune: SSS clustering discovers the node structure, the greedy
  //    composer assembles a hybrid barrier, and the predictor prices it.
  const TuneResult tuned = tune_barrier(profile);
  std::cout << "\n" << tuned.barrier().describe() << "\n";

  // 4. Compare predicted and simulated cost against the classics.
  std::cout << "algorithm        predicted [s]   simulated [s]\n";
  auto report = [&](const char* name, const Schedule& schedule) {
    std::cout.setf(std::ios::scientific);
    std::cout << name << "  " << predicted_time(schedule, profile) << "    "
              << simulate(schedule, profile).barrier_time() << "\n";
  };
  report("linear        ", linear_barrier(ranks));
  report("dissemination ", dissemination_barrier(ranks));
  report("tree (MPI)    ", tree_barrier(ranks));
  report("hybrid (tuned)", tuned.schedule());

  // 5. Run the tuned barrier for real: one thread per rank, Issend
  //    semantics, three consecutive episodes.
  const simmpi::ScheduleExecutor executor(tuned.schedule());
  simmpi::Communicator comm(ranks);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    for (int episode = 0; episode < 3; ++episode) {
      executor.execute(ctx, episode);
    }
  });
  std::cout << "\nexecuted 3 hybrid barrier episodes on " << ranks
            << " rank threads (unmatched ops: " << comm.unmatched_operations()
            << ")\n";
  return 0;
}
