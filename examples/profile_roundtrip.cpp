// The full profiling workflow of Section IV-A, end to end:
//
//   1. Run the pairwise benchmarks (payload regression for O, batch
//      regression for L, no-op means for O_ii) against a measurement
//      engine — here the synthetic engine with realistic noise.
//   2. Inspect the estimated matrices (heat map, like Figure 9).
//   3. Save the profile to disk and reload it (Figure 1's decoupling).
//   4. Tune a barrier from the *estimated* profile and compare its
//      simulated cost with one tuned on the ground truth.
#include <cstddef>
#include <filesystem>
#include <iostream>

#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "profile/estimator.hpp"
#include "profile/synthetic_engine.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/heatmap.hpp"

int main() {
  using namespace optibar;

  const MachineSpec machine = quad_cluster(2);
  const std::size_t ranks = 16;
  const Mapping mapping = block_mapping(machine, ranks);

  // 1. Estimate the profile through measurements.
  SyntheticEngineOptions engine_options;
  engine_options.noise = 0.03;
  engine_options.interference_probability = 0.01;
  SyntheticEngine engine(machine, mapping, engine_options);
  EstimatorOptions est_options;  // paper defaults: 25 reps, 2^20 payload
  std::cout << "running " << ranks * (ranks - 1) / 2
            << " pairwise tests + " << ranks << " self tests...\n";
  const TopologyProfile estimated = estimate_profile(engine, est_options);

  // 2. Show the estimated L matrix as a heat map (compare Figure 9: two
  //    dark on-chip blocks per node).
  std::cout << "\nestimated L matrix heat map (" << ranks << " ranks, "
            << "2 nodes x 2 sockets x 4 cores):\n";
  std::cout << render_heatmap(estimated.latency());

  // 3. Store and reload.
  const auto path =
      std::filesystem::temp_directory_path() / "quad2_profile.txt";
  estimated.save_file(path.string());
  const TopologyProfile loaded = TopologyProfile::load_file(path.string());
  std::cout << "\nprofile written to " << path << " and reloaded ("
            << (loaded == estimated ? "bit-exact" : "MISMATCH") << ")\n";

  // 4. Tune from the estimate; evaluate against ground truth.
  const TuneResult from_estimate = tune_barrier(loaded);
  const TuneResult from_truth = tune_barrier(engine.ground_truth());
  const double t_est =
      simulate(from_estimate.schedule(), engine.ground_truth())
          .barrier_time();
  const double t_truth =
      simulate(from_truth.schedule(), engine.ground_truth()).barrier_time();
  std::cout.setf(std::ios::scientific);
  std::cout << "\nsimulated hybrid cost, tuned on estimate:      " << t_est
            << " s\n"
            << "simulated hybrid cost, tuned on ground truth:  " << t_truth
            << " s\n"
            << "estimation overhead: "
            << 100.0 * (t_est - t_truth) / t_truth << " %\n";
  std::filesystem::remove(path);
  return 0;
}
