// Adapting to an unusual machine without any code changes.
//
// The paper's claim is that the method "captures performance advantages
// ... without any explicit customization". This example builds a
// pathological topology — a machine whose *cross-socket* fabric is
// slower than its network (think a saturated inter-die link) — and shows
// that the tuner's decisions follow the measured profile, not built-in
// assumptions about which layer is fast. It also builds a hand-crafted
// profile directly from matrices, the route for users whose machines
// don't fit the MachineSpec grid at all.
#include <cstddef>
#include <iostream>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/cluster_tree.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

void compare(const char* label, const optibar::TopologyProfile& profile) {
  using namespace optibar;
  const std::size_t p = profile.ranks();
  const TuneResult tuned = tune_barrier(profile);
  std::cout << "--- " << label << " (" << p << " ranks) ---\n";
  std::cout << describe_tree(tuned.cluster_tree());
  std::cout << tuned.barrier().describe();
  const double hybrid = simulate(tuned.schedule(), profile).barrier_time();
  const double tree = simulate(tree_barrier(p), profile).barrier_time();
  std::cout.setf(std::ios::scientific);
  std::cout << "simulated: hybrid " << hybrid << " s, tree " << tree
            << " s  (speedup " << tree / hybrid << "x)\n\n";
}

}  // namespace

int main() {
  using namespace optibar;

  // Case 1: the pathological preset — cross-socket slower than the NIC.
  {
    const MachineSpec machine = skewed_cluster();
    const TopologyProfile profile =
        generate_profile(machine, block_mapping(machine, 32));
    compare(machine.name().c_str(), profile);
  }

  // Case 2: a hand-written profile for a machine the MachineSpec grid
  // cannot express: 3 "islands" of different sizes (6, 4, 2 ranks) with
  // per-island costs, e.g. a testbed of mixed node generations.
  {
    const std::size_t p = 12;
    Matrix<double> o(p, p, 0.0);
    Matrix<double> l(p, p, 0.0);
    auto island = [](std::size_t r) {
      if (r < 6) {
        return 0;
      }
      return r < 10 ? 1 : 2;
    };
    const double intra_o[] = {2e-6, 4e-6, 1e-6};  // per-island local cost
    const double intra_l[] = {2e-7, 4e-7, 1e-7};
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        if (i == j) {
          o(i, j) = 1e-6;
        } else if (island(i) == island(j)) {
          o(i, j) = intra_o[island(i)];
          l(i, j) = intra_l[island(i)];
        } else {
          o(i, j) = 6e-5;  // slow inter-island network
          l(i, j) = 6e-6;
        }
      }
    }
    compare("mixed-generation islands (hand-written profile)",
            TopologyProfile(std::move(o), std::move(l)));
  }

  return 0;
}
