// Google-benchmark: cost-model evaluation throughput, compiled kernel vs
// reference implementation. The cost model is the inner loop of the
// tuning engine (every composer candidate, search node and re-tune
// decision is one predict() call), so predictions/sec is the direct
// multiplier on how many candidate schedules the generator can afford to
// score — the feasibility constraint Section VII-B turns on.
//
// BM_PredictReference     — the uncompiled Section VI recurrence (the
//                           pre-compiled-kernel predict())
// BM_PredictThroughput    — CompiledSchedule + PredictWorkspace,
//                           compile once / evaluate many (zero-alloc)
// BM_PredictWrapper       — predict() facade: compile-and-evaluate per
//                           call through thread-local reused storage
// BM_CompileSchedule      — the one-time compile cost
// BM_IncrementalAppend    — IncrementalPredictor push/pop of one stage,
//                           the branch-and-bound search step
#include <benchmark/benchmark.h>

#include "barrier/algorithms.hpp"
#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "netsim/engine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

struct Workload {
  TopologyProfile profile;
  Schedule schedule{1};
  PredictOptions options;
};

/// Tuned schedule on the paper's machines (quad <= 64 ranks, hex above),
/// priced with its awaited-stage pattern; optionally with the analytic
/// egress-contention term.
Workload workload_for(std::size_t p, bool contended) {
  const MachineSpec machine = p <= 64 ? quad_cluster() : hex_cluster();
  const Mapping mapping = round_robin_mapping(machine, p);
  Workload w;
  w.profile = generate_profile(machine, mapping);
  const TuneResult tuned = tune_barrier(w.profile);
  w.schedule = tuned.schedule();
  w.options.awaited_stages = tuned.barrier().awaited_stages;
  if (contended) {
    w.options.egress_resource_of = node_egress_resources(machine, mapping);
  }
  return w;
}

void BM_PredictReference(benchmark::State& state) {
  const Workload w = workload_for(static_cast<std::size_t>(state.range(0)),
                                  state.range(1) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predict_reference(w.schedule, w.profile, w.options).critical_path);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictReference)
    ->ArgsProduct({{64, 120}, {0, 1}})
    ->ArgNames({"p", "egress"});

void BM_PredictThroughput(benchmark::State& state) {
  const Workload w = workload_for(static_cast<std::size_t>(state.range(0)),
                                  state.range(1) != 0);
  const CompiledSchedule compiled(w.schedule, w.profile);
  PredictWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicted_time(compiled, w.options, workspace));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictThroughput)
    ->ArgsProduct({{64, 120}, {0, 1}})
    ->ArgNames({"p", "egress"});

void BM_PredictWrapper(benchmark::State& state) {
  const Workload w =
      workload_for(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predicted_time(w.schedule, w.profile, w.options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictWrapper)->Arg(64)->Arg(120)->ArgName("p");

void BM_CompileSchedule(benchmark::State& state) {
  const Workload w =
      workload_for(static_cast<std::size_t>(state.range(0)), false);
  CompiledSchedule compiled;
  for (auto _ : state) {
    compiled.compile(w.schedule, w.profile);
    benchmark::DoNotOptimize(compiled.stage_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileSchedule)->Arg(64)->Arg(120)->ArgName("p");

void BM_IncrementalAppend(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const Workload w = workload_for(p, false);
  IncrementalPredictor predictor(w.profile);
  const Schedule tree = tree_barrier(p);
  const StageMatrix& stage = tree.stage(0);
  for (auto _ : state) {
    predictor.push_stage(stage);
    benchmark::DoNotOptimize(predictor.max_ready());
    predictor.pop_stage();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalAppend)->Arg(4)->Arg(64)->Arg(120)->ArgName("p");

}  // namespace
