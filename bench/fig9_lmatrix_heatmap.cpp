// Figure 9: L matrix structure of one dual quad-core node, as a heat
// map. The paper's figure shows "two darker 4x4 areas encompassing
// ranks [0,3] and [4,7]" (the two sockets) with "around a factor 4
// observable difference between on-chip and off-chip messages".
//
// We reproduce it twice: from the ground-truth matrices, and from a
// profile *estimated* through the Section IV-A benchmarks with noise —
// the blocks must be visible in both.
#include <iostream>

#include "profile/estimator.hpp"
#include "profile/synthetic_engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/heatmap.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster(1);
  const Mapping mapping = block_mapping(machine, 8);

  const TopologyProfile truth = generate_profile(machine, mapping);
  std::cout << "Figure 9: L matrix heat map, 2x4 cores (ground truth)\n";
  std::cout << render_heatmap(truth.latency());
  std::cout << "\nL matrix values [s]:\n";
  Table values({"src\\dst", "0", "1", "2", "3", "4", "5", "6", "7"});
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<std::string> row{Table::num(i)};
    for (std::size_t j = 0; j < 8; ++j) {
      row.push_back(Table::num(truth.l(i, j) * 1e9, 1) + "ns");
    }
    values.add_row(std::move(row));
  }
  values.print(std::cout);

  const double on_chip = truth.l(0, 2);
  const double off_chip = truth.l(0, 4);
  std::cout << "\non-chip L = " << on_chip * 1e9 << " ns, off-chip L = "
            << off_chip * 1e9 << " ns, ratio = " << off_chip / on_chip
            << "x (paper: ~4x)\n";

  SyntheticEngineOptions noise;
  noise.noise = 0.03;
  SyntheticEngine engine(machine, mapping, noise);
  const TopologyProfile estimated = estimate_profile(engine);
  std::cout << "\nSame map from the estimated profile (25-rep benchmark "
               "protocol, 3% noise):\n";
  std::cout << render_heatmap(estimated.latency());
  return 0;
}
