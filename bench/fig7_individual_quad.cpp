// Figure 7: individual barriers on 8 nodes of dual quad-cores —
// measured vs predicted overlaid per algorithm (panels A: linear,
// B: dissemination, C: tree).
//
// Expected shape: predicted tracks measured per algorithm to within a
// roughly constant offset ("an error of approximately 200us ... its
// magnitude does not increase with scale", Section VI-A).
#include "common.hpp"

namespace {

void panel(const char* title, const optibar::bench::SweepAlgorithm& algo,
           const optibar::MachineSpec& machine, std::size_t max_p) {
  using namespace optibar;
  std::cout << title << "\n";
  Table table({"P", "measured", "predicted", "pred/meas"});
  for (std::size_t p = 2; p <= max_p; ++p) {
    const TopologyProfile profile = bench::profile_for(machine, p);
    const Schedule schedule = algo.make(p);
    const double measured =
        bench::measure(schedule, profile, bench::Protocol{});
    const double predicted = predicted_time(schedule, profile);
    table.add_row({Table::num(p), Table::num(measured, 8),
                   Table::num(predicted, 8),
                   Table::num(predicted / measured, 3)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  std::cout << "Figure 7: individual barriers, " << machine.name() << "\n\n";
  const auto algorithms = bench::classic_algorithms();
  panel("A) Linear barrier", algorithms[2], machine, 64);
  panel("B) Dissemination barrier", algorithms[0], machine, 64);
  panel("C) Tree barrier", algorithms[1], machine, 64);
  return 0;
}
