// Figure 6: model validation on 10 nodes of dual hex-cores, P = 2..120.
//
// Expected shape (paper, Section VI-A): same algorithm ordering as the
// quad cluster but with "fewer noticeable artifacts, as its
// multiple-of-12-core shared memory configuration does not coincide with
// special cases of the algorithms' design".
#include "common.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = hex_cluster();
  std::cout << "Figure 6: predicted vs measured, " << machine.name()
            << ", round-robin placement, P=2..120\n\n";
  bench::run_validation_sweep(machine, 2, 120);
  return 0;
}
