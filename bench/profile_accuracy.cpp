// Method check for Section IV-A: how accurately does the benchmark
// protocol (payload regression, batch regression, no-op means; 25 reps)
// recover the ground-truth O and L matrices, as a function of
// measurement noise? The paper could only argue reproducibility; with a
// simulated machine the estimation error is exactly measurable.
#include <iostream>
#include <vector>

#include "profile/estimator.hpp"
#include "profile/sparse_estimator.hpp"
#include "profile/synthetic_engine.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/replicate.hpp"
#include "util/table.hpp"

namespace {

struct ErrorStats {
  double max_o = 0.0;
  double max_l = 0.0;
};

ErrorStats relative_errors(const optibar::TopologyProfile& estimate,
                           const optibar::TopologyProfile& truth) {
  ErrorStats stats;
  for (std::size_t i = 0; i < truth.ranks(); ++i) {
    for (std::size_t j = 0; j < truth.ranks(); ++j) {
      const double eo =
          std::abs(estimate.o(i, j) - truth.o(i, j)) / truth.o(i, j);
      stats.max_o = std::max(stats.max_o, eo);
      if (i != j) {
        const double el =
            std::abs(estimate.l(i, j) - truth.l(i, j)) / truth.l(i, j);
        stats.max_l = std::max(stats.max_l, el);
      }
    }
  }
  return stats;
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster(2);
  const Mapping mapping = block_mapping(machine, 16);

  std::cout << "Profile estimation accuracy, " << machine.name()
            << ", 16 ranks, paper protocol (25 reps, payloads to 2^20, "
               "batches to 32)\n\n";

  Table table({"noise", "interference", "max_rel_err_O", "max_rel_err_L",
               "replication_deviation"});
  const std::vector<std::pair<double, double>> conditions{
      {0.00, 0.00}, {0.01, 0.00}, {0.02, 0.00}, {0.05, 0.00},
      {0.02, 0.01}, {0.05, 0.02}, {0.10, 0.05}};
  for (const auto& [noise, interference] : conditions) {
    SyntheticEngineOptions opts;
    opts.noise = noise;
    opts.interference_probability = interference;
    SyntheticEngine engine(machine, mapping, opts);
    const TopologyProfile estimate = estimate_profile(engine);
    const ErrorStats errors =
        relative_errors(estimate, engine.ground_truth());
    RankGroups nodes{{0, 1, 2, 3, 4, 5, 6, 7},
                     {8, 9, 10, 11, 12, 13, 14, 15}};
    const double replication_dev = max_relative_deviation(
        estimate, replicate_profile(estimate, nodes));
    table.add_row({Table::num(noise, 2), Table::num(interference, 2),
                   Table::num(errors.max_o, 4), Table::num(errors.max_l, 4),
                   Table::num(replication_dev, 4)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  // Section IV-B realised: the sparse estimator measures only the
  // representative blocks. Report its savings and accuracy.
  {
    SyntheticEngineOptions opts;
    opts.noise = 0.02;
    SyntheticEngine engine(machine, mapping, opts);
    RankGroups nodes{{0, 1, 2, 3, 4, 5, 6, 7},
                     {8, 9, 10, 11, 12, 13, 14, 15}};
    SparseEstimateOptions sparse_options;
    sparse_options.verify_pairs = 8;
    const SparseEstimate sparse =
        estimate_profile_sparse(engine, nodes, sparse_options);
    const ErrorStats errors =
        relative_errors(sparse.profile, engine.ground_truth());
    std::cout << "\nsparse estimation (2% noise): " << sparse.measured_pairs
              << " of " << sparse.full_sweep_pairs
              << " pairwise tests measured ("
              << Table::num(100.0 * static_cast<double>(sparse.measured_pairs) /
                                static_cast<double>(sparse.full_sweep_pairs),
                            1)
              << "%), max rel err O " << Table::num(errors.max_o, 4)
              << ", L " << Table::num(errors.max_l, 4)
              << ", worst verified deviation "
              << Table::num(sparse.worst_verified_deviation, 4) << "\n";
  }

  std::cout << "\nreplication_deviation is the cost of the Section IV-B "
               "shortcut (measure one node pair, replicate): small values "
               "confirm 'similar submatrices corresponding to similar "
               "subsystems'.\n";
  return 0;
}
