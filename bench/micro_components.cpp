// Google-benchmark: microbenchmarks of the hot components — the Eq. 3
// validity check, the cost predictor, the discrete-event engine, and
// boolean matrix products — sized to the paper's machines.
#include <benchmark/benchmark.h>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/optimize.hpp"
#include "core/sss.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

void BM_ValidityCheck(benchmark::State& state) {
  const Schedule s =
      dissemination_barrier(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.is_barrier());
  }
}
BENCHMARK(BM_ValidityCheck)->Arg(16)->Arg(64)->Arg(120);

void BM_BoolMatrixMultiply(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BoolMatrix a = BoolMatrix::identity(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bool_multiply(a, a));
  }
}
BENCHMARK(BM_BoolMatrixMultiply)->Arg(64)->Arg(120)->Arg(256);

void BM_CostPrediction(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const MachineSpec m = p <= 64 ? quad_cluster() : hex_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  const Schedule s = tree_barrier(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicted_time(s, profile));
  }
}
BENCHMARK(BM_CostPrediction)->Arg(16)->Arg(64)->Arg(120);

void BM_NetsimExecution(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const MachineSpec m = p <= 64 ? quad_cluster() : hex_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  const Schedule s = dissemination_barrier(p);
  SimOptions opts;
  opts.jitter = 0.03;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    benchmark::DoNotOptimize(simulate(s, profile, opts));
  }
}
BENCHMARK(BM_NetsimExecution)->Arg(16)->Arg(64)->Arg(120);

void BM_SssClustering(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const MachineSpec m = p <= 64 ? quad_cluster() : hex_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sss_cluster(
        p, [&](std::size_t a, std::size_t b) { return profile.distance(a, b); }));
  }
}
BENCHMARK(BM_SssClustering)->Arg(64)->Arg(120);

void BM_SignalPruning(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  const Schedule s = tree_barrier(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prune_redundant_signals(s, profile));
  }
}
BENCHMARK(BM_SignalPruning)->Arg(16)->Arg(32);

void BM_ProfileGeneration(benchmark::State& state) {
  const MachineSpec m = hex_cluster();
  const Mapping mapping =
      round_robin_mapping(m, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_profile(m, mapping));
  }
}
BENCHMARK(BM_ProfileGeneration)->Arg(64)->Arg(120);

}  // namespace
