// Shared plumbing for the figure-reproduction benches.
//
// Every validation bench sweeps rank counts on one of the paper's two
// machines and reports, per algorithm, the model prediction (Eq. 1-3
// critical path) and the "measured" value (discrete-event simulation
// with per-message noise, mean of 25 repetitions — mirroring the
// paper's measurement protocol). Output is an aligned table followed by
// CSV so EXPERIMENTS.md entries are copy-paste traceable.
#pragma once

#include <cstddef>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

namespace optibar::bench {

/// Measurement protocol shared by all validation benches.
struct Protocol {
  std::size_t repetitions = 25;  ///< paper: mean of 25 repetitions
  double jitter = 0.03;          ///< per-message multiplicative noise
  std::uint64_t seed = 2011;     ///< IPDPS 2011
};

inline TopologyProfile profile_for(const MachineSpec& machine, std::size_t p) {
  return generate_profile(machine, round_robin_mapping(machine, p));
}

inline double measure(const Schedule& schedule, const TopologyProfile& profile,
                      const Protocol& protocol) {
  SimOptions options;
  options.jitter = protocol.jitter;
  options.seed = protocol.seed;
  return simulate_mean_time(schedule, profile, options, protocol.repetitions);
}

/// One named algorithm for a sweep.
struct SweepAlgorithm {
  std::string name;
  std::function<Schedule(std::size_t)> make;
};

inline std::vector<SweepAlgorithm> classic_algorithms() {
  return {
      {"D", [](std::size_t p) { return dissemination_barrier(p); }},
      {"T", [](std::size_t p) { return tree_barrier(p); }},
      {"L", [](std::size_t p) { return linear_barrier(p); }},
  };
}

/// Sweep P = from..to, printing predicted and measured columns per
/// algorithm (the two panels of Figures 5/6 side by side).
inline void run_validation_sweep(const MachineSpec& machine, std::size_t from,
                                 std::size_t to,
                                 const Protocol& protocol = {}) {
  std::vector<std::string> headers{"P"};
  const auto algorithms = classic_algorithms();
  for (const auto& algo : algorithms) {
    headers.push_back(algo.name + "_predicted");
  }
  for (const auto& algo : algorithms) {
    headers.push_back(algo.name + "_measured");
  }
  Table table(std::move(headers));
  for (std::size_t p = from; p <= to; ++p) {
    const TopologyProfile profile = profile_for(machine, p);
    std::vector<std::string> row{Table::num(p)};
    std::vector<std::string> measured;
    for (const auto& algo : algorithms) {
      const Schedule schedule = algo.make(p);
      row.push_back(Table::num(predicted_time(schedule, profile), 8));
      measured.push_back(Table::num(measure(schedule, profile, protocol), 8));
    }
    row.insert(row.end(), measured.begin(), measured.end());
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
}

}  // namespace optibar::bench
