// Figure 11-A: performance of generated codes on the dual quad-core
// cluster — the adaptive hybrid barrier vs the MPI_Barrier baseline
// (OpenMPI's binary tree, per Section VII-C), P = 2..64, round-robin
// placement.
//
// Expected shape (paper): hybrid <= MPI everywhere; a visible drop in
// hybrid time where the top-level algorithm choice changes (the paper
// sees it at the 5th node, P=40 here); large relative wins at full
// machine scale.
#include "common.hpp"

#include "core/tuner.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  std::cout << "Figure 11-A: generated hybrid vs MPI(tree) barrier, "
            << machine.name() << ", P=2..64\n\n";
  Table table({"P", "MPI_measured", "hybrid_measured", "speedup",
               "hybrid_root_algo"});
  const bench::Protocol protocol;
  for (std::size_t p = 2; p <= 64; ++p) {
    const TopologyProfile profile = bench::profile_for(machine, p);
    const TuneResult tuned = tune_barrier(profile);
    const double mpi = bench::measure(tree_barrier(p), profile, protocol);
    const double hybrid =
        bench::measure(tuned.schedule(), profile, protocol);
    table.add_row({Table::num(p), Table::num(mpi, 8), Table::num(hybrid, 8),
                   Table::num(mpi / hybrid, 3),
                   tuned.barrier().root_algorithm});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
