// Google-benchmark: the one-sided transport's two costs that matter.
//
// BM_RmaPutThroughput drives raw Window::put calls into the sharded
// RMA board (no rank threads, zero modelled latency), so the counter
// is the board's flag-store ceiling: how fast the runtime can absorb
// one-sided signals before schedule structure enters the picture.
//
// BM_RmaEpisode runs full dissemination episodes on pooled rank
// threads with the stage signals carried two-sided, fully one-sided,
// or hybrid (alternating stages — the shape the transport tuner
// produces on the modelled clusters, where puts pay off across node
// boundaries but not inside them). With zero injected latency the
// spread between the three rows is pure runtime overhead: matched
// send/recv bookkeeping versus fire-and-forget flag stores.
//
// Both counters land in BENCH_rma.json via scripts/bench_json.sh and
// are regression-gated by scripts/bench_compare.py.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "barrier/algorithms.hpp"
#include "barrier/schedule.hpp"
#include "rma/window.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace optibar;
using simmpi::Communicator;
using simmpi::RankContext;
using simmpi::ScheduleExecutor;

simmpi::LatencyModel zero_latency() {
  return [](std::size_t, std::size_t) {
    return simmpi::Clock::duration::zero();
  };
}

void BM_RmaPutThroughput(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  Communicator comm(p, zero_latency());
  rma::Window window(comm, p);
  std::size_t episode = 0;
  std::size_t src = 1;
  for (auto _ : state) {
    // Rank src signals rank 0's slot `src`; rotating the source spreads
    // the stores across board shards, and bumping the episode each lap
    // exercises the double-buffered epoch arithmetic on the hot path.
    window.put(src, 0, episode, src);
    if (++src == p) {
      src = 1;
      ++episode;
    }
  }
  state.counters["puts_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RmaPutThroughput)->Arg(16)->Arg(48);

// Transport rows for BM_RmaEpisode's second argument.
enum : int { kTwoSidedRow = 0, kOneSidedRow = 1, kHybridRow = 2 };

Schedule tagged_dissemination(std::size_t p, int row) {
  Schedule schedule = dissemination_barrier(p);
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    if (row == kOneSidedRow || (row == kHybridRow && s % 2 == 0)) {
      schedule.set_transport(s, schedule.stage(s));
    }
  }
  return schedule;
}

void BM_RmaEpisode(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const ScheduleExecutor executor(
      tagged_dissemination(p, static_cast<int>(state.range(1))));
  Communicator comm(p, zero_latency());
  simmpi::RankPool pool(p);
  int episode = 0;
  for (auto _ : state) {
    simmpi::run_ranks(pool, comm, [&](RankContext& ctx) {
      executor.execute(ctx, episode);
    });
    ++episode;
  }
  state.counters["episodes_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RmaEpisode)
    ->ArgsProduct({{16, 48}, {kTwoSidedRow, kOneSidedRow, kHybridRow}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
