// Extension experiment E1 (Section VIII future work): dynamic
// re-tuning under changing conditions.
//
// Scenario: an application calls barriers continuously on the quad
// cluster while the run-time conditions change twice —
//   phase 1: the profiled (round-robin) placement,
//   phase 2: the scheduler silently re-places ranks block-wise
//            ("affinity drift": the profile's locality assumptions die),
//   phase 3: background load makes every inter-node link 4x slower.
// The controller folds pairwise observations into its drift monitor and
// re-evaluates with the amortization rule after each phase. Reported:
// drift seen, decision taken, break-even calls, and the simulated cost
// of the active schedule before/after on the true profile.
#include <cmath>
#include <iostream>
#include <string>

#include "core/retune.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

namespace {

using namespace optibar;

TopologyProfile slowed_internode(const TopologyProfile& profile,
                                 const MachineSpec& machine,
                                 const Mapping& mapping, double factor) {
  Matrix<double> o = profile.overhead();
  Matrix<double> l = profile.latency();
  for (std::size_t i = 0; i < profile.ranks(); ++i) {
    for (std::size_t j = 0; j < profile.ranks(); ++j) {
      if (i != j && machine.link_level(mapping.core_of(i), mapping.core_of(j)) ==
                        LinkLevel::kInterNode) {
        o(i, j) *= factor;
        l(i, j) *= factor;
      }
    }
  }
  return TopologyProfile(std::move(o), std::move(l));
}

void feed(AdaptiveBarrierController& controller,
          const TopologyProfile& truth) {
  for (std::size_t i = 0; i < truth.ranks(); ++i) {
    for (std::size_t j = i + 1; j < truth.ranks(); ++j) {
      controller.monitor().observe_overhead(i, j, truth.o(i, j));
      controller.monitor().observe_latency(i, j, truth.l(i, j));
    }
  }
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  const std::size_t ranks = 32;
  const Mapping rr = round_robin_mapping(machine, ranks);
  const Mapping block = block_mapping(machine, ranks);

  const TopologyProfile phase1 = generate_profile(machine, rr);
  const TopologyProfile phase2 = generate_profile(machine, block);
  const TopologyProfile phase3 =
      slowed_internode(phase2, machine, block, 4.0);

  ControllerOptions options;
  options.drift_threshold = 0.2;
  options.alpha = 0.5;
  options.retune_overhead = 0.1;  // the paper's ~0.1 s tuning figure
  AdaptiveBarrierController controller(phase1, options);

  std::cout << "Dynamic re-tuning experiment, " << machine.name() << ", "
            << ranks << " ranks, drift threshold "
            << options.drift_threshold << ", re-tune overhead "
            << options.retune_overhead << " s\n\n";
  Table table({"phase", "event", "drift", "retuned", "gain/call[us]",
               "break_even[calls]", "active_cost_on_truth[us]"});

  struct Phase {
    const char* name;
    const char* event;
    const TopologyProfile* truth;
    double horizon;
  };
  const Phase phases[] = {
      {"1", "profiled conditions", &phase1, 1e6},
      {"2a", "affinity drift, 10 calls left", &phase2, 10.0},
      {"2b", "affinity drift, long horizon", &phase2, 1e6},
      {"3", "background load (internode x4)", &phase3, 1e6},
  };
  for (const Phase& phase : phases) {
    feed(controller, *phase.truth);
    const double drift = controller.monitor().max_drift();
    const bool retuned = controller.reevaluate(phase.horizon);
    const RetuneDecision& decision = controller.last_decision();
    const double cost =
        simulate(controller.schedule(), *phase.truth).barrier_time();
    const std::string break_even =
        std::isinf(decision.break_even_calls)
            ? std::string("inf")
            : Table::num(decision.break_even_calls, 1);
    table.add_row({phase.name, phase.event, Table::num(drift, 3),
                   std::string(retuned ? "yes" : "no"),
                   Table::num(decision.gain_per_call * 1e6, 2), break_even,
                   Table::num(cost * 1e6, 1)});
  }
  table.print(std::cout);
  std::cout << "\ntotal re-tunes: " << controller.retune_count()
            << ". Phase 1 sees no drift; phase 2a is declined by the\n"
               "amortization rule (10 calls cannot pay a 0.1 s re-tune);\n"
               "phase 2b accepts the same candidate with a long horizon;\n"
               "phase 3 re-tunes again because the slower network shifts\n"
               "the greedy algorithm trade-offs at the cluster roots.\n";
  return 0;
}
