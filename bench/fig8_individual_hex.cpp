// Figure 8: individual barriers on 10 nodes of dual hex-cores —
// measured vs predicted overlaid per algorithm, P = 2..120.
#include "common.hpp"

namespace {

void panel(const char* title, const optibar::bench::SweepAlgorithm& algo,
           const optibar::MachineSpec& machine, std::size_t max_p) {
  using namespace optibar;
  std::cout << title << "\n";
  Table table({"P", "measured", "predicted", "pred/meas"});
  for (std::size_t p = 2; p <= max_p; ++p) {
    const TopologyProfile profile = bench::profile_for(machine, p);
    const Schedule schedule = algo.make(p);
    const double measured =
        bench::measure(schedule, profile, bench::Protocol{});
    const double predicted = predicted_time(schedule, profile);
    table.add_row({Table::num(p), Table::num(measured, 8),
                   Table::num(predicted, 8),
                   Table::num(predicted / measured, 3)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = hex_cluster();
  std::cout << "Figure 8: individual barriers, " << machine.name() << "\n\n";
  const auto algorithms = bench::classic_algorithms();
  panel("A) Linear barrier", algorithms[2], machine, 120);
  panel("B) Dissemination barrier", algorithms[0], machine, 120);
  panel("C) Tree barrier", algorithms[1], machine, 120);
  return 0;
}
