// Figure 10: construction of a hierarchical, customized barrier for the
// paper's illustrative case — 22 processes round-robin mapped onto 3
// nodes of the dual quad-core cluster.
//
// Prints the cluster tree, the greedy per-level algorithm choices, the
// full stage-matrix sequence of the composed barrier, and the embedding
// property the paper highlights: shorter local arrival phases are merged
// into the earliest stages of the longer ones.
#include <iostream>

#include "barrier/cost_model.hpp"
#include "core/cluster_tree.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster(3);
  const std::size_t ranks = 22;
  const Mapping mapping = round_robin_mapping(machine, ranks);
  const TopologyProfile profile = generate_profile(machine, mapping);

  std::cout << "Figure 10: hierarchical barrier construction, " << ranks
            << " processes round-robin on 3 nodes of " << machine.name()
            << "\n\n";

  const TuneResult tuned = tune_barrier(profile);
  std::cout << "cluster tree (SSS, alpha=0.35):\n"
            << describe_tree(tuned.cluster_tree()) << '\n';
  std::cout << tuned.barrier().describe() << '\n';
  std::cout << "stage matrices:\n" << tuned.schedule() << '\n';

  PredictOptions opts;
  opts.awaited_stages = tuned.barrier().awaited_stages;
  std::cout.setf(std::ios::scientific);
  std::cout << "predicted cost: "
            << predicted_time(tuned.schedule(), tuned.profile(), opts)
            << " s\n";
  std::cout << "simulated cost: "
            << simulate(tuned.schedule(), profile).barrier_time() << " s\n";
  return 0;
}
