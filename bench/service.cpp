// Google-benchmark: plan-service throughput under the mixed soak.
//
// BM_ServiceMixedSoak drives the shared soak workload
// (core/service_soak.hpp) against one self-healing BarrierLibrary:
// concurrent clients issuing a plan-lookup-heavy mix of requests,
// measured-latency reports, success reports, and injected stalls, with
// the background repair worker live. One benchmark iteration is one
// full soak; the committed configuration totals 1M operations split
// across 4 clients. Counters:
//
//   ops_per_second — mixed operations retired per second, the gated
//                    regression metric (BENCH_service.json via
//                    scripts/bench_json.sh, scripts/bench_compare.py
//                    --counter ops_per_second);
//   p50_ns, p99_ns — per-operation wall-time percentiles, committed for
//                    trajectory but not gated (tail noise on shared CI
//                    hardware would flap the gate).
//
// BM_PlanLookup isolates the hot path: a warm-cache subset_plan() is a
// lock-free acquire load, so this is the ceiling the mixed soak is
// measured against.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/library.hpp"
#include "core/service_soak.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

TopologyProfile service_profile() {
  const MachineSpec machine = quad_cluster();
  return generate_profile(machine, round_robin_mapping(machine, 32));
}

void BM_ServiceMixedSoak(benchmark::State& state) {
  const std::size_t ops = static_cast<std::size_t>(state.range(0));
  const std::size_t clients = static_cast<std::size_t>(state.range(1));
  std::size_t total = 0;
  double seconds = 0.0;
  SoakResult last;
  for (auto _ : state) {
    // A fresh library per iteration: the soak's tunes/quarantines are
    // part of the workload, so state must not leak across iterations.
    state.PauseTiming();
    EngineOptions options;
    options.threads = 2;
    options.service.auto_repair = true;
    BarrierLibrary library(service_profile(), options);
    SoakOptions soak;
    soak.operations = ops;
    soak.clients = clients;
    soak.subsets = 8;
    soak.seed = 1;
    state.ResumeTiming();
    last = run_service_soak(library, soak);
    total += last.operations;
    seconds += last.elapsed_seconds;
  }
  state.counters["ops_per_second"] = benchmark::Counter(
      seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0);
  state.counters["p50_ns"] =
      benchmark::Counter(static_cast<double>(last.p50_ns));
  state.counters["p99_ns"] =
      benchmark::Counter(static_cast<double>(last.p99_ns));
  state.counters["quarantines"] =
      benchmark::Counter(static_cast<double>(last.stats.quarantines));
  state.counters["repairs_promoted"] =
      benchmark::Counter(static_cast<double>(last.stats.repairs_promoted));
}
BENCHMARK(BM_ServiceMixedSoak)
    ->Args({1000000, 4})  // 1M ops total per iteration
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_PlanLookup(benchmark::State& state) {
  BarrierLibrary library(service_profile());
  std::vector<std::size_t> subset{0, 3, 9, 17, 21, 30};
  library.subset_plan(subset);  // warm the cache
  std::size_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(library.subset_plan(subset));
    ++lookups;
  }
  state.counters["ops_per_second"] = benchmark::Counter(
      static_cast<double>(lookups), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlanLookup);

}  // namespace
