// Figures 2-4: the linear, dissemination and tree barriers in matrix
// form at P=4, regenerated from the algorithm generators (not drawn by
// hand) so the bench doubles as a check of the encodings the rest of the
// evaluation builds on.
#include <iostream>

#include "barrier/algorithms.hpp"

int main() {
  using namespace optibar;
  std::cout << "=== Figure 2: Linear Barrier in Matrix Form (P=4) ===\n"
            << linear_barrier(4) << '\n';
  std::cout << "=== Figure 3: Dissemination Barrier in Matrix Form (P=4) ===\n"
            << dissemination_barrier(4) << '\n';
  std::cout << "=== Figure 4: Tree Barrier in Matrix Form (P=4) ===\n"
            << tree_barrier(4) << '\n';
  std::cout << "As in the paper: the tree barrier's S2 = S1^T and S3 = S0^T,\n"
               "and the linear barrier's S1 = S0^T.\n";
  return 0;
}
