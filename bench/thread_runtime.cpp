// Google-benchmark: runtime contention sweep — what the sharded message
// board and the persistent rank pool each buy per episode.
//
// Every benchmark runs one full dissemination-barrier episode per
// iteration on real rank threads with zero injected link delay, so the
// measured time is pure runtime overhead: thread creation (spawn mode)
// or generation dispatch (pooled mode), plus message-board lock
// contention (one global shard vs one shard per destination rank).
//
// The four mode combinations at P in {16, 48, 120} are the PR's
// headline comparison: pooled+sharded must beat spawn+global by >= 2x
// at P = 48 (tracked in BENCH_runtime.json via scripts/bench_json.sh,
// regression-gated by scripts/bench_compare.py on the
// episodes_per_second counter).
//
// BM_EpisodeDispatch isolates the vehicle cost with an empty rank
// function: spawn pays P thread creations + joins per episode, pooled
// pays one condvar broadcast per generation.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "barrier/algorithms.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/rank_pool.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace optibar;
using simmpi::BoardMode;
using simmpi::Communicator;
using simmpi::ExecutionMode;
using simmpi::RankContext;
using simmpi::RankPool;
using simmpi::ScheduleExecutor;

simmpi::LatencyModel zero_latency() {
  return [](std::size_t, std::size_t) {
    return simmpi::Clock::duration::zero();
  };
}

// One barrier episode per iteration; a fresh communicator per episode
// (mirroring run_once) keeps the channel map from accumulating across
// the tag space.
void BM_ThreadRuntime(benchmark::State& state, ExecutionMode exec,
                      BoardMode board) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const ScheduleExecutor executor(dissemination_barrier(p));
  RankPool pool(exec == ExecutionMode::kPersistentPool ? p : 1);
  int episode = 0;
  for (auto _ : state) {
    Communicator comm(p, zero_latency(), nullptr, board);
    const simmpi::RankFunction fn = [&](RankContext& ctx) {
      executor.execute(ctx, episode);
    };
    if (exec == ExecutionMode::kPersistentPool) {
      simmpi::run_ranks(pool, comm, fn);
    } else {
      simmpi::run_ranks(comm, fn);
    }
    ++episode;
  }
  state.counters["episodes_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_ThreadRuntime, spawn_global,
                  ExecutionMode::kSpawnPerEpisode, BoardMode::kGlobal)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadRuntime, spawn_sharded,
                  ExecutionMode::kSpawnPerEpisode, BoardMode::kSharded)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadRuntime, pooled_global,
                  ExecutionMode::kPersistentPool, BoardMode::kGlobal)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThreadRuntime, pooled_sharded,
                  ExecutionMode::kPersistentPool, BoardMode::kSharded)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);

// Vehicle cost alone: empty rank function, no communicator traffic.
void BM_EpisodeDispatch(benchmark::State& state, ExecutionMode exec) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  RankPool pool(exec == ExecutionMode::kPersistentPool ? p : 1);
  Communicator comm(p, zero_latency());
  const simmpi::RankFunction fn = [](RankContext&) {};
  for (auto _ : state) {
    if (exec == ExecutionMode::kPersistentPool) {
      simmpi::run_ranks(pool, comm, fn);
    } else {
      simmpi::run_ranks(comm, fn);
    }
  }
  state.counters["episodes_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_EpisodeDispatch, spawn, ExecutionMode::kSpawnPerEpisode)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EpisodeDispatch, pooled, ExecutionMode::kPersistentPool)
    ->Arg(16)->Arg(48)->Arg(120)->Unit(benchmark::kMillisecond);

}  // namespace
