// Real-execution check: hybrid vs MPI(tree) on actual threads.
//
// Everything in the figure benches runs on the virtual-time simulator;
// this bench grounds the headline result in *wall-clock* execution: the
// paper's general interpreter (issend/irecv/waitall per stage) runs on
// one thread per rank with the machine's link delays injected, scaled
// ×1000 (microseconds -> milliseconds) so scheduler noise cannot drown
// them. The hybrid's advantage must survive contact with a real
// scheduler, synchronized-send matching and all.
//
// Kept to modest rank counts: the container is single-core, so threads
// mostly sleep on the injected delays — which is exactly the regime
// where the comparison is meaningful.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "simmpi/executor.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

namespace {

using namespace optibar;

double mean_wallclock_ms(const Schedule& schedule,
                         const TopologyProfile& profile, double scale,
                         std::size_t reps) {
  const simmpi::ScheduleExecutor executor(schedule);
  double total_ms = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto exits =
        executor.run_once(simmpi::profile_latency(profile, scale));
    const auto latest = *std::max_element(exits.begin(), exits.end());
    total_ms += std::chrono::duration<double, std::milli>(latest).count();
  }
  return total_ms / static_cast<double>(reps);
}

}  // namespace

int main() {
  const MachineSpec machine = quad_cluster();
  const double scale = 1000.0;  // us -> ms
  const std::size_t reps = 5;
  std::cout << "Wall-clock execution on rank threads, " << machine.name()
            << ", link delays x" << scale << ", mean of " << reps
            << " runs\n\n";
  Table table({"P", "tree_wallclock[ms]", "hybrid_wallclock[ms]", "speedup",
               "sim_speedup"});
  for (std::size_t p : {8u, 12u, 16u}) {
    const Mapping mapping = round_robin_mapping(machine, p);
    const TopologyProfile profile = generate_profile(machine, mapping);
    const TuneResult tuned = tune_barrier(profile);
    const double tree_ms =
        mean_wallclock_ms(tree_barrier(p), profile, scale, reps);
    const double hybrid_ms =
        mean_wallclock_ms(tuned.schedule(), profile, scale, reps);
    // The simulator's prediction of the same ratio, for comparison.
    const double sim_ratio =
        simulate(tree_barrier(p), profile).barrier_time() /
        simulate(tuned.schedule(), profile).barrier_time();
    table.add_row({Table::num(p), Table::num(tree_ms, 2),
                   Table::num(hybrid_ms, 2),
                   Table::num(tree_ms / hybrid_ms, 2),
                   Table::num(sim_ratio, 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe wall-clock speedup tracking the simulated one is the "
               "cross-engine\nvalidation: threads + injected delays and the "
               "discrete-event model agree\non who wins and roughly by how "
               "much.\n";
  return 0;
}
