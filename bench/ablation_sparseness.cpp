// Ablation: the SSS sparseness parameter alpha (Section VII-A).
//
// The paper clusters with alpha = 0.35 of the diameter and notes that
// "further lowering the sparseness parameter can refine the clustering
// to cores on a chip and cores sharing cache", but argues finer levels
// are unobservable in overall barrier time. This bench sweeps alpha and
// reports the discovered granularity (cluster-tree height / leaf count)
// and the simulated cost of the resulting hybrid — quantifying how
// robust the method is to its one magic number.
#include <iostream>

#include "core/cluster_tree.hpp"
#include "core/composer.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

namespace {

std::size_t count_leaves(const optibar::ClusterNode& node) {
  if (node.is_leaf()) {
    return 1;
  }
  std::size_t n = 0;
  for (const auto& child : node.children) {
    n += count_leaves(child);
  }
  return n;
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  const std::size_t p = 64;
  const TopologyProfile profile =
      generate_profile(machine, block_mapping(machine, p));

  std::cout << "Ablation: SSS sparseness alpha, " << machine.name() << ", "
            << p << " ranks, block mapping (paper default alpha = 0.35)\n\n";
  Table table({"alpha", "tree_height", "leaves", "stages",
               "simulated[us]"});
  for (double alpha : {0.05, 0.10, 0.20, 0.35, 0.50, 0.70, 0.90}) {
    ClusterTreeOptions options;
    options.sss.sparseness = alpha;
    const ClusterNode tree = build_cluster_tree(profile, options);
    const ComposedBarrier hybrid = compose_barrier(profile, tree);
    table.add_row(
        {Table::num(alpha, 2), Table::num(tree.height()),
         Table::num(count_leaves(tree)),
         Table::num(hybrid.schedule.stage_count()),
         Table::num(simulate(hybrid.schedule, profile).barrier_time() * 1e6,
                    1)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  std::cout << "\n(At tiny alpha every rank exceeds the new-center "
               "threshold, the split\ndegenerates to all-singletons and "
               "the tree stays flat — the expensive end.\nLarger alpha "
               "discovers nodes, then sockets and cache pairs as extra\n"
               "levels; the wide cost plateau from ~0.2 upward is the "
               "paper's point that\nfiner levels are unobservable in "
               "overall barrier time.)\n";
  return 0;
}
