// Google-benchmark: the collective layer's two hot paths.
//
// BM_TuneAllreduceHex        — full collective tuning (cluster tree +
//                              candidate generation + payload-aware
//                              scoring) for allreduce on the hex
//                              cluster; the feasibility figure for
//                              re-tuning collectives at run time, the
//                              collective analogue of Section VIII's
//                              ~0.1 s barrier budget.
// BM_PredictCollective       — compile-once / evaluate-many throughput
//                              of the payload-aware compiled kernel on
//                              a tuned allreduce (the tuner's inner
//                              scoring loop).
// BM_CompileCollective       — the per-candidate edge-pricing compile
//                              step in isolation.
// BM_SimulateCollective      — one deterministic netsim run of the
//                              tuned schedule, the validation-side
//                              cost of a collective candidate.
#include <benchmark/benchmark.h>

#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "collective/predict.hpp"
#include "collective/simulate.hpp"
#include "collective/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

TopologyProfile hex_profile(std::size_t p) {
  const MachineSpec machine = hex_cluster();
  return generate_profile(machine, round_robin_mapping(machine, p));
}

CollectiveTuneOptions allreduce_options(std::size_t payload_bytes) {
  CollectiveTuneOptions options;
  options.op = CollectiveOp::kAllreduce;
  options.payload_bytes = payload_bytes;
  return options;
}

void BM_TuneAllreduceHex(benchmark::State& state) {
  const TopologyProfile profile =
      hex_profile(static_cast<std::size_t>(state.range(0)));
  const CollectiveTuneOptions options =
      allreduce_options(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tune_collective(profile, options));
  }
}
BENCHMARK(BM_TuneAllreduceHex)
    ->Args({24, 0})
    ->Args({24, 64 * 1024})
    ->Args({60, 64 * 1024})
    ->Args({120, 64 * 1024});

void BM_PredictCollective(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = hex_profile(p);
  const CollectiveTuneResult tuned =
      tune_collective(profile, allreduce_options(64 * 1024));
  CompiledSchedule compiled;
  compile_collective(tuned.schedule(), tuned.profile(), compiled);
  PredictWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predicted_time(compiled, PredictOptions{}, workspace));
  }
}
BENCHMARK(BM_PredictCollective)->Arg(24)->Arg(60)->Arg(120);

void BM_CompileCollective(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = hex_profile(p);
  const CollectiveTuneResult tuned =
      tune_collective(profile, allreduce_options(64 * 1024));
  CompiledSchedule compiled;
  for (auto _ : state) {
    compile_collective(tuned.schedule(), tuned.profile(), compiled);
    benchmark::DoNotOptimize(compiled.ranks());
  }
}
BENCHMARK(BM_CompileCollective)->Arg(24)->Arg(120);

void BM_SimulateCollective(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = hex_profile(p);
  const CollectiveTuneResult tuned =
      tune_collective(profile, allreduce_options(64 * 1024));
  const SimOptions options;  // jitter 0, deterministic
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_collective(tuned.schedule(), tuned.profile(), options)
            .completion_time());
  }
}
BENCHMARK(BM_SimulateCollective)->Arg(24)->Arg(60);

}  // namespace
