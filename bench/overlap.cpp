// Google-benchmark: what the handle-based nonblocking lifecycle buys
// when each rank has real computation to overlap with the barrier.
//
// Every iteration runs one full episode on real rank threads, with each
// rank spinning for a fixed per-rank compute budget. The ratio argument
// (percent) is how much of that compute is placed *after* the post:
//
//   ratio   0 — compute entirely before the call, then a blocking
//               execute(): the classic bulk-synchronous baseline;
//   ratio  50 — half the compute overlaps the in-flight barrier;
//   ratio 100 — post immediately, overlap everything, then drain with
//               test() polling.
//
// With zero injected link latency the barrier itself costs runtime
// overhead only, so the measured episode rate isolates how much of the
// compute window the post/test/wait lifecycle hides (tracked in
// BENCH_overlap.json via scripts/bench_json.sh on the
// episodes_per_second counter, regression-gated by
// scripts/bench_compare.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <thread>

#include "barrier/algorithms.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/runtime.hpp"

namespace {

using namespace optibar;
using simmpi::Communicator;
using simmpi::RankContext;
using simmpi::ScheduleExecutor;

simmpi::LatencyModel zero_latency() {
  return [](std::size_t, std::size_t) {
    return simmpi::Clock::duration::zero();
  };
}

// Busy-spin: sleep granularity is far coarser than the compute budgets
// here, and a spinning rank mirrors a compute-bound application core.
void spin_for(simmpi::Clock::duration budget) {
  const auto end = simmpi::Clock::now() + budget;
  while (simmpi::Clock::now() < end) {
    benchmark::DoNotOptimize(end);
  }
}

void BM_OverlapEpisode(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 100.0;
  const ScheduleExecutor executor(dissemination_barrier(p));
  const auto compute = std::chrono::microseconds(50);
  const auto after = std::chrono::duration_cast<simmpi::Clock::duration>(
      compute * ratio);
  const auto before = compute - after;
  int episode = 0;
  for (auto _ : state) {
    Communicator comm(p, zero_latency());
    simmpi::run_ranks(comm, [&](RankContext& ctx) {
      spin_for(before);
      if (ratio == 0.0) {
        executor.execute(ctx, episode);
        return;
      }
      ScheduleExecutor::EpisodeHandle handle = executor.post(ctx, episode);
      spin_for(after);
      while (!executor.test(handle)) {
        std::this_thread::yield();
      }
    });
    ++episode;
  }
  state.counters["episodes_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OverlapEpisode)
    ->ArgsProduct({{16, 48}, {0, 50, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
