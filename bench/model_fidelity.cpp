// Model fidelity: the quantitative form of Section VI's conclusion.
//
// "the combined model clearly captures the interaction between the
//  algorithm and topology. This is immediately visible from the shape of
//  the graphs, and their relative displacements, to an error of
//  approximately 200us"
//
// For every algorithm on both machines this bench reports, over the full
// P sweep: Spearman rank correlation between the predicted and simulated
// series (shape agreement), mean/max absolute error (the paper's offset
// band), and mean relative error. It also reports cross-algorithm rank
// correlation per P — whether the model orders algorithms correctly at
// each size, which is what the greedy tuner relies on.
#include <iostream>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/fidelity.hpp"
#include "util/table.hpp"

namespace {

using namespace optibar;

void sweep(const MachineSpec& machine, std::size_t max_p) {
  std::cout << machine.name() << ", round-robin, P=2.." << max_p << "\n";
  struct Algo {
    const char* name;
    Schedule (*make)(std::size_t);
  };
  const Algo algos[] = {{"linear", linear_barrier},
                        {"dissemination", dissemination_barrier},
                        {"tree", tree_barrier},
                        {"pairwise-exch", pairwise_exchange_barrier}};

  Table per_algo({"algorithm", "spearman", "mean_abs[us]", "max_abs[us]",
                  "mean_rel[%]"});
  std::vector<std::vector<double>> predicted_by_algo(std::size(algos));
  std::vector<std::vector<double>> simulated_by_algo(std::size(algos));
  for (std::size_t a = 0; a < std::size(algos); ++a) {
    for (std::size_t p = 2; p <= max_p; ++p) {
      const TopologyProfile profile =
          generate_profile(machine, round_robin_mapping(machine, p));
      const Schedule s = algos[a].make(p);
      predicted_by_algo[a].push_back(predicted_time(s, profile));
      simulated_by_algo[a].push_back(simulate(s, profile).barrier_time());
    }
    const FidelityStats stats =
        fidelity(predicted_by_algo[a], simulated_by_algo[a]);
    per_algo.add_row({algos[a].name, Table::num(stats.rank_correlation, 4),
                      Table::num(stats.mean_abs_error * 1e6, 1),
                      Table::num(stats.max_abs_error * 1e6, 1),
                      Table::num(stats.mean_rel_error * 100, 1)});
  }
  per_algo.print(std::cout);

  // Cross-algorithm ordering per P: fraction of sizes where the model's
  // algorithm ranking matches the simulator's perfectly, and the mean
  // cross-algorithm Spearman.
  std::size_t perfect = 0;
  double rho_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t idx = 0; idx < predicted_by_algo[0].size(); ++idx) {
    std::vector<double> pred;
    std::vector<double> sim;
    for (std::size_t a = 0; a < std::size(algos); ++a) {
      pred.push_back(predicted_by_algo[a][idx]);
      sim.push_back(simulated_by_algo[a][idx]);
    }
    const double rho = spearman_correlation(pred, sim);
    rho_sum += rho;
    ++count;
    if (rho > 0.999) {
      ++perfect;
    }
  }
  std::cout << "cross-algorithm ordering: mean Spearman "
            << rho_sum / static_cast<double>(count) << ", exact at "
            << perfect << "/" << count << " sizes\n\n";
}

}  // namespace

int main() {
  std::cout << "Model fidelity (predicted vs simulated)\n\n";
  sweep(quad_cluster(), 64);
  sweep(hex_cluster(), 120);
  return 0;
}
