// Figure 11-B: performance of generated codes on the dual hex-core
// cluster — hybrid vs MPI(tree), P = 2..120, round-robin placement.
//
// Expected shape (paper): the hybrid's advantage grows with scale; "on
// the bigger system, this benefit halves the barrier overhead for our
// largest cases"; the top-level switch shows at the 5th node (P=60).
#include "common.hpp"

#include "core/tuner.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = hex_cluster();
  std::cout << "Figure 11-B: generated hybrid vs MPI(tree) barrier, "
            << machine.name() << ", P=2..120\n\n";
  Table table({"P", "MPI_measured", "hybrid_measured", "speedup",
               "hybrid_root_algo"});
  const bench::Protocol protocol;
  for (std::size_t p = 2; p <= 120; ++p) {
    const TopologyProfile profile = bench::profile_for(machine, p);
    const TuneResult tuned = tune_barrier(profile);
    const double mpi = bench::measure(tree_barrier(p), profile, protocol);
    const double hybrid =
        bench::measure(tuned.schedule(), profile, protocol);
    table.add_row({Table::num(p), Table::num(mpi, 8), Table::num(hybrid, 8),
                   Table::num(mpi / hybrid, 3),
                   tuned.barrier().root_algorithm});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
