// Google-benchmark: scaling of tune / predict / simulate with rank count.
//
// Section VIII notes tuning "requires on the order of 0.1 seconds" at
// paper scale; this bench tracks how that cost grows towards 10k ranks
// and contrasts the dense pipeline (P x P profile + flat tuner) with the
// hierarchical one (tiled profile + per-class sub-barriers + leader
// stage). Counters record exact model memory so BENCH_scale.json shows
// the sub-quadratic footprint directly:
//   mem_profile_bytes — cost-model storage (dense matrices vs tiles)
//   mem_plan_bytes    — schedule storage (dense stages vs blocked form)
//   events_per_second — netsim throughput on the compiled 10k schedule
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "barrier/blocked_schedule.hpp"
#include "barrier/compiled_schedule.hpp"
#include "core/hierarchical.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "profile/generate_tiled.hpp"
#include "profile/tiled_profile.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/profile.hpp"

namespace {

using namespace optibar;

// A tenk-cluster slice with exactly `ranks` cores (40 per node).
MachineSpec tenk_slice(std::size_t ranks) {
  return tenk_cluster(ranks / 40);
}

// Dense matrices actually held by a TopologyProfile (O, L, and the
// optional G/R planes); TopologyProfile exposes no byte count itself.
double dense_profile_bytes(const TopologyProfile& profile) {
  const double cells =
      static_cast<double>(profile.ranks()) * static_cast<double>(profile.ranks());
  const double planes = 2.0 + (profile.has_bandwidth() ? 1.0 : 0.0) +
                        (profile.has_rma_latency() ? 1.0 : 0.0);
  return cells * planes * static_cast<double>(sizeof(double));
}

// A dense Schedule stores one P x P BoolMatrix (uint8_t cells) per stage.
double dense_plan_bytes(const Schedule& schedule) {
  return static_cast<double>(schedule.stage_count()) *
         static_cast<double>(schedule.ranks()) *
         static_cast<double>(schedule.ranks()) *
         static_cast<double>(sizeof(std::uint8_t));
}

// Full dense pipeline: P x P synthetic profile is built once (profiling
// is the machine's job, not the tuner's); the timed region is clustering
// + composition + validation + prediction, exactly what `optibar tune`
// runs after loading a profile.
void BM_DenseTunePipeline(benchmark::State& state) {
  const std::size_t ranks = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = generate_profile(tenk_slice(ranks), ranks);
  double plan_bytes = 0.0;
  for (auto _ : state) {
    const TuneResult result = tune_barrier(profile);
    plan_bytes = dense_plan_bytes(result.schedule());
    benchmark::DoNotOptimize(plan_bytes);
  }
  state.counters["mem_profile_bytes"] = dense_profile_bytes(profile);
  state.counters["mem_plan_bytes"] = plan_bytes;
}
BENCHMARK(BM_DenseTunePipeline)->Arg(640)->Arg(1280)->Arg(2560)
    ->Unit(benchmark::kMillisecond);

// Hierarchical pipeline on the tiled profile: one tile tune per cluster
// class + a leader stage over 256-ish representatives. Cost should stay
// near-flat in P (it depends on tile size and cluster count, not P^2).
void BM_HierarchicalTune(benchmark::State& state) {
  const std::size_t ranks = static_cast<std::size_t>(state.range(0));
  const TiledProfile tiled = generate_tiled_profile(tenk_slice(ranks), ranks);
  double plan_bytes = 0.0;
  for (auto _ : state) {
    const HierarchicalTuneResult result = tune_hierarchical(tiled);
    plan_bytes = static_cast<double>(result.blocked.memory_bytes());
    benchmark::DoNotOptimize(plan_bytes);
  }
  state.counters["mem_profile_bytes"] =
      static_cast<double>(tiled.memory_bytes());
  state.counters["mem_plan_bytes"] = plan_bytes;
}
BENCHMARK(BM_HierarchicalTune)
    ->Arg(640)->Arg(1280)->Arg(2560)->Arg(5120)->Arg(10240)
    ->Unit(benchmark::kMillisecond);

// Prediction alone at 10k: compile the blocked plan against tiled costs
// and run the critical-path predictor. This is the steady-state retune
// inner loop, so it gets its own number.
void BM_HierarchicalPredict(benchmark::State& state) {
  const std::size_t ranks = static_cast<std::size_t>(state.range(0));
  const TiledProfile tiled = generate_tiled_profile(tenk_slice(ranks), ranks);
  const HierarchicalTuneResult tuned = tune_hierarchical(tiled);
  PredictOptions options;
  options.awaited_stages = tuned.blocked.awaited_stages();
  PredictWorkspace workspace;
  CompiledSchedule compiled;
  for (auto _ : state) {
    compile_blocked(tuned.blocked, tiled, compiled);
    benchmark::DoNotOptimize(predicted_time(compiled, options, workspace));
  }
  state.counters["mem_plan_bytes"] =
      static_cast<double>(tuned.blocked.memory_bytes());
}
BENCHMARK(BM_HierarchicalPredict)->Arg(10240)->Unit(benchmark::kMillisecond);

// Event-driven simulation of the tuned 10k barrier, consuming tiled
// costs directly (no densification). events_per_second is the calendar
// queue's sustained throughput at this scale.
void BM_NetsimBlocked(benchmark::State& state) {
  const std::size_t ranks = static_cast<std::size_t>(state.range(0));
  const TiledProfile tiled = generate_tiled_profile(tenk_slice(ranks), ranks);
  const HierarchicalTuneResult tuned = tune_hierarchical(tiled);
  CompiledSchedule compiled;
  compile_blocked(tuned.blocked, tiled, compiled);
  SimOptions options;
  options.jitter = 0.02;
  SimWorkspace workspace;
  SimResult result;
  double events_per_run = 0.0;
  for (auto _ : state) {
    options.seed += 1;
    simulate_compiled_into(compiled, tiled, options, workspace, result);
    events_per_run = static_cast<double>(workspace.queue.scheduled());
    benchmark::DoNotOptimize(result.barrier_time());
  }
  state.counters["events_per_second"] = benchmark::Counter(
      events_per_run * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetsimBlocked)->Arg(10240)->Unit(benchmark::kMillisecond);

}  // namespace
