// Figure 5: model validation on 8 nodes of dual quad-cores.
//
// Panel A of the paper plots the predicted execution time of the
// dissemination (D), tree (T) and linear (L) barriers for P = 2..64
// under the round-robin process placement of the departmental cluster;
// panel B plots the measured times. This bench prints both series.
//
// Expected shape (paper, Section VI-A):
//   - L grows steepest and is worst at scale;
//   - D dips at power-of-two sizes (32, 64) where late phases become
//     node-local;
//   - D oscillates between odd and even P in the 2-node region (9..16)
//     under round-robin placement;
//   - T is best overall at scale.
#include "common.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  std::cout << "Figure 5: predicted vs measured, " << machine.name()
            << ", round-robin placement, P=2..64\n\n";
  bench::run_validation_sweep(machine, 2, 64);
  return 0;
}
