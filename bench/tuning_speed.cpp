// Google-benchmark: tuning pipeline speed.
//
// Section VIII: "With a topological model ready, the generation and
// evaluation of adapted patterns requires on the order of 0.1 seconds,
// making it feasible to periodically re-evaluate the efficiency of
// synchronization through changing conditions." This bench measures the
// clustering + composition + prediction pipeline (and its stages) at the
// paper's machine sizes.
#include <benchmark/benchmark.h>

#include <vector>

#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "core/cluster_tree.hpp"
#include "core/composer.hpp"
#include "core/library.hpp"
#include "core/search.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

TopologyProfile profile_for(std::size_t p) {
  const MachineSpec machine = p <= 64 ? quad_cluster() : hex_cluster();
  return generate_profile(machine, round_robin_mapping(machine, p));
}

void BM_FullTuningPipeline(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tune_barrier(profile));
  }
}
BENCHMARK(BM_FullTuningPipeline)->Arg(16)->Arg(32)->Arg(64)->Arg(120);

void BM_ClusterTreeOnly(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cluster_tree(profile));
  }
}
BENCHMARK(BM_ClusterTreeOnly)->Arg(64)->Arg(120);

void BM_CompositionOnly(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  const ClusterNode tree = build_cluster_tree(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_barrier(profile, tree));
  }
}
BENCHMARK(BM_CompositionOnly)->Arg(64)->Arg(120);

void BM_PredictionOnly(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = profile_for(p);
  const TuneResult tuned = tune_barrier(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicted_time(tuned.schedule(), profile));
  }
}
BENCHMARK(BM_PredictionOnly)->Arg(64)->Arg(120);

// Same prediction with the schedule compiled once up front — the
// steady-state cost of re-pricing a cached plan (re-tune decisions,
// skew sweeps). bench_predict_throughput isolates the kernel further.
void BM_CompiledPredictionOnly(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = profile_for(p);
  const TuneResult tuned = tune_barrier(profile);
  const CompiledSchedule compiled(tuned.schedule(), profile);
  PredictWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicted_time(compiled, {}, workspace));
  }
}
BENCHMARK(BM_CompiledPredictionOnly)->Arg(64)->Arg(120);

// Branch-and-bound oracle on 4 ranks of the quad cluster: the search is
// pure cost-model evaluation, so it tracks the incremental prefix
// evaluator's node rate.
void BM_ExhaustiveSearchQuad4(benchmark::State& state) {
  std::vector<std::size_t> ranks{0, 1, 2, 3};
  const TopologyProfile profile = profile_for(16).restrict_to(ranks);
  SearchOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exhaustive_search(profile, options,
                          static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_ExhaustiveSearchQuad4)->Arg(1)->Arg(8)->UseRealTime();

void BM_CodeGeneration(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = profile_for(p);
  const TuneResult tuned = tune_barrier(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuned.generated_code());
  }
}
BENCHMARK(BM_CodeGeneration)->Arg(64)->Arg(120);

// Parallel tuning engine: the same hex_cluster tune at widening thread
// counts. Wall-clock (UseRealTime) is the honest metric — CPU time sums
// over workers. Schedules are bit-identical at every width.
void BM_TuneHexThreads(benchmark::State& state) {
  const TopologyProfile profile = profile_for(120);
  EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tune_barrier(profile, options));
  }
}
BENCHMARK(BM_TuneHexThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Batch tuning through the library cache: each iteration starts from a
// cold cache and tunes one world subset plus every 10-rank block of a
// 120-rank hex profile — the sub-communicator warm-up a job scheduler
// would do at startup.
void BM_LibraryTuneAllHex(benchmark::State& state) {
  const TopologyProfile profile = profile_for(120);
  std::vector<std::vector<std::size_t>> subsets;
  std::vector<std::size_t> world(120);
  for (std::size_t r = 0; r < world.size(); ++r) {
    world[r] = r;
  }
  subsets.push_back(world);
  for (std::size_t base = 0; base < 120; base += 10) {
    std::vector<std::size_t> block(10);
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = base + i;
    }
    subsets.push_back(block);
  }
  EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    BarrierLibrary library(profile, options);
    benchmark::DoNotOptimize(library.tune_all(subsets));
  }
}
BENCHMARK(BM_LibraryTuneAllHex)->Arg(1)->Arg(8)->UseRealTime();

}  // namespace
