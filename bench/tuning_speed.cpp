// Google-benchmark: tuning pipeline speed.
//
// Section VIII: "With a topological model ready, the generation and
// evaluation of adapted patterns requires on the order of 0.1 seconds,
// making it feasible to periodically re-evaluate the efficiency of
// synchronization through changing conditions." This bench measures the
// clustering + composition + prediction pipeline (and its stages) at the
// paper's machine sizes.
#include <benchmark/benchmark.h>

#include "barrier/cost_model.hpp"
#include "core/cluster_tree.hpp"
#include "core/composer.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

TopologyProfile profile_for(std::size_t p) {
  const MachineSpec machine = p <= 64 ? quad_cluster() : hex_cluster();
  return generate_profile(machine, round_robin_mapping(machine, p));
}

void BM_FullTuningPipeline(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tune_barrier(profile));
  }
}
BENCHMARK(BM_FullTuningPipeline)->Arg(16)->Arg(32)->Arg(64)->Arg(120);

void BM_ClusterTreeOnly(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_cluster_tree(profile));
  }
}
BENCHMARK(BM_ClusterTreeOnly)->Arg(64)->Arg(120);

void BM_CompositionOnly(benchmark::State& state) {
  const TopologyProfile profile =
      profile_for(static_cast<std::size_t>(state.range(0)));
  const ClusterNode tree = build_cluster_tree(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_barrier(profile, tree));
  }
}
BENCHMARK(BM_CompositionOnly)->Arg(64)->Arg(120);

void BM_PredictionOnly(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = profile_for(p);
  const TuneResult tuned = tune_barrier(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicted_time(tuned.schedule(), profile));
  }
}
BENCHMARK(BM_PredictionOnly)->Arg(64)->Arg(120);

void BM_CodeGeneration(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const TopologyProfile profile = profile_for(p);
  const TuneResult tuned = tune_barrier(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuned.generated_code());
  }
}
BENCHMARK(BM_CodeGeneration)->Arg(64)->Arg(120);

}  // namespace
