// Ablation: cost-model ingredients.
//
// Quantifies what each modelling choice contributes to prediction
// fidelity against the fine-grained simulator:
//   - Eq. 2 on departure stages vs Eq. 1 everywhere;
//   - noise-free vs noisy measurement;
//   - prediction error per algorithm (the Figure 5/6 offset).
#include <cmath>
#include <iostream>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();

  std::cout << "Ablation A: Eq. 2 on departure stages (hybrid barrier "
               "prediction vs simulation)\n\n";
  Table eq2_table({"P", "simulated", "pred_eq1_only", "pred_with_eq2",
                   "err_eq1_pct", "err_eq2_pct"});
  for (std::size_t p : {16u, 32u, 48u, 64u}) {
    const TopologyProfile profile =
        generate_profile(machine, round_robin_mapping(machine, p));
    const TuneResult tuned = tune_barrier(profile);
    const double simulated =
        simulate(tuned.schedule(), profile).barrier_time();
    const double eq1 = predicted_time(tuned.schedule(), profile);
    PredictOptions opts;
    opts.awaited_stages = tuned.barrier().awaited_stages;
    const double eq2 = predicted_time(tuned.schedule(), profile, opts);
    eq2_table.add_row(
        {Table::num(p), Table::num(simulated, 8), Table::num(eq1, 8),
         Table::num(eq2, 8),
         Table::num(100.0 * std::abs(eq1 - simulated) / simulated, 1),
         Table::num(100.0 * std::abs(eq2 - simulated) / simulated, 1)});
  }
  eq2_table.print(std::cout);

  std::cout << "\nAblation B: per-algorithm prediction error vs simulation "
               "(the Figures 5-8 offset), P=2..64\n\n";
  Table err_table({"algorithm", "mean_abs_err_us", "max_abs_err_us",
                   "mean_rel_err_pct"});
  struct Algo {
    const char* name;
    Schedule (*make)(std::size_t);
  };
  const Algo algos[] = {{"linear", linear_barrier},
                        {"dissemination", dissemination_barrier},
                        {"tree", tree_barrier}};
  for (const Algo& algo : algos) {
    double sum_abs = 0.0;
    double max_abs = 0.0;
    double sum_rel = 0.0;
    std::size_t n = 0;
    for (std::size_t p = 2; p <= 64; ++p) {
      const TopologyProfile profile =
          generate_profile(machine, round_robin_mapping(machine, p));
      const Schedule schedule = algo.make(p);
      const double simulated = simulate(schedule, profile).barrier_time();
      const double predicted = predicted_time(schedule, profile);
      const double abs_err = std::abs(predicted - simulated);
      sum_abs += abs_err;
      max_abs = std::max(max_abs, abs_err);
      sum_rel += abs_err / simulated;
      ++n;
    }
    err_table.add_row({algo.name, Table::num(1e6 * sum_abs / n, 1),
                       Table::num(1e6 * max_abs, 1),
                       Table::num(100.0 * sum_rel / n, 1)});
  }
  err_table.print(std::cout);
  std::cout << "\n(The paper reports a ~200us absolute error band that "
               "does not grow with scale.)\n";
  return 0;
}
