// Extension experiment: barrier cost under arrival skew.
//
// The paper measures barriers with simultaneous entry; real bulk-
// synchronous applications arrive staggered by compute imbalance, which
// is exactly the situation Eq. 2 models ("receiving processes are known
// to already await signal arrival"). This bench runs a 50-round
// compute+barrier workload on the quad cluster and sweeps the compute
// skew, reporting each algorithm's mean barrier span and the total
// synchronization wait the application perceives.
//
// Expected shape: with zero skew the ordering matches Figure 5; as skew
// grows, every barrier's span is increasingly dominated by the waiting
// itself, and the *relative* advantage of the tuned hybrid narrows in
// span terms while remaining visible in total wait.
#include <iostream>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  const std::size_t p = 48;
  const TopologyProfile profile =
      generate_profile(machine, round_robin_mapping(machine, p));
  const TuneResult tuned = tune_barrier(profile);

  std::cout << "Barrier cost under arrival skew, " << machine.name() << ", "
            << p << " ranks, 50 compute+barrier rounds, compute mean 300us\n\n";
  Table table({"skew_stddev[us]", "algorithm", "mean_span[us]",
               "total_wait[ms]", "makespan[ms]"});
  for (double skew_us : {0.0, 30.0, 100.0, 300.0}) {
    struct Entry {
      const char* name;
      const Schedule* schedule;
    };
    const Schedule linear = linear_barrier(p);
    const Schedule diss = dissemination_barrier(p);
    const Schedule tree = tree_barrier(p);
    const Entry entries[] = {{"dissemination", &diss},
                             {"tree (MPI)", &tree},
                             {"linear", &linear},
                             {"hybrid (tuned)", &tuned.schedule()}};
    for (const Entry& entry : entries) {
      WorkloadOptions options;
      options.episodes = 50;
      options.compute_mean = 3e-4;
      options.compute_stddev = skew_us * 1e-6;
      options.sim.seed = 2011;
      const WorkloadResult result =
          simulate_workload(*entry.schedule, profile, options);
      table.add_row({Table::num(skew_us, 0), entry.name,
                     Table::num(result.mean_barrier_time() * 1e6, 1),
                     Table::num(result.total_wait() * 1e3, 2),
                     Table::num(result.makespan * 1e3, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
