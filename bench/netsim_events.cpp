// Google-benchmark: discrete-event simulation throughput, calendar-queue
// engine vs the retained reference engine. netsim stands in for measured
// execution time everywhere the tuner needs feedback (workload sweeps,
// retuning, overlap CI runs), so simulated events/sec is the direct
// multiplier on how many episodes those loops can afford.
//
// BM_SimulateReference — the original engine: std::function closures on
//                        a binary-heap EventQueue, per-stage adjacency
//                        vectors, nested buffered-message vectors
// BM_SimulateCompiled  — CompiledSchedule + SimWorkspace steady state:
//                        compile once / simulate many, zero allocations
//                        once the workspace is warm
// BM_SimulateWrapper   — the simulate() facade (thread-local workspace,
//                        compile per call): what casual callers get
//
// Both engines execute the same event sequence bit for bit, so one
// event count per configuration (taken from the calendar queue's
// scheduled() counter) is the honest numerator for every variant's
// events_per_second rate — the counter BENCH_netsim.json commits and
// scripts/bench_compare.py gates.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "barrier/algorithms.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

struct Setup {
  TopologyProfile profile;
  Schedule schedule{1};
  SimOptions options;
  double events_per_run = 0.0;
};

Schedule family_schedule(std::size_t p, int family) {
  switch (family) {
    case 0:
      return dissemination_barrier(p);
    case 1:
      return heap_tree_barrier(p);
    default:
      // Radix-4 dissemination: the high-fan-out end of the tuned
      // hex-composed schedules (fewer stages, wider batches).
      return radix_dissemination_barrier(p, 4);
  }
}

/// Hex preset up to its 120-core capacity, a wider quad cluster above
/// (250 nodes x 4 cores = the P=1000 point of the scaling sweep).
Setup setup_for(std::size_t p, int family) {
  const MachineSpec machine = p <= 120 ? hex_cluster() : quad_cluster(250);
  Setup s;
  s.profile =
      generate_profile(machine, round_robin_mapping(machine, p),
                       GenerateOptions{});
  s.schedule = family_schedule(p, family);
  s.options.jitter = 0.05;  // keep the per-message RNG draws in the loop
  s.options.seed = 7;
  // One warm-up run counts the events; the engines are bit-identical,
  // so this count holds for every variant below.
  SimWorkspace workspace;
  SimResult out;
  simulate_into(s.schedule, s.profile, s.options, workspace, out);
  s.events_per_run = static_cast<double>(workspace.queue.scheduled());
  return s;
}

void set_rate(benchmark::State& state, double events_per_run) {
  state.counters["events_per_second"] = benchmark::Counter(
      events_per_run * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

void BM_SimulateReference(benchmark::State& state) {
  const Setup s = setup_for(static_cast<std::size_t>(state.range(0)),
                            static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const SimResult r = simulate_reference(s.schedule, s.profile, s.options);
    benchmark::DoNotOptimize(r.completion.data());
  }
  set_rate(state, s.events_per_run);
}
BENCHMARK(BM_SimulateReference)
    ->ArgsProduct({{120, 1000}, {0, 1, 2}})
    ->ArgNames({"p", "family"})
    ->Unit(benchmark::kMicrosecond);

void BM_SimulateCompiled(benchmark::State& state) {
  const Setup s = setup_for(static_cast<std::size_t>(state.range(0)),
                            static_cast<int>(state.range(1)));
  const CompiledSchedule compiled(s.schedule, s.profile);
  SimWorkspace workspace;
  SimResult out;
  for (auto _ : state) {
    simulate_compiled_into(compiled, s.profile, s.options, workspace, out);
    benchmark::DoNotOptimize(out.completion.data());
  }
  set_rate(state, s.events_per_run);
}
BENCHMARK(BM_SimulateCompiled)
    ->ArgsProduct({{120, 1000}, {0, 1, 2}})
    ->ArgNames({"p", "family"})
    ->Unit(benchmark::kMicrosecond);

void BM_SimulateWrapper(benchmark::State& state) {
  const Setup s = setup_for(static_cast<std::size_t>(state.range(0)),
                            static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const SimResult r = simulate(s.schedule, s.profile, s.options);
    benchmark::DoNotOptimize(r.completion.data());
  }
  set_rate(state, s.events_per_run);
}
BENCHMARK(BM_SimulateWrapper)
    ->ArgsProduct({{120, 1000}, {0, 1, 2}})
    ->ArgNames({"p", "family"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
