// Ablation: schedule post-optimization.
//
// How much do validity-preserving signal pruning and stage fusion buy
// on top of (a) the classic algorithms and (b) the tuned hybrid? The
// hybrid row bounds what the greedy composition leaves on the table at
// the schedule level; the dissemination row shows the redundancy the
// classic pattern carries by construction.
#include <iostream>

#include "barrier/algorithms.hpp"
#include "barrier/optimize.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  std::cout << "Ablation: schedule post-optimization (prune + fuse), "
            << machine.name() << ", round-robin placement\n\n";
  Table table({"P", "schedule", "signals", "signals_opt", "stages",
               "stages_opt", "sim_before[us]", "sim_after[us]"});
  for (std::size_t p : {16u, 32u, 48u}) {
    const TopologyProfile profile =
        generate_profile(machine, round_robin_mapping(machine, p));
    const TuneResult tuned = tune_barrier(profile);
    struct Entry {
      const char* name;
      Schedule schedule;
    };
    const Entry entries[] = {
        {"dissemination", dissemination_barrier(p)},
        {"tree (MPI)", tree_barrier(p)},
        {"hybrid (tuned)", tuned.schedule()},
    };
    for (const Entry& entry : entries) {
      const OptimizeResult result =
          optimize_schedule(entry.schedule, profile);
      table.add_row(
          {Table::num(p), entry.name,
           Table::num(entry.schedule.total_signals()),
           Table::num(result.schedule.total_signals()),
           Table::num(entry.schedule.stage_count()),
           Table::num(result.schedule.stage_count()),
           Table::num(simulate(entry.schedule, profile).barrier_time() * 1e6,
                      1),
           Table::num(
               simulate(result.schedule, profile).barrier_time() * 1e6, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
