// Ablation: component algorithm set.
//
// Section VIII proposes generalizing "with respect to the algorithms
// employed as components". This bench compares the tuner restricted to
// single components, the paper's three-algorithm set, and the extended
// six-algorithm set, plus the exhaustive oracle at tiny P.
#include <iostream>

#include "barrier/algorithms.hpp"
#include "core/cluster_tree.hpp"
#include "core/composer.hpp"
#include "barrier/cost_model.hpp"
#include "core/search.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

namespace {

double tuned_simulated(const optibar::TopologyProfile& profile,
                       const std::vector<optibar::ComponentAlgorithm>& algos) {
  using namespace optibar;
  TuneOptions options;
  options.composition.algorithms = algos;
  const TuneResult tuned = tune_barrier(profile, options);
  return simulate(tuned.schedule(), profile).barrier_time();
}

double searched_simulated(const optibar::TopologyProfile& profile) {
  using namespace optibar;
  const TopologyProfile symmetric = profile.symmetrized();
  const ClusterNode tree = build_cluster_tree(symmetric);
  const ComposedBarrier barrier = compose_barrier_searched(symmetric, tree);
  return simulate(barrier.schedule, profile).barrier_time();
}

}  // namespace

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  const auto paper = paper_algorithms();
  const auto extended = extended_algorithms();

  std::cout << "Ablation: component algorithm sets, " << machine.name()
            << ", round-robin placement (simulated seconds)\n\n";
  Table table({"P", "only_linear", "only_diss", "only_tree", "paper_set",
               "extended_set", "global_search", "mpi_tree_baseline"});
  for (std::size_t p : {8u, 16u, 22u, 32u, 40u, 48u, 64u}) {
    const TopologyProfile profile =
        generate_profile(machine, round_robin_mapping(machine, p));
    table.add_row(
        {Table::num(p),
         Table::num(tuned_simulated(profile, {paper[0]}), 8),
         Table::num(tuned_simulated(profile, {paper[1]}), 8),
         Table::num(tuned_simulated(profile, {paper[2]}), 8),
         Table::num(tuned_simulated(profile, paper), 8),
         Table::num(tuned_simulated(profile, extended), 8),
         Table::num(searched_simulated(profile), 8),
         Table::num(simulate(tree_barrier(p), profile).barrier_time(), 8)});
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);

  std::cout << "\nGreedy vs exhaustive oracle (predicted cost, tiny P):\n";
  Table oracle_table({"P", "greedy_predicted", "oracle_predicted",
                      "gap_percent", "oracle_nodes"});
  for (std::size_t p : {2u, 3u}) {
    const TopologyProfile profile =
        generate_profile(quad_cluster(1), block_mapping(quad_cluster(1), p));
    const TuneResult greedy = tune_barrier(profile);
    SearchOptions sopts;
    sopts.max_stages = 3;
    const SearchResult oracle = exhaustive_search(profile, sopts);
    oracle_table.add_row(
        {Table::num(p), Table::num(greedy.predicted_cost(), 9),
         Table::num(oracle.cost, 9),
         Table::num(100.0 * (greedy.predicted_cost() - oracle.cost) /
                        oracle.cost,
                    2),
         Table::num(oracle.nodes_explored)});
  }
  oracle_table.print(std::cout);
  return 0;
}
