// Ablation: shared-egress (NIC) contention.
//
// Section VI-A notes that absolute accuracy on a commodity cluster
// "would likely require us to augment the cost model with terms for
// further phenomena". This bench quantifies one such phenomenon: with
// one egress resource per node, algorithms whose stages have many
// concurrent remote senders per node (dissemination) degrade far more
// than sparse-sender algorithms (tree) or the locality-aware hybrid —
// additional physical justification for the paper's measured ordering.
#include <iostream>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace optibar;
  const MachineSpec machine = quad_cluster();
  std::cout << "Ablation: per-node egress contention, " << machine.name()
            << ", round-robin placement (simulated us, no noise)\n\n";
  Table table({"P", "algorithm", "free_egress[us]", "contended[us]",
               "slowdown"});
  for (std::size_t p : {16u, 32u, 48u, 64u}) {
    const Mapping mapping = round_robin_mapping(machine, p);
    const TopologyProfile profile = generate_profile(machine, mapping);
    const TuneResult tuned = tune_barrier(profile);
    SimOptions contended;
    contended.egress_resource_of = node_egress_resources(machine, mapping);

    struct Entry {
      const char* name;
      Schedule schedule;
    };
    const Entry entries[] = {
        {"dissemination", dissemination_barrier(p)},
        {"tree (MPI)", tree_barrier(p)},
        {"linear", linear_barrier(p)},
        {"hybrid (tuned)", tuned.schedule()},
    };
    for (const Entry& entry : entries) {
      const double free_egress =
          simulate(entry.schedule, profile).barrier_time();
      const double with_contention =
          simulate(entry.schedule, profile, contended).barrier_time();
      table.add_row({Table::num(p), entry.name,
                     Table::num(free_egress * 1e6, 1),
                     Table::num(with_contention * 1e6, 1),
                     Table::num(with_contention / free_egress, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nCSV:\n";
  table.print_csv(std::cout);
  return 0;
}
